//! Figure 5: Neorv32 exploration — instruction/data memory sizes as powers
//! of two on the XC7K70T, approximator disabled.
//!
//! The space is small enough (7 × 7 = 49 points) that the exact Pareto set
//! is also computed exhaustively (Dovado's "exact exploration" mode) and
//! compared against what NSGA-II found.

use dovado::casestudies::neorv32;
use dovado::DseConfig;
use dovado_bench::{banner, emit_front, print_report};
use dovado_moo::{non_dominated_indices, Individual, Nsga2Config, Termination};

fn main() {
    banner(
        "Figure 5 — Neorv32 DSE (XC7K70T, power-of-two memory sizes)",
        "objectives: LUT, FF, BRAM, Fmax; exhaustive ground truth on 49 points",
    );

    let cs = neorv32::case_study();
    let dovado = cs.dovado().expect("case study builds");

    let cfg = DseConfig {
        algorithm: Nsga2Config {
            pop_size: 14,
            seed: 5,
            ..Default::default()
        },
        termination: Termination::Generations(10),
        metrics: cs.metrics.clone(),
        surrogate: None,
        parallel: true,
        explorer: Default::default(),
        jobs: None,
        workers: None,
    };
    let report = dovado.explore(&cfg).expect("exploration succeeds");

    print_report(
        &report,
        "Non-dominated configurations",
        "Figure 5 — solution metrics",
    );
    emit_front(
        "fig5_neorv32.csv",
        &report,
        &[("IMEM", "MEM_INT_IMEM_SIZE"), ("DMEM", "MEM_INT_DMEM_SIZE")],
    );

    // --- exhaustive ground truth ---------------------------------------
    println!();
    println!("exhaustive cross-check (49 evaluations):");
    let all = dovado
        .evaluate_exhaustive(64, true)
        .expect("49-point space enumerable");
    let individuals: Vec<Individual> = all
        .iter()
        .filter_map(|pr| pr.result.as_ref().ok().map(|e| (pr, e)))
        .map(|(pr, e)| {
            let raw = cs.metrics.extract(e);
            let min = dovado_moo::to_min_space(&cs.metrics.objectives(), &raw);
            Individual::new(pr.point.values().to_vec(), raw, min)
        })
        .collect();
    let exact: Vec<&Individual> = non_dominated_indices(&individuals)
        .into_iter()
        .map(|i| &individuals[i])
        .collect();
    println!("  exact front size: {}", exact.len());
    println!(
        "  NSGA-II front size: {} (paper reports 5 solutions)",
        report.pareto.len()
    );

    // --- paper shape checks ---------------------------------------------
    println!();
    println!("shape checks against the paper:");
    // Find the largest-memory configuration on the front and a smaller one.
    let by_bram = |e: &dovado::ParetoEntry| e.values[2];
    let max_bram = report.pareto.iter().map(by_bram).fold(0.0, f64::max);
    let min_bram = report
        .pareto
        .iter()
        .map(by_bram)
        .fold(f64::INFINITY, f64::min);
    println!(
        "  BRAM varies strongly across the front: {} ({:.0} vs {:.0})",
        if max_bram >= 2.0 * min_bram {
            "✓"
        } else {
            "✗"
        },
        max_bram,
        min_bram
    );
    let luts: Vec<f64> = report.pareto.iter().map(|e| e.values[0]).collect();
    let lut_rel = (luts.iter().cloned().fold(0.0, f64::max)
        - luts.iter().cloned().fold(f64::INFINITY, f64::min))
        / luts.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  other metrics almost unchanged: {} (LUT relative spread {:.3})",
        if lut_rel < 0.05 { "✓" } else { "✗" },
        lut_rel
    );
}
