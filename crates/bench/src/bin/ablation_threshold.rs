//! Ablation: the estimate-or-evaluate threshold policy.
//!
//! The paper motivates the *adaptive* Γ ("the threshold setting is a
//! non-trivial problem that depends on run-time information") over fixed
//! thresholds. This ablation runs the same exploration under several
//! policies and reports the tool-call savings against the estimation error
//! each policy accepted.

use dovado::casestudies::cv32e40p;
use dovado::csv::CsvWriter;
use dovado::{DseConfig, SurrogateConfig};
use dovado_bench::{banner, write_csv, write_trace};
use dovado_moo::{Nsga2Config, Termination};
use dovado_surrogate::ThresholdPolicy;

fn main() {
    banner(
        "Ablation — threshold policy (adaptive Γ vs fixed vs never)",
        "same exploration; columns: tool runs, estimates, estimate error sample",
    );

    let cs = cv32e40p::case_study();
    let algorithm = Nsga2Config {
        pop_size: 14,
        seed: 33,
        ..Default::default()
    };
    let termination = Termination::Generations(10);

    // Ground truth for spot-checking estimate quality at a fixed point.
    let probe_idx = 251i64;
    let truth = {
        let tool = cs.dovado().unwrap();
        let p = cs.space.decode(&[probe_idx]).unwrap();
        cs.metrics.extract(&tool.evaluate_point(&p).unwrap())
    };

    let policies: Vec<(&str, ThresholdPolicy)> = vec![
        (
            "adaptive(1.0) [paper]",
            ThresholdPolicy::Adaptive { scale: 1.0 },
        ),
        ("adaptive(0.5)", ThresholdPolicy::Adaptive { scale: 0.5 }),
        ("adaptive(2.0)", ThresholdPolicy::Adaptive { scale: 2.0 }),
        ("fixed(0.005)", ThresholdPolicy::Fixed(0.005)),
        ("fixed(0.05)", ThresholdPolicy::Fixed(0.05)),
        ("never (tool only)", ThresholdPolicy::Never),
    ];

    let mut csv = CsvWriter::new();
    csv.header(&[
        "policy",
        "tool_runs",
        "cached",
        "estimates",
        "probe_rel_err_pct",
    ]);
    println!(
        "{:<22} {:>10} {:>8} {:>10} {:>18}",
        "policy", "tool runs", "cached", "estimates", "probe rel.err [%]"
    );

    let mut last_spine = None;
    for (name, policy) in policies {
        let tool = cs.dovado().unwrap();
        let report = tool
            .explore(&DseConfig {
                algorithm: algorithm.clone(),
                termination: termination.clone(),
                metrics: cs.metrics.clone(),
                surrogate: Some(SurrogateConfig {
                    policy,
                    pretrain_samples: 50,
                    ..Default::default()
                }),
                parallel: false,
                explorer: Default::default(),
                jobs: None,
                workers: None,
            })
            .expect("exploration runs");
        last_spine = Some(report.spine.clone());

        // Estimate quality probe: rebuild a pre-training-only controller and
        // ask it to predict the ground-truth point. The model itself is
        // policy-independent (same 50 samples, same LOO-CV bandwidth) — the
        // constant error column demonstrates precisely that the policy only
        // changes *when* the model is trusted, not how good it is.
        let problem = dovado::DseProblem::new(
            tool.evaluator().clone(),
            cs.space.clone(),
            cs.metrics.clone(),
            Some(&SurrogateConfig {
                policy,
                pretrain_samples: 50,
                ..Default::default()
            }),
        )
        .unwrap();
        let rel_err = match problem.surrogate().and_then(|s| s.predict(&[probe_idx])) {
            Some(est) => {
                100.0
                    * est
                        .iter()
                        .zip(&truth)
                        .map(|(e, t)| ((e - t) / t).abs())
                        .fold(0.0f64, f64::max)
            }
            None => f64::NAN,
        };

        println!(
            "{:<22} {:>10} {:>8} {:>10} {:>18.2}",
            name, report.tool_runs, report.cached_runs, report.estimates, rel_err
        );
        csv.row(&[
            name.to_string(),
            report.tool_runs.to_string(),
            report.cached_runs.to_string(),
            report.estimates.to_string(),
            format!("{rel_err:.2}"),
        ]);
    }
    let path = write_csv("ablation_threshold.csv", csv);
    println!("wrote {}", path.display());
    if let Some(spine) = &last_spine {
        let trace = write_trace("ablation_threshold.jsonl", spine);
        println!("wrote {}", trace.display());
    }
    println!();
    println!(
        "reading: larger Γ saves more tool runs but trusts the estimator further \
         from its data; the adaptive policy tracks dataset density instead of \
         requiring a hand-tuned constant."
    );
}
