//! Distributed-evaluation performance: a thread-backed worker fleet
//! speaking the real wire protocol, evaluating a tool-run-heavy batch
//! with 1 worker vs 4 workers.
//!
//! The workload is the scripted mock backend with an artificial
//! per-stage spin (`mock:SEED:spin=MS`), so every evaluation costs real
//! wall-clock the way an actual tool run would, while metrics — and
//! therefore traces — stay bit-deterministic. The bench asserts the two
//! fleet sizes produce byte-identical traces and writes
//! `results/BENCH_distributed.json` with the measured speedup.

use dovado::{DesignPoint, EvalConfig, Evaluator, HdlSource, Schedule};
use dovado_hdl::Language;
use std::sync::Arc;
use std::time::Instant;

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

const POINTS: usize = 24;
const SPIN_MS: u64 = 40;
const WORKERS_HI: usize = 4;

fn evaluator_on_fleet(workers: usize, spin_ms: u64) -> Evaluator {
    let config = EvalConfig::default();
    let spec = format!("mock:{}:spin={spin_ms}", config.seed);
    let fleet =
        Arc::new(dovado::worker::thread_fleet(&spec, workers).expect("thread fleet must spawn"));
    Evaluator::with_backend(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        config,
        fleet,
    )
    .expect("evaluator builds")
}

/// Evaluates the batch on a fresh fleet of `workers`, returning
/// (wall-clock ms, canonical JSONL trace).
fn timed_run(points: &[DesignPoint], workers: usize, spin_ms: u64) -> (f64, String) {
    let evaluator = evaluator_on_fleet(workers, spin_ms);
    let t0 = Instant::now();
    let results = evaluator.evaluate_many_scheduled(points, Schedule::Distributed { workers });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    for r in results {
        r.expect("bench evaluations are fault-free");
    }
    (
        wall_ms,
        dovado::obs::jsonl_string(&evaluator.spine().snapshot()),
    )
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    dovado_bench::banner(
        "perf_distributed — worker fleet, 1 vs 4 workers",
        "24-point tool-run-heavy batch over the wire protocol (mock, 40 ms spin/stage)",
    );

    let points: Vec<DesignPoint> = (1..=POINTS as i64)
        .map(|i| DesignPoint::from_pairs(&[("DEPTH", i * 16), ("DATA_WIDTH", 32)]))
        .collect();

    // Warm-up: one spin-free batch so first-touch costs (thread spawn,
    // protocol handshake, allocator) land outside the timed runs.
    let _ = timed_run(&points[..2], WORKERS_HI, 0);

    let (one_ms, one_trace) = timed_run(&points, 1, SPIN_MS);
    let (four_ms, four_trace) = timed_run(&points, WORKERS_HI, SPIN_MS);
    let speedup = one_ms / four_ms;

    println!("batch of {POINTS} evaluations, {SPIN_MS} ms spin per tool stage:");
    println!("  1 worker                 : {one_ms:9.1} ms");
    println!("  {WORKERS_HI} workers                : {four_ms:9.1} ms");
    println!("  speedup (1 -> {WORKERS_HI} workers) : {speedup:9.2}x");

    let identical = one_trace == four_trace;
    assert!(
        identical,
        "fleet sizes produced different canonical traces — determinism broke"
    );
    println!("  traces                   : byte-identical");

    let json = format!(
        "{{\n  \"benchmark\": \"distributed_worker_fleet\",\n  \"config\": {{\"points\": {POINTS}, \"spin_ms\": {SPIN_MS}, \"workers_hi\": {WORKERS_HI}}},\n  \"wall_ms\": {{\"workers_1\": {}, \"workers_{WORKERS_HI}\": {}}},\n  \"speedup_1_to_{WORKERS_HI}\": {},\n  \"traces_identical\": {identical}\n}}\n",
        json_f(one_ms),
        json_f(four_ms),
        json_f(speedup),
    );
    let path = dovado_bench::results_dir().join("BENCH_distributed.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    println!();
    println!("wrote {}", path.display());

    assert!(
        speedup >= 2.5,
        "distributed speedup {speedup:.2}x below the 2.5x acceptance floor"
    );
}
