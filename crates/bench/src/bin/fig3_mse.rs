//! Figure 3: Mean squared error of the approximation model on the
//! cv32e40p FIFO (XC7K70T) for (a) flip-flop, (b) LUT, and (c) frequency
//! predictions, as a function of the number of Vivado samples in the
//! synthetic dataset.
//!
//! Reproduction protocol: the FIFO's `DEPTH` spans 500 possible values
//! (paper §IV-A). A held-out probe set measures the model; the dataset
//! grows with random tool samples, and after every 5 additions the MSE per
//! metric is recorded. Metrics are normalized to their observed range so
//! the magnitudes are comparable with the paper's 1e-2 scale.

use dovado::casestudies::cv32e40p;
use dovado::csv::CsvWriter;
use dovado::DesignPoint;
use dovado_bench::{banner, write_csv, write_trace};
use dovado_surrogate::{
    mse_per_output, Kernel, NadarayaWatson, ProbeSet, SurrogateController, ThresholdPolicy,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    banner(
        "Figure 3 — surrogate MSE vs dataset size (cv32e40p FIFO, XC7K70T)",
        "columns: samples, MSE(FF), MSE(LUT), MSE(Fmax) — normalized to metric range",
    );

    let cs = cv32e40p::case_study();
    let dovado = cs.dovado().expect("case study builds");
    let space = cs.space.clone();
    let metrics = cs.metrics.clone();

    // Truth oracle over the whole depth range.
    let truth = |idx: i64| -> Vec<f64> {
        let point = space.decode(&[idx]).expect("index in range");
        let eval = dovado.evaluate_point(&point).expect("evaluation succeeds");
        metrics.extract(&eval)
    };

    // Held-out probe set: 50 points spread over the space, offset so they
    // never coincide with the training grid.
    let probe_pairs: Vec<(Vec<i64>, Vec<f64>)> = (0..50)
        .map(|i| (vec![i * 10 + 3], truth(i * 10 + 3)))
        .collect();
    let probes = ProbeSet::new(probe_pairs.clone());

    // Normalization scales: observed metric ranges over the probe sweep.
    let m = metrics.len();
    let mut lo = vec![f64::INFINITY; m];
    let mut hi = vec![f64::NEG_INFINITY; m];
    for (_, v) in &probe_pairs {
        for i in 0..m {
            lo[i] = lo[i].min(v[i]);
            hi[i] = hi[i].max(v[i]);
        }
    }
    let scales: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| (h - l).max(1e-9)).collect();

    // Training samples: the paper pre-trains on 100 samples; we grow to
    // 100 in steps of 5 and measure after every step.
    let mut indices: Vec<i64> = (0..500).collect();
    let mut rng = StdRng::seed_from_u64(42);
    indices.shuffle(&mut rng);

    let mut controller =
        SurrogateController::new(space.index_bounds(), m, ThresholdPolicy::paper_default())
            .with_kernel(Kernel::Gaussian);

    let mut csv = CsvWriter::new();
    csv.header(&["samples", "mse_ff", "mse_lut", "mse_fmax"]);
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "samples", "MSE(FF)", "MSE(LUT)", "MSE(Fmax)"
    );

    let mut peak = [0.0f64; 3];
    let mut last = [0.0f64; 3];
    for step in 0..20 {
        for k in 0..5 {
            let idx = indices[step * 5 + k];
            controller.record(vec![idx], truth(idx));
        }
        let n = controller.dataset().len();
        let model: NadarayaWatson = controller.model();
        let mse =
            mse_per_output(&model, controller.dataset(), &probes, &scales).expect("probe MSE");
        println!(
            "{:>8} {:>12.5} {:>12.5} {:>12.5}",
            n, mse[0], mse[1], mse[2]
        );
        csv.row(&[n as f64, mse[0], mse[1], mse[2]]);
        for i in 0..3 {
            peak[i] = peak[i].max(mse[i]);
            last[i] = mse[i];
        }
    }

    let path = write_csv("fig3_mse.csv", csv);
    println!();
    println!(
        "peak MSE:  FF {:.5}  LUT {:.5}  Fmax {:.5}",
        peak[0], peak[1], peak[2]
    );
    println!(
        "final MSE: FF {:.5}  LUT {:.5}  Fmax {:.5}",
        last[0], last[1], last[2]
    );
    println!("paper shape check: frequency MSE peaks highest and stabilizes lower:");
    println!(
        "  fmax peak {:.5} -> final {:.5} ({})",
        peak[2],
        last[2],
        if last[2] <= peak[2] {
            "converging ✓"
        } else {
            "NOT converging ✗"
        }
    );
    println!("wrote {}", path.display());
    let trace = write_trace("fig3_mse.jsonl", &dovado.evaluator().snapshot());
    println!("wrote {}", trace.display());
    // One explicit design point echoed for traceability.
    let sample: DesignPoint = space.decode(&[250]).unwrap();
    println!("example mid-space point: {sample}");
}
