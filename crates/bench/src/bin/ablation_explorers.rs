//! Ablation: exploration strategy.
//!
//! The paper chooses NSGA-II over the wider strategy space surveyed by
//! Panerati et al. [12]. This ablation gives NSGA-II, uniform random
//! search, and a weighted-sum GA the same evaluation budgets on the
//! Corundum problem and scores each front's hypervolume against the exact
//! front (the space is exhaustively enumerable here, so ground truth is
//! available).

use dovado::casestudies::corundum;
use dovado::csv::CsvWriter;
use dovado::{DseConfig, DseProblem};
use dovado_bench::{banner, write_csv, write_trace};
use dovado_moo::{
    hypervolume, nsga2, random_search, to_min_space, weighted_sum_ga, Nsga2Config, Problem,
    Termination,
};

fn front_hv(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    hypervolume(front, reference)
}

fn main() {
    banner(
        "Ablation — explorer choice (NSGA-II vs random vs weighted-sum GA)",
        "hypervolume vs evaluation budget, against the exhaustive ground truth",
    );

    let cs = corundum::case_study();
    let objectives = cs.metrics.objectives();
    // Reference point: worse than any real measurement (min-space).
    let reference = vec![5_000.0, 10_000.0, 50.0, -0.0];

    // Exhaustive ground truth (the space has a few thousand points and the
    // simulated evaluations are host-cheap).
    let exact_hv = {
        let tool = cs.dovado().unwrap();
        let all = tool
            .evaluate_exhaustive(10_000, true)
            .expect("space enumerable");
        let front: Vec<Vec<f64>> = all
            .iter()
            .filter_map(|r| r.result.as_ref().ok())
            .map(|e| to_min_space(&objectives, &cs.metrics.extract(e)))
            .collect();
        front_hv(&front, &reference)
    };
    println!(
        "exact front hypervolume (exhaustive, {} points): {exact_hv:.3e}",
        cs.space.volume()
    );
    println!();

    let budgets = [60u64, 120, 240];
    let mut csv = CsvWriter::new();
    csv.header(&["explorer", "budget", "hypervolume", "fraction_of_exact"]);
    println!(
        "{:<16} {:>8} {:>16} {:>18}",
        "explorer", "budget", "hypervolume", "fraction of exact"
    );

    let mut last_spine = None;
    for &budget in &budgets {
        // --- NSGA-II ---
        let hv_nsga = {
            let tool = cs.dovado().unwrap();
            let report = tool
                .explore(&DseConfig {
                    algorithm: Nsga2Config {
                        pop_size: 20,
                        seed: 1,
                        ..Default::default()
                    },
                    termination: Termination::Evaluations(budget),
                    metrics: cs.metrics.clone(),
                    surrogate: None,
                    parallel: true,
                    explorer: Default::default(),
                    jobs: None,
                    workers: None,
                })
                .unwrap();
            let front: Vec<Vec<f64>> = report
                .pareto
                .iter()
                .map(|e| to_min_space(&objectives, &e.values))
                .collect();
            last_spine = Some(report.spine);
            front_hv(&front, &reference)
        };

        // --- random search / weighted sum: run on a fresh DseProblem ---
        let mk_problem = || {
            DseProblem::new(
                cs.dovado().unwrap().evaluator().clone(),
                cs.space.clone(),
                cs.metrics.clone(),
                None,
            )
            .unwrap()
        };

        let hv_random = {
            let mut p = mk_problem();
            let r = random_search(&mut p, &Termination::Evaluations(budget), 20, 1);
            let front: Vec<Vec<f64>> = r.pareto.iter().map(|i| i.min_objs.clone()).collect();
            front_hv(&front, &reference)
        };

        let hv_ws = {
            let mut p = mk_problem();
            let n_obj = p.objectives().len();
            let w = vec![1.0 / n_obj as f64; n_obj];
            let r = weighted_sum_ga(&mut p, &w, &Termination::Evaluations(budget), 20, 1);
            let front: Vec<Vec<f64>> = r.pareto.iter().map(|i| i.min_objs.clone()).collect();
            front_hv(&front, &reference)
        };

        // Also validate nsga2() direct (same engine the framework wraps).
        let _ = nsga2::<DseProblem>; // keep the generic path referenced

        for (name, hv) in [
            ("nsga2", hv_nsga),
            ("random", hv_random),
            ("weighted-sum", hv_ws),
        ] {
            println!(
                "{:<16} {:>8} {:>16.3e} {:>17.1}%",
                name,
                budget,
                hv,
                100.0 * hv / exact_hv
            );
            csv.row(&[
                name.to_string(),
                budget.to_string(),
                format!("{hv:.6e}"),
                format!("{:.2}", 100.0 * hv / exact_hv),
            ]);
        }
    }

    let path = write_csv("ablation_explorers.csv", csv);
    println!("wrote {}", path.display());
    if let Some(spine) = &last_spine {
        let trace = write_trace("ablation_explorers.jsonl", spine);
        println!("wrote {}", trace.display());
    }
    println!();
    println!(
        "reading: the weighted-sum GA collapses onto one region of the front \
         (one scalarization → one optimum); NSGA-II covers the front, which is \
         why the paper adopts it."
    );
}
