//! Shared helpers for the Dovado benchmark harness.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper (see DESIGN.md's per-experiment index). Binaries print the series
//! to stdout and also write CSV files under `results/`.

use dovado::csv::CsvWriter;
use dovado::{DseReport, Metric, SpineSnapshot};
use std::fs;
use std::path::PathBuf;

/// Where result CSVs land (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a CSV file under `results/`, returning its path.
pub fn write_csv(name: &str, writer: CsvWriter) -> PathBuf {
    let path = results_dir().join(name);
    if let Err(e) = fs::write(&path, writer.finish()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Prints a banner for an experiment.
pub fn banner(experiment: &str, description: &str) {
    println!("==============================================================");
    println!("{experiment}");
    println!("{description}");
    println!("==============================================================");
}

/// Prints the report block every figure/table binary shares: the
/// one-line summary, the configuration table under `config_heading`,
/// and the metric table under `metric_heading`.
pub fn print_report(report: &DseReport, config_heading: &str, metric_heading: &str) {
    println!("{}", report.summary());
    println!();
    println!("{config_heading}:");
    println!("{}", report.configuration_table());
    println!("{metric_heading}:");
    println!("{}", report.metric_table());
}

/// CSV-safe column name for a metric label (`Fmax[MHz]` → `Fmax_MHz`).
fn csv_column(label: &str) -> String {
    label.replace('[', "_").replace(']', "")
}

/// Writes the Pareto front as a CSV under `results/`: a label column,
/// one column per `(header, parameter)` pair, then one column per report
/// metric (utilization as integers, frequency/power at two decimals).
/// Returns the path.
pub fn write_front_csv(name: &str, report: &DseReport, params: &[(&str, &str)]) -> PathBuf {
    use dovado::point_label;
    let mut csv = CsvWriter::new();
    let mut header: Vec<String> = vec!["label".into()];
    header.extend(params.iter().map(|(h, _)| h.to_string()));
    header.extend(
        report
            .metrics
            .metrics()
            .iter()
            .map(|m| csv_column(&m.label())),
    );
    let refs: Vec<&str> = header.iter().map(String::as_str).collect();
    csv.header(&refs);
    for (i, e) in report.pareto.iter().enumerate() {
        let mut row: Vec<String> = vec![point_label(i)];
        for (_, p) in params {
            row.push(
                e.point
                    .get(p)
                    .expect("front point carries the parameter")
                    .to_string(),
            );
        }
        for (m, v) in report.metrics.metrics().iter().zip(&e.values) {
            row.push(match m {
                Metric::Utilization(_) => format!("{v:.0}"),
                _ => format!("{v:.2}"),
            });
        }
        csv.row(&row);
    }
    write_csv(name, csv)
}

/// Writes an observability-spine trace as versioned JSON Lines under
/// `results/`, returning its path.
pub fn write_trace(name: &str, spine: &SpineSnapshot) -> PathBuf {
    let path = results_dir().join(name);
    if let Err(e) = fs::write(&path, dovado::obs::jsonl_string(spine)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Writes the front CSV plus the run's observability trace next to it
/// (`<name>.csv` → `<name>.jsonl`), printing both paths.
pub fn emit_front(csv_name: &str, report: &DseReport, params: &[(&str, &str)]) {
    let path = write_front_csv(csv_name, report, params);
    println!("wrote {}", path.display());
    let trace_name = format!(
        "{}.jsonl",
        csv_name.strip_suffix(".csv").unwrap_or(csv_name)
    );
    let trace_path = write_trace(&trace_name, &report.spine);
    println!("wrote {}", trace_path.display());
}

/// Formats a float series compactly.
pub fn fmt_series(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:.4}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Shared driver for the two TiReX experiments (Figs. 6–7 / Table II):
/// the same exploration on two devices. Returns the report so callers can
/// add device-specific checks.
pub fn run_tirex(part: &str, figure: &str, csv_name: &str) -> dovado::DseReport {
    use dovado::casestudies::tirex;
    use dovado::DseConfig;
    use dovado_moo::{Nsga2Config, Termination};

    let cs = tirex::case_study();
    let tool = cs.dovado_on(part).expect("case study builds");
    let cfg = DseConfig {
        explorer: Default::default(),
        algorithm: Nsga2Config {
            pop_size: 20,
            seed: 0x71EE,
            ..Default::default()
        },
        termination: Termination::Generations(12),
        metrics: cs.metrics.clone(),
        surrogate: None,
        parallel: true,
        jobs: None,
        workers: None,
    };
    let report = tool.explore(&cfg).expect("exploration succeeds");

    print_report(
        &report,
        &format!("Table II ({part}) — non-dominated configurations"),
        &format!("{figure} — solution metrics"),
    );
    emit_front(
        csv_name,
        &report,
        &[
            ("NCLUSTER", "NCLUSTER"),
            ("STACK_SIZE", "STACK_SIZE"),
            ("IMEM_SIZE", "IMEM_SIZE"),
            ("DMEM_SIZE", "DMEM_SIZE"),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_series_compact() {
        assert_eq!(fmt_series(&[1.0, 2.25]), "1.0000, 2.2500");
    }

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.exists());
    }
}
