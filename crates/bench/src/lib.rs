//! Shared helpers for the Dovado benchmark harness.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper (see DESIGN.md's per-experiment index). Binaries print the series
//! to stdout and also write CSV files under `results/`.

use dovado::csv::CsvWriter;
use std::fs;
use std::path::PathBuf;

/// Where result CSVs land (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a CSV file under `results/`, returning its path.
pub fn write_csv(name: &str, writer: CsvWriter) -> PathBuf {
    let path = results_dir().join(name);
    if let Err(e) = fs::write(&path, writer.finish()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Prints a banner for an experiment.
pub fn banner(experiment: &str, description: &str) {
    println!("==============================================================");
    println!("{experiment}");
    println!("{description}");
    println!("==============================================================");
}

/// Formats a float series compactly.
pub fn fmt_series(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:.4}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Shared driver for the two TiReX experiments (Figs. 6–7 / Table II):
/// the same exploration on two devices. Returns the report so callers can
/// add device-specific checks.
pub fn run_tirex(part: &str, figure: &str, csv_name: &str) -> dovado::DseReport {
    use dovado::casestudies::tirex;
    use dovado::{point_label, DseConfig};
    use dovado_moo::{Nsga2Config, Termination};

    let cs = tirex::case_study();
    let tool = cs.dovado_on(part).expect("case study builds");
    let cfg = DseConfig {
        explorer: Default::default(),
        algorithm: Nsga2Config {
            pop_size: 20,
            seed: 0x71EE,
            ..Default::default()
        },
        termination: Termination::Generations(12),
        metrics: cs.metrics.clone(),
        surrogate: None,
        parallel: true,
    };
    let report = tool.explore(&cfg).expect("exploration succeeds");

    println!("{}", report.summary());
    println!();
    println!("Table II ({part}) — non-dominated configurations:");
    println!("{}", report.configuration_table());
    println!("{figure} — solution metrics:");
    println!("{}", report.metric_table());

    let mut csv = CsvWriter::new();
    csv.header(&[
        "label",
        "NCLUSTER",
        "STACK_SIZE",
        "IMEM_SIZE",
        "DMEM_SIZE",
        "LUT",
        "FF",
        "BRAM",
        "Fmax_MHz",
    ]);
    for (i, e) in report.pareto.iter().enumerate() {
        csv.row(&[
            point_label(i),
            e.point.get("NCLUSTER").unwrap().to_string(),
            e.point.get("STACK_SIZE").unwrap().to_string(),
            e.point.get("IMEM_SIZE").unwrap().to_string(),
            e.point.get("DMEM_SIZE").unwrap().to_string(),
            format!("{:.0}", e.values[0]),
            format!("{:.0}", e.values[1]),
            format!("{:.0}", e.values[2]),
            format!("{:.2}", e.values[3]),
        ]);
    }
    let path = write_csv(csv_name, csv);
    println!("wrote {}", path.display());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_series_compact() {
        assert_eq!(fmt_series(&[1.0, 2.25]), "1.0000, 2.2500");
    }

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.exists());
    }
}
