//! The NSGA-II engine (Deb, Pratap, Agarwal, Meyarivan 2002).
//!
//! "We solve this multi-objective optimization problem through NSGA-II …
//! a genetic algorithm that does not require specific domain knowledge …
//! an elite-preserving algorithm that preserves non-dominated solutions in
//! the population" (§III-B1). This is the canonical loop: random initial
//! population → binary tournament → integer SBX → Gaussian mutation →
//! duplicate elimination → (μ+λ) survival by front rank with
//! crowding-distance truncation.

use crate::crowding::assign_crowding;
use crate::individual::{non_dominated_indices, Individual};
use crate::ops::sampling::random_population;
use crate::ops::{binary_tournament, dedup_against, GaussianIntegerMutation, IntegerSbx};
use crate::problem::{to_min_space, Problem};
use crate::sorting::fast_non_dominated_sort;
use crate::termination::{EngineState, Termination};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// NSGA-II configuration.
#[derive(Debug, Clone)]
pub struct Nsga2Config {
    /// Population size μ (= offspring size λ).
    pub pop_size: usize,
    /// Crossover operator.
    pub crossover: IntegerSbx,
    /// Mutation operator.
    pub mutation: GaussianIntegerMutation,
    /// Whether to eliminate duplicate offspring (paper default: yes).
    pub eliminate_duplicates: bool,
    /// Controlled elitism (Deb & Goel [25 in the paper]): when set, each
    /// front `i` may keep at most `N·(1−r)·rⁱ` (geometrically decaying)
    /// survivors, forcing lateral diversity instead of letting the first
    /// front flood the population. `r ∈ (0, 1)`; `None` = classic NSGA-II.
    pub controlled_elitism: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            pop_size: 40,
            crossover: IntegerSbx::default(),
            mutation: GaussianIntegerMutation::default(),
            eliminate_duplicates: true,
            controlled_elitism: None,
            seed: 0,
        }
    }
}

/// Per-front quotas for controlled elitism: `n_i = N·(1−r)·rⁱ / (1−r^K)`
/// (normalized so the quotas sum to N), each at least 1 while fronts
/// remain.
fn elitism_quotas(pop_size: usize, n_fronts: usize, r: f64) -> Vec<usize> {
    debug_assert!((0.0..1.0).contains(&r) && r > 0.0);
    let k = n_fronts.max(1);
    let norm: f64 = (1.0 - r.powi(k as i32)).max(1e-12);
    let mut quotas: Vec<usize> = (0..k)
        .map(|i| {
            ((pop_size as f64) * (1.0 - r) * r.powi(i as i32) / norm)
                .round()
                .max(1.0) as usize
        })
        .collect();
    // Fix rounding drift against the population size. Trims from the tail
    // (down to zero when there are more fronts than population slots) and
    // tops up from the head.
    let mut total: usize = quotas.iter().sum();
    let mut i = 0usize;
    while total > pop_size {
        let idx = k - 1 - (i % k);
        if quotas[idx] > 0 {
            quotas[idx] -= 1;
            total -= 1;
        }
        i += 1;
    }
    i = 0;
    while total < pop_size {
        quotas[i % k] += 1;
        total += 1;
        i += 1;
    }
    quotas
}

/// Per-generation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GenStats {
    /// Generation index (0 = initial population).
    pub generation: u32,
    /// Cumulative evaluations after this generation.
    pub evaluations: u64,
    /// Size of the current first front.
    pub front_size: usize,
    /// External cost after this generation.
    pub external_cost: f64,
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Final population (ranked, with crowding).
    pub population: Vec<Individual>,
    /// Non-dominated set over *everything evaluated* (deduplicated).
    pub pareto: Vec<Individual>,
    /// Generations completed.
    pub generations: u32,
    /// Total evaluations spent.
    pub evaluations: u64,
    /// Per-generation history.
    pub history: Vec<GenStats>,
}

impl OptResult {
    /// Pareto front sorted by the first raw objective (stable output for
    /// reports).
    pub fn sorted_pareto(&self) -> Vec<Individual> {
        let mut front = self.pareto.clone();
        front.sort_by(|a, b| {
            a.raw
                .first()
                .partial_cmp(&b.raw.first())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        front
    }
}

/// A point-in-time image of a running engine, sufficient to rebuild it
/// bitwise via [`Nsga2Engine::resume`]. This is what the exploration
/// journal persists at every generation boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Snapshot {
    /// Generations completed so far.
    pub generation: u32,
    /// Evaluations spent so far.
    pub evaluations: u64,
    /// Raw xoshiro256** state of the engine's RNG.
    pub rng_state: [u64; 4],
    /// Current population, in engine order (rank/crowding included).
    pub population: Vec<Individual>,
    /// Everything evaluated so far (Pareto source), in insertion order.
    pub archive: Vec<Individual>,
    /// Per-generation history so far.
    pub history: Vec<GenStats>,
}

/// A stepwise NSGA-II engine: the classic loop split at generation
/// boundaries so callers can interleave snapshotting (crash-safe journals)
/// or custom control between generations. [`nsga2`] is the thin
/// run-to-completion wrapper; both produce bitwise-identical results for
/// the same seed because they share this code and its RNG call order.
#[derive(Debug, Clone)]
pub struct Nsga2Engine {
    cfg: Nsga2Config,
    rng: StdRng,
    vars: Vec<crate::problem::IntVar>,
    objectives: Vec<crate::problem::Objective>,
    evaluations: u64,
    archive: Vec<Individual>,
    pop: Vec<Individual>,
    history: Vec<GenStats>,
    generation: u32,
}

impl Nsga2Engine {
    /// Seeds the RNG, samples and evaluates the initial population, and
    /// records the generation-0 history entry.
    pub fn start<P: Problem + ?Sized>(problem: &mut P, cfg: &Nsga2Config) -> Nsga2Engine {
        assert!(
            cfg.pop_size >= 2,
            "population must hold at least one mating pair"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vars = problem.variables().to_vec();
        let objectives = problem.objectives().to_vec();

        let mut evaluations: u64 = 0;
        let mut archive: Vec<Individual> = Vec::new();

        // Initial population: integer random sampling.
        let genomes = random_population(&vars, cfg.pop_size, &mut rng);
        let raws = problem.evaluate_batch(&genomes);
        evaluations += genomes.len() as u64;
        let mut pop: Vec<Individual> = genomes
            .into_iter()
            .zip(raws)
            .map(|(g, raw)| {
                let min_objs = to_min_space(&objectives, &raw);
                Individual::new(g, raw, min_objs)
            })
            .collect();
        archive.extend(pop.iter().cloned());

        let fronts = fast_non_dominated_sort(&mut pop);
        for f in &fronts {
            assign_crowding(&mut pop, f);
        }

        let history = vec![GenStats {
            generation: 0,
            evaluations,
            front_size: fronts.first().map_or(0, Vec::len),
            external_cost: problem.external_cost(),
        }];

        Nsga2Engine {
            cfg: cfg.clone(),
            rng,
            vars,
            objectives,
            evaluations,
            archive,
            pop,
            history,
            generation: 0,
        }
    }

    /// Rebuilds an engine mid-run from a journal snapshot. The problem
    /// supplies variables/objectives (they are derived state, not part of
    /// the snapshot); everything else — including the RNG stream position —
    /// continues exactly where the snapshot was taken.
    pub fn resume<P: Problem + ?Sized>(
        problem: &P,
        cfg: &Nsga2Config,
        snap: Nsga2Snapshot,
    ) -> Nsga2Engine {
        Nsga2Engine {
            cfg: cfg.clone(),
            rng: StdRng::from_state(snap.rng_state),
            vars: problem.variables().to_vec(),
            objectives: problem.objectives().to_vec(),
            evaluations: snap.evaluations,
            archive: snap.archive,
            pop: snap.population,
            history: snap.history,
            generation: snap.generation,
        }
    }

    /// Captures the engine's full mid-run state.
    pub fn snapshot(&self) -> Nsga2Snapshot {
        Nsga2Snapshot {
            generation: self.generation,
            evaluations: self.evaluations,
            rng_state: self.rng.state(),
            population: self.pop.clone(),
            archive: self.archive.clone(),
            history: self.history.clone(),
        }
    }

    /// Generations completed so far.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Evaluations spent so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Everything evaluated so far, in insertion order.
    pub fn archive(&self) -> &[Individual] {
        &self.archive
    }

    /// Whether `termination` says the run is finished.
    pub fn should_stop<P: Problem + ?Sized>(&self, problem: &P, termination: &Termination) -> bool {
        let state = EngineState {
            generation: self.generation,
            evaluations: self.evaluations,
            external_cost: problem.external_cost(),
        };
        termination.should_stop(&state)
    }

    /// Runs one full generation: variation → evaluation → (μ+λ) survival.
    pub fn step<P: Problem + ?Sized>(&mut self, problem: &mut P) {
        let cfg = &self.cfg;
        let vars = &self.vars;
        let rng = &mut self.rng;
        self.generation += 1;

        // --- variation ---
        let mut offspring_genomes: Vec<Vec<i64>> = Vec::with_capacity(cfg.pop_size);
        while offspring_genomes.len() < cfg.pop_size {
            let p1 = binary_tournament(&self.pop, rng);
            let p2 = binary_tournament(&self.pop, rng);
            let (mut c1, mut c2) =
                cfg.crossover
                    .cross(vars, &self.pop[p1].genome, &self.pop[p2].genome, rng);
            cfg.mutation.mutate(vars, &mut c1, rng);
            cfg.mutation.mutate(vars, &mut c2, rng);
            offspring_genomes.push(c1);
            if offspring_genomes.len() < cfg.pop_size {
                offspring_genomes.push(c2);
            }
        }
        if cfg.eliminate_duplicates {
            let parent_genomes: Vec<Vec<i64>> = self.pop.iter().map(|i| i.genome.clone()).collect();
            dedup_against(vars, &parent_genomes, &mut offspring_genomes, rng);
        }

        // --- evaluation ---
        let raws = problem.evaluate_batch(&offspring_genomes);
        self.evaluations += offspring_genomes.len() as u64;
        let offspring: Vec<Individual> = offspring_genomes
            .into_iter()
            .zip(raws)
            .map(|(g, raw)| {
                let min_objs = to_min_space(&self.objectives, &raw);
                Individual::new(g, raw, min_objs)
            })
            .collect();
        self.archive.extend(offspring.iter().cloned());

        // --- (μ+λ) elitist survival ---
        let mut combined = std::mem::take(&mut self.pop);
        combined.extend(offspring);
        let fronts = fast_non_dominated_sort(&mut combined);
        let mut next: Vec<Individual> = Vec::with_capacity(cfg.pop_size);
        match cfg.controlled_elitism {
            Some(r) => {
                // Controlled elitism: geometric per-front quotas, crowding
                // breaking ties inside each front; unused capacity is then
                // refilled in rank order.
                let quotas = elitism_quotas(cfg.pop_size, fronts.len(), r);
                let mut leftovers: Vec<usize> = Vec::new();
                for (fi, front) in fronts.iter().enumerate() {
                    assign_crowding(&mut combined, front);
                    let mut sorted: Vec<usize> = front.clone();
                    sorted.sort_by(|&a, &b| {
                        combined[b]
                            .crowding
                            .partial_cmp(&combined[a].crowding)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let room = cfg.pop_size - next.len();
                    let take = quotas[fi].min(sorted.len()).min(room);
                    next.extend(sorted[..take].iter().map(|&i| combined[i].clone()));
                    leftovers.extend_from_slice(&sorted[take..]);
                }
                for &i in &leftovers {
                    if next.len() >= cfg.pop_size {
                        break;
                    }
                    next.push(combined[i].clone());
                }
            }
            None => {
                for front in &fronts {
                    assign_crowding(&mut combined, front);
                    if next.len() + front.len() <= cfg.pop_size {
                        next.extend(front.iter().map(|&i| combined[i].clone()));
                    } else {
                        let mut rest: Vec<usize> = front.clone();
                        rest.sort_by(|&a, &b| {
                            combined[b]
                                .crowding
                                .partial_cmp(&combined[a].crowding)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        });
                        for &i in rest.iter().take(cfg.pop_size - next.len()) {
                            next.push(combined[i].clone());
                        }
                        break;
                    }
                }
            }
        }
        self.pop = next;
        // Re-rank the survivors among themselves.
        let fronts = fast_non_dominated_sort(&mut self.pop);
        for f in &fronts {
            assign_crowding(&mut self.pop, f);
        }

        self.history.push(GenStats {
            generation: self.generation,
            evaluations: self.evaluations,
            front_size: fronts.first().map_or(0, Vec::len),
            external_cost: problem.external_cost(),
        });
    }

    /// Finalizes the run: archive → deduplicated Pareto front.
    pub fn into_result(self) -> OptResult {
        let pareto_idx = non_dominated_indices(&self.archive);
        let mut pareto: Vec<Individual> = pareto_idx
            .into_iter()
            .map(|i| self.archive[i].clone())
            .collect();
        // Deduplicate identical genomes.
        pareto.sort_by(|a, b| a.genome.cmp(&b.genome));
        pareto.dedup_by(|a, b| a.genome == b.genome);
        for p in &mut pareto {
            p.rank = 0;
        }

        OptResult {
            population: self.pop,
            pareto,
            generations: self.generation,
            evaluations: self.evaluations,
            history: self.history,
        }
    }
}

/// Runs NSGA-II on `problem` until `termination` fires.
pub fn nsga2<P: Problem + ?Sized>(
    problem: &mut P,
    cfg: &Nsga2Config,
    termination: &Termination,
) -> OptResult {
    let mut engine = Nsga2Engine::start(problem, cfg);
    while !engine.should_stop(&*problem, termination) {
        engine.step(problem);
    }
    engine.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{IntVar, Objective, Schaffer};

    fn small_cfg(seed: u64) -> Nsga2Config {
        Nsga2Config {
            pop_size: 24,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn converges_on_schaffer() {
        let mut p = Schaffer::new();
        let r = nsga2(&mut p, &small_cfg(1), &Termination::Generations(40));
        // True Pareto set is x ∈ [0, 2]; most of the front must be there.
        let on_front = r
            .pareto
            .iter()
            .filter(|i| (0..=2).contains(&i.genome[0]))
            .count();
        assert!(
            on_front >= 3,
            "expected x ∈ [0,2] solutions, got {:?}",
            r.pareto.iter().map(|i| i.genome[0]).collect::<Vec<_>>()
        );
        // And no point far away survives in the final non-dominated set.
        assert!(r.pareto.iter().all(|i| i.genome[0].abs() <= 10));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = Schaffer::new();
            let r = nsga2(&mut p, &small_cfg(seed), &Termination::Generations(10));
            r.sorted_pareto()
                .iter()
                .map(|i| i.genome.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn engine_snapshot_resume_is_bitwise_identical() {
        // Run straight through...
        let mut p1 = Schaffer::new();
        let direct = nsga2(&mut p1, &small_cfg(13), &Termination::Generations(12));

        // ...and snapshot/rebuild at every generation boundary.
        let mut p2 = Schaffer::new();
        let cfg = small_cfg(13);
        let term = Termination::Generations(12);
        let mut engine = Nsga2Engine::start(&mut p2, &cfg);
        while !engine.should_stop(&p2, &term) {
            let snap = engine.snapshot();
            engine = Nsga2Engine::resume(&p2, &cfg, snap);
            engine.step(&mut p2);
        }
        let resumed = engine.into_result();

        assert_eq!(resumed.generations, direct.generations);
        assert_eq!(resumed.evaluations, direct.evaluations);
        assert_eq!(resumed.history, direct.history);
        assert_eq!(resumed.population, direct.population);
        let (a, b) = (direct.sorted_pareto(), resumed.sorted_pareto());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.genome, y.genome);
            for (u, v) in x.raw.iter().zip(&y.raw) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn respects_evaluation_budget() {
        let mut p = Schaffer::new();
        let r = nsga2(&mut p, &small_cfg(2), &Termination::Evaluations(100));
        // Stops at the first generation boundary at/after 100.
        assert!(r.evaluations >= 100);
        assert!(r.evaluations <= 100 + 24);
        assert_eq!(r.evaluations, p.evaluations);
    }

    #[test]
    fn history_tracks_generations() {
        let mut p = Schaffer::new();
        let r = nsga2(&mut p, &small_cfg(3), &Termination::Generations(5));
        assert_eq!(r.generations, 5);
        assert_eq!(r.history.len(), 6); // gen 0 + 5
        assert!(r
            .history
            .windows(2)
            .all(|w| w[1].evaluations > w[0].evaluations));
    }

    #[test]
    fn pareto_is_mutually_nondominated() {
        let mut p = Schaffer::new();
        let r = nsga2(&mut p, &small_cfg(4), &Termination::Generations(15));
        for a in &r.pareto {
            for b in &r.pareto {
                assert!(!a.dominates(b) || a.genome == b.genome);
            }
        }
    }

    #[test]
    fn population_size_is_stable() {
        let mut p = Schaffer::new();
        let r = nsga2(&mut p, &small_cfg(5), &Termination::Generations(8));
        assert_eq!(r.population.len(), 24);
    }

    #[test]
    fn maximization_objectives_work() {
        // maximize x in [0, 50] against minimize (x-20)^2: front spans 20..50.
        struct P2 {
            vars: Vec<IntVar>,
            objs: Vec<Objective>,
        }
        impl Problem for P2 {
            fn variables(&self) -> &[IntVar] {
                &self.vars
            }
            fn objectives(&self) -> &[Objective] {
                &self.objs
            }
            fn evaluate(&mut self, g: &[i64]) -> Vec<f64> {
                let x = g[0] as f64;
                vec![x, (x - 20.0) * (x - 20.0)]
            }
        }
        let mut p = P2 {
            vars: vec![IntVar::new("x", 0, 50)],
            objs: vec![Objective::maximize("x"), Objective::minimize("d")],
        };
        let r = nsga2(&mut p, &small_cfg(6), &Termination::Generations(30));
        assert!(r.pareto.iter().all(|i| i.genome[0] >= 20), "{:?}", r.pareto);
        assert!(r.pareto.iter().any(|i| i.genome[0] == 50));
    }

    #[test]
    fn elitism_quota_shape() {
        // Quotas decay geometrically and sum to the population size.
        let q = elitism_quotas(40, 4, 0.5);
        assert_eq!(q.iter().sum::<usize>(), 40);
        assert!(q.windows(2).all(|w| w[0] >= w[1]), "{q:?}");
        assert!(q[0] > q[3]);
        // Single front: everything goes to it.
        assert_eq!(elitism_quotas(10, 1, 0.5), vec![10]);
        // Tight capacity: rounding drift is trimmed from the *tail*, so the
        // best fronts keep their share and late fronts may get zero.
        let q = elitism_quotas(8, 6, 0.3);
        assert_eq!(q.iter().sum::<usize>(), 8);
        assert!(q.windows(2).all(|w| w[0] >= w[1]), "{q:?}");
        assert!(q[0] >= 1);
        // More fronts than slots must still terminate and sum correctly.
        let q = elitism_quotas(4, 20, 0.5);
        assert_eq!(q.iter().sum::<usize>(), 4);
        assert!(q[0] >= 1);
    }

    #[test]
    fn controlled_elitism_preserves_lateral_diversity() {
        // On Schaffer the first front quickly covers the whole population
        // under classic NSGA-II; with controlled elitism dominated ranks
        // must survive in the steady-state population.
        let mut p = Schaffer::new();
        let cfg = Nsga2Config {
            pop_size: 40,
            seed: 3,
            controlled_elitism: Some(0.5),
            ..Default::default()
        };
        let r = nsga2(&mut p, &cfg, &Termination::Generations(20));
        let rank0 = r.population.iter().filter(|i| i.rank == 0).count();
        assert!(
            rank0 < r.population.len(),
            "no dominated ranks kept: {rank0}"
        );
        // And the front is still found.
        assert!(r.pareto.iter().any(|i| (0..=2).contains(&i.genome[0])));
    }

    #[test]
    fn controlled_elitism_still_converges() {
        let mut p = Schaffer::new();
        let cfg = Nsga2Config {
            pop_size: 24,
            seed: 8,
            controlled_elitism: Some(0.65),
            ..Default::default()
        };
        let r = nsga2(&mut p, &cfg, &Termination::Generations(40));
        let on_front = r
            .pareto
            .iter()
            .filter(|i| (0..=2).contains(&i.genome[0]))
            .count();
        assert!(
            on_front >= 2,
            "{:?}",
            r.pareto.iter().map(|i| i.genome[0]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn elitism_never_loses_the_best_extreme() {
        let mut p = Schaffer::new();
        let r = nsga2(&mut p, &small_cfg(9), &Termination::Generations(25));
        // f1-optimal point x=0 must be in the archive front.
        let best_f1 = r
            .pareto
            .iter()
            .map(|i| i.raw[0])
            .fold(f64::INFINITY, f64::min);
        assert!(best_f1 <= 1.0, "lost the f1 extreme: {best_f1}");
    }
}
