//! Fast non-dominated sorting (Deb et al., NSGA-II).
//!
//! "The sorting by non-domination reduces computational complexity" (§III-B1
//! citing \[12\]): this is the O(M·N²) algorithm from the NSGA-II paper,
//! assigning each individual a front rank.

use crate::individual::Individual;

/// Sorts a population into non-domination fronts.
///
/// Returns the fronts as index vectors (front 0 first) and writes each
/// individual's `rank`.
pub fn fast_non_dominated_sort(pop: &mut [Individual]) -> Vec<Vec<usize>> {
    let n = pop.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[p]: solutions p dominates; counts[p]: how many dominate p.
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut counts: Vec<usize> = vec![0; n];

    for p in 0..n {
        for q in (p + 1)..n {
            if pop[p].dominates(&pop[q]) {
                dominated[p].push(q);
                counts[q] += 1;
            } else if pop[q].dominates(&pop[p]) {
                dominated[q].push(p);
                counts[p] += 1;
            }
        }
    }

    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| counts[i] == 0).collect();
    let mut rank = 0usize;
    while !current.is_empty() {
        for &i in &current {
            pop[i].rank = rank;
        }
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominated[p] {
                counts[q] -= 1;
                if counts[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
        rank += 1;
    }
    fronts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(objs: &[f64]) -> Individual {
        Individual::new(vec![], objs.to_vec(), objs.to_vec())
    }

    #[test]
    fn empty_population() {
        let mut pop: Vec<Individual> = vec![];
        assert!(fast_non_dominated_sort(&mut pop).is_empty());
    }

    #[test]
    fn single_front_when_all_trade_off() {
        let mut pop = vec![
            ind(&[1.0, 4.0]),
            ind(&[2.0, 3.0]),
            ind(&[3.0, 2.0]),
            ind(&[4.0, 1.0]),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 4);
        assert!(pop.iter().all(|i| i.rank == 0));
    }

    #[test]
    fn layered_fronts() {
        let mut pop = vec![
            ind(&[1.0, 1.0]), // front 0
            ind(&[2.0, 2.0]), // front 1
            ind(&[3.0, 3.0]), // front 2
            ind(&[1.5, 0.5]), // front 0 (trade-off with [1,1])
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![0, 3]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![2]);
        assert_eq!(pop[3].rank, 0);
        assert_eq!(pop[2].rank, 2);
    }

    #[test]
    fn duplicates_share_a_front() {
        let mut pop = vec![ind(&[1.0, 1.0]), ind(&[1.0, 1.0]), ind(&[2.0, 2.0])];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts[0].len(), 2);
        assert_eq!(fronts[1], vec![2]);
    }

    #[test]
    fn ranks_cover_population() {
        let mut pop: Vec<Individual> = (0..20)
            .map(|i| {
                let x = i as f64;
                ind(&[x, 20.0 - x, (x - 10.0).abs()])
            })
            .collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
        assert!(pop.iter().all(|i| i.rank != usize::MAX));
    }

    #[test]
    fn three_objectives() {
        let mut pop = vec![
            ind(&[1.0, 2.0, 3.0]),
            ind(&[3.0, 2.0, 1.0]),
            ind(&[2.0, 2.0, 2.0]),
            ind(&[3.0, 3.0, 3.0]), // dominated by all except maybe
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(pop[3].rank, 1);
        assert_eq!(fronts[0].len(), 3);
    }
}
