//! Individuals: genome + objective values + NSGA-II bookkeeping.

use std::fmt;

/// One evaluated solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Decision-variable values.
    pub genome: Vec<i64>,
    /// Raw objective values as returned by the problem.
    pub raw: Vec<f64>,
    /// Objective values in minimization space (sense-adjusted).
    pub min_objs: Vec<f64>,
    /// Non-domination rank (0 = first front). Set by sorting.
    pub rank: usize,
    /// Crowding distance within its front. Set by the crowding pass.
    pub crowding: f64,
}

impl Individual {
    /// Creates an evaluated individual (rank/crowding unset).
    pub fn new(genome: Vec<i64>, raw: Vec<f64>, min_objs: Vec<f64>) -> Individual {
        Individual {
            genome,
            raw,
            min_objs,
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    /// Pareto dominance in minimization space: true when `self` is no worse
    /// everywhere and strictly better somewhere.
    pub fn dominates(&self, other: &Individual) -> bool {
        debug_assert_eq!(self.min_objs.len(), other.min_objs.len());
        let mut strictly_better = false;
        for (a, b) in self.min_objs.iter().zip(&other.min_objs) {
            if a > b {
                return false;
            }
            if a < b {
                strictly_better = true;
            }
        }
        strictly_better
    }

    /// The crowded-comparison operator (`≺_n` of Deb et al.): lower rank
    /// wins; ties broken by larger crowding distance.
    pub fn crowded_less(&self, other: &Individual) -> bool {
        self.rank < other.rank || (self.rank == other.rank && self.crowding > other.crowding)
    }
}

impl fmt::Display for Individual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} -> {:?}", self.genome, self.raw)
    }
}

/// Filters the non-dominated subset (indices) of a set of individuals.
pub fn non_dominated_indices(pop: &[Individual]) -> Vec<usize> {
    let mut out = Vec::new();
    'outer: for (i, a) in pop.iter().enumerate() {
        for (j, b) in pop.iter().enumerate() {
            if i != j && (b.dominates(a) || (b.min_objs == a.min_objs && j < i)) {
                // Dominated, or an identical earlier point (dedup ties).
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(objs: &[f64]) -> Individual {
        Individual::new(vec![0], objs.to_vec(), objs.to_vec())
    }

    #[test]
    fn dominance_basic() {
        let a = ind(&[1.0, 1.0]);
        let b = ind(&[2.0, 2.0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = ind(&[1.0, 1.0]);
        let b = ind(&[1.0, 1.0]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn trade_offs_do_not_dominate() {
        let a = ind(&[1.0, 3.0]);
        let b = ind(&[2.0, 2.0]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn weak_dominance_counts() {
        let a = ind(&[1.0, 2.0]);
        let b = ind(&[1.0, 3.0]);
        assert!(a.dominates(&b));
    }

    #[test]
    fn crowded_comparison() {
        let mut a = ind(&[1.0]);
        let mut b = ind(&[1.0]);
        a.rank = 0;
        b.rank = 1;
        assert!(a.crowded_less(&b));
        b.rank = 0;
        a.crowding = 2.0;
        b.crowding = 1.0;
        assert!(a.crowded_less(&b));
        assert!(!b.crowded_less(&a));
    }

    #[test]
    fn non_dominated_filter() {
        let pop = vec![
            ind(&[1.0, 5.0]),
            ind(&[2.0, 2.0]),
            ind(&[5.0, 1.0]),
            ind(&[4.0, 4.0]), // dominated by [2,2]
            ind(&[1.0, 5.0]), // duplicate of #0
        ];
        assert_eq!(non_dominated_indices(&pop), vec![0, 1, 2]);
    }

    #[test]
    fn single_point_is_nondominated() {
        let pop = vec![ind(&[3.0, 3.0])];
        assert_eq!(non_dominated_indices(&pop), vec![0]);
    }
}
