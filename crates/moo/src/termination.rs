//! Termination criteria.
//!
//! The paper's experiments bound exploration both by evaluation budget and
//! by wall-clock ("we constrained on time the DSE with a four hour soft
//! deadline to the genetic algorithm", §IV-A). The engine consults
//! [`Termination::should_stop`] between generations; the *external cost*
//! channel lets a problem report simulated tool seconds, so deadline runs
//! are reproducible instead of host-speed-dependent.

/// Progress snapshot handed to termination checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineState {
    /// Completed generations.
    pub generation: u32,
    /// Total problem evaluations so far.
    pub evaluations: u64,
    /// External cost reported by the problem (e.g. simulated Vivado
    /// seconds).
    pub external_cost: f64,
}

/// When to stop.
#[derive(Debug, Clone)]
pub enum Termination {
    /// Stop after this many generations.
    Generations(u32),
    /// Stop once this many evaluations have been spent.
    Evaluations(u64),
    /// Stop once the problem's external cost exceeds the budget (the
    /// paper's soft deadline: the running generation completes first).
    SoftDeadline(f64),
    /// Stop when any of the inner criteria fires.
    Any(Vec<Termination>),
}

impl Termination {
    /// Whether the engine should stop before the next generation.
    pub fn should_stop(&self, s: &EngineState) -> bool {
        match self {
            Termination::Generations(g) => s.generation >= *g,
            Termination::Evaluations(e) => s.evaluations >= *e,
            Termination::SoftDeadline(budget) => s.external_cost >= *budget,
            Termination::Any(list) => list.iter().any(|t| t.should_stop(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(generation: u32, evaluations: u64, external_cost: f64) -> EngineState {
        EngineState {
            generation,
            evaluations,
            external_cost,
        }
    }

    #[test]
    fn generations() {
        let t = Termination::Generations(10);
        assert!(!t.should_stop(&st(9, 0, 0.0)));
        assert!(t.should_stop(&st(10, 0, 0.0)));
    }

    #[test]
    fn evaluations() {
        let t = Termination::Evaluations(100);
        assert!(!t.should_stop(&st(0, 99, 0.0)));
        assert!(t.should_stop(&st(0, 100, 0.0)));
    }

    #[test]
    fn soft_deadline() {
        let t = Termination::SoftDeadline(4.0 * 3600.0);
        assert!(!t.should_stop(&st(0, 0, 14_000.0)));
        assert!(t.should_stop(&st(0, 0, 14_400.0)));
    }

    #[test]
    fn any_combines() {
        let t = Termination::Any(vec![
            Termination::Generations(5),
            Termination::SoftDeadline(100.0),
        ]);
        assert!(!t.should_stop(&st(4, 0, 50.0)));
        assert!(t.should_stop(&st(5, 0, 50.0)));
        assert!(t.should_stop(&st(4, 0, 101.0)));
    }
}
