//! Duplicate elimination.
//!
//! The paper's configuration uses SBX "with duplication elimination":
//! offspring identical to an existing genome (in the parent set or earlier
//! offspring) are replaced by random resamples, keeping evaluation budget
//! from being wasted on repeats — which matters when one evaluation is a
//! Vivado run.

use crate::ops::sampling::random_genome;
use crate::problem::IntVar;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Collapses a batch to its distinct genomes, preserving first-occurrence
/// order. Returns `(unique, back)` where `unique[k]` is the input index of
/// the k-th distinct genome and `back[i]` maps every input slot to its
/// genome's position in `unique` — so `genomes[unique[back[i]]] ==
/// genomes[i]`.
///
/// Batch evaluators use this to dispatch each distinct genome exactly once
/// (duplicate dispatches of the same point would race on the simulator's
/// per-point cache and double-count `tool_runs`) and fan the results back
/// out to every input slot.
pub fn unique_in_batch(genomes: &[Vec<i64>]) -> (Vec<usize>, Vec<usize>) {
    let mut first: HashMap<&[i64], usize> = HashMap::with_capacity(genomes.len());
    let mut unique: Vec<usize> = Vec::with_capacity(genomes.len());
    let mut back: Vec<usize> = Vec::with_capacity(genomes.len());
    for (i, g) in genomes.iter().enumerate() {
        let k = *first.entry(g.as_slice()).or_insert_with(|| {
            unique.push(i);
            unique.len() - 1
        });
        back.push(k);
    }
    (unique, back)
}

/// Replaces duplicate genomes in `offspring` (relative to `existing` and to
/// earlier offspring) with random resamples. Gives up on a slot after a
/// bounded number of attempts (tiny design spaces), leaving the duplicate.
pub fn dedup_against<R: Rng + ?Sized>(
    vars: &[IntVar],
    existing: &[Vec<i64>],
    offspring: &mut [Vec<i64>],
    rng: &mut R,
) {
    let mut seen: HashSet<Vec<i64>> = existing.iter().cloned().collect();
    for slot in offspring.iter_mut() {
        if seen.contains(slot) {
            let mut attempts = 0;
            while seen.contains(slot) && attempts < 50 {
                *slot = random_genome(vars, rng);
                attempts += 1;
            }
        }
        seen.insert(slot.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vars() -> Vec<IntVar> {
        vec![IntVar::new("a", 0, 1000), IntVar::new("b", 0, 1000)]
    }

    #[test]
    fn removes_duplicates_of_parents() {
        let mut rng = StdRng::seed_from_u64(1);
        let parents = vec![vec![1, 1], vec![2, 2]];
        let mut off = vec![vec![1, 1], vec![3, 3]];
        dedup_against(&vars(), &parents, &mut off, &mut rng);
        assert_ne!(off[0], vec![1, 1]);
        assert_eq!(off[1], vec![3, 3]);
    }

    #[test]
    fn removes_duplicates_within_offspring() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut off = vec![vec![5, 5], vec![5, 5], vec![5, 5]];
        dedup_against(&vars(), &[], &mut off, &mut rng);
        let mut sorted = off.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn tiny_space_gives_up_gracefully() {
        let small = vec![IntVar::new("a", 0, 0)];
        let mut rng = StdRng::seed_from_u64(3);
        let mut off = vec![vec![0], vec![0]];
        dedup_against(&small, &[], &mut off, &mut rng);
        assert_eq!(off, vec![vec![0], vec![0]]);
    }

    #[test]
    fn unique_in_batch_all_distinct() {
        let g = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let (unique, back) = unique_in_batch(&g);
        assert_eq!(unique, vec![0, 1, 2]);
        assert_eq!(back, vec![0, 1, 2]);
    }

    #[test]
    fn unique_in_batch_collapses_repeats() {
        let g = vec![vec![7], vec![1], vec![7], vec![7], vec![1], vec![9]];
        let (unique, back) = unique_in_batch(&g);
        assert_eq!(unique, vec![0, 1, 5], "first occurrences, input order");
        assert_eq!(back, vec![0, 1, 0, 0, 1, 2]);
        // The round-trip invariant every slot relies on.
        for (i, &k) in back.iter().enumerate() {
            assert_eq!(g[unique[k]], g[i]);
        }
    }

    #[test]
    fn unique_in_batch_empty() {
        let (unique, back) = unique_in_batch(&[]);
        assert!(unique.is_empty() && back.is_empty());
    }

    #[test]
    fn unique_offspring_untouched() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut off = vec![vec![1, 2], vec![3, 4]];
        let before = off.clone();
        dedup_against(&vars(), &[vec![9, 9]], &mut off, &mut rng);
        assert_eq!(off, before);
    }
}
