//! Integer simulated binary crossover (SBX).
//!
//! Deb & Agrawal's SBX [31 in the paper] adapted to integers: the real-coded
//! spread factor is applied per gene, children are rounded to the nearest
//! integer and clamped into bounds. `eta` controls how close children stay
//! to their parents (larger = more conservative).

use crate::problem::IntVar;
use rand::Rng;

/// Integer SBX operator.
#[derive(Debug, Clone, Copy)]
pub struct IntegerSbx {
    /// Distribution index η_c (typically 10–20 for integers).
    pub eta: f64,
    /// Probability of crossing a mating pair at all.
    pub prob_pair: f64,
    /// Per-gene crossover probability once the pair crosses.
    pub prob_gene: f64,
}

impl Default for IntegerSbx {
    fn default() -> Self {
        IntegerSbx {
            eta: 15.0,
            prob_pair: 0.9,
            prob_gene: 0.5,
        }
    }
}

impl IntegerSbx {
    /// Crosses two parents, producing two children within bounds.
    pub fn cross<R: Rng + ?Sized>(
        &self,
        vars: &[IntVar],
        p1: &[i64],
        p2: &[i64],
        rng: &mut R,
    ) -> (Vec<i64>, Vec<i64>) {
        debug_assert_eq!(p1.len(), vars.len());
        debug_assert_eq!(p2.len(), vars.len());
        let mut c1 = p1.to_vec();
        let mut c2 = p2.to_vec();
        if rng.gen::<f64>() > self.prob_pair {
            return (c1, c2);
        }
        for (i, v) in vars.iter().enumerate() {
            if rng.gen::<f64>() > self.prob_gene || p1[i] == p2[i] {
                continue;
            }
            let x1 = p1[i].min(p2[i]) as f64;
            let x2 = p1[i].max(p2[i]) as f64;
            let u: f64 = rng.gen();
            let beta = if u <= 0.5 {
                (2.0 * u).powf(1.0 / (self.eta + 1.0))
            } else {
                (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (self.eta + 1.0))
            };
            let y1 = 0.5 * ((x1 + x2) - beta * (x2 - x1));
            let y2 = 0.5 * ((x1 + x2) + beta * (x2 - x1));
            // Randomly assign which child gets which value (standard SBX).
            let (a, b) = if rng.gen::<bool>() {
                (y1, y2)
            } else {
                (y2, y1)
            };
            c1[i] = v.clamp(a.round() as i64);
            c2[i] = v.clamp(b.round() as i64);
        }
        (c1, c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vars() -> Vec<IntVar> {
        vec![IntVar::new("a", 0, 100), IntVar::new("b", 0, 100)]
    }

    #[test]
    fn children_within_bounds() {
        let op = IntegerSbx::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let (c1, c2) = op.cross(&vars(), &[0, 100], &[100, 0], &mut rng);
            for c in [&c1, &c2] {
                assert!(c.iter().all(|&g| (0..=100).contains(&g)), "{c:?}");
            }
        }
    }

    #[test]
    fn identical_parents_unchanged() {
        let op = IntegerSbx {
            prob_pair: 1.0,
            prob_gene: 1.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (c1, c2) = op.cross(&vars(), &[42, 7], &[42, 7], &mut rng);
        assert_eq!(c1, vec![42, 7]);
        assert_eq!(c2, vec![42, 7]);
    }

    #[test]
    fn high_eta_keeps_children_near_parents() {
        let near = IntegerSbx {
            eta: 100.0,
            prob_pair: 1.0,
            prob_gene: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut max_dev = 0i64;
        for _ in 0..300 {
            let (c1, c2) = near.cross(&vars(), &[40, 40], &[60, 60], &mut rng);
            for c in [c1, c2] {
                for g in c {
                    max_dev = max_dev.max((g - 40).abs().min((g - 60).abs()));
                }
            }
        }
        assert!(max_dev <= 10, "high-eta children strayed {max_dev}");
    }

    #[test]
    fn mean_preserved_on_average() {
        let op = IntegerSbx {
            prob_pair: 1.0,
            prob_gene: 1.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut sum = 0i64;
        let n = 2000;
        for _ in 0..n {
            let (c1, c2) = op.cross(&vars(), &[20, 20], &[80, 80], &mut rng);
            sum += c1[0] + c2[0];
        }
        let mean = sum as f64 / (2 * n) as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn zero_pair_probability_is_identity() {
        let op = IntegerSbx {
            prob_pair: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let (c1, c2) = op.cross(&vars(), &[1, 2], &[3, 4], &mut rng);
        assert_eq!(c1, vec![1, 2]);
        assert_eq!(c2, vec![3, 4]);
    }

    #[test]
    fn deterministic_per_seed() {
        let op = IntegerSbx::default();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            op.cross(&vars(), &[10, 90], &[90, 10], &mut a),
            op.cross(&vars(), &[10, 90], &[90, 10], &mut b)
        );
    }
}
