//! Binary tournament selection with the crowded-comparison operator.

use crate::individual::Individual;
use rand::Rng;

/// Picks one parent index by binary tournament: two random candidates, the
/// crowded-comparison winner survives (ties broken uniformly).
pub fn binary_tournament<R: Rng + ?Sized>(pop: &[Individual], rng: &mut R) -> usize {
    debug_assert!(!pop.is_empty());
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if pop[a].crowded_less(&pop[b]) {
        a
    } else if pop[b].crowded_less(&pop[a]) {
        b
    } else if rng.gen::<bool>() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ind(rank: usize, crowding: f64) -> Individual {
        let mut i = Individual::new(vec![], vec![], vec![]);
        i.rank = rank;
        i.crowding = crowding;
        i
    }

    #[test]
    fn better_rank_wins_more_often() {
        let pop = vec![ind(0, 1.0), ind(5, 1.0)];
        let mut rng = StdRng::seed_from_u64(1);
        let mut wins0 = 0;
        for _ in 0..2000 {
            if binary_tournament(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        // Index 0 loses only when both candidates drawn are index 1 (~25 %).
        assert!(wins0 > 1300, "wins0 = {wins0}");
    }

    #[test]
    fn crowding_breaks_rank_ties() {
        let pop = vec![ind(0, 10.0), ind(0, 0.1)];
        let mut rng = StdRng::seed_from_u64(2);
        let mut wins0 = 0;
        for _ in 0..2000 {
            if binary_tournament(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        assert!(wins0 > 1300, "wins0 = {wins0}");
    }

    #[test]
    fn exact_ties_are_roughly_uniform() {
        let pop = vec![ind(0, 1.0), ind(0, 1.0)];
        let mut rng = StdRng::seed_from_u64(3);
        let mut wins0 = 0;
        for _ in 0..2000 {
            if binary_tournament(&pop, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        assert!((800..1200).contains(&wins0), "wins0 = {wins0}");
    }

    #[test]
    fn single_individual_population() {
        let pop = vec![ind(0, 1.0)];
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(binary_tournament(&pop, &mut rng), 0);
    }
}
