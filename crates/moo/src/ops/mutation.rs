//! Gaussian integer mutation.
//!
//! The paper: "mutation occurs with an approximately Gaussian distribution
//! with 0.5 as mean and variance controlled by a hand-tuned parameter".
//! Implemented as: each gene mutates with probability `prob` (default
//! 1/n_vars); a mutating gene is perturbed by a Gaussian step whose standard
//! deviation is `sigma_frac` of the variable's range, rounded away from
//! zero so mutations always move.

use crate::problem::IntVar;
use rand::Rng;

/// Gaussian integer mutation operator.
#[derive(Debug, Clone, Copy)]
pub struct GaussianIntegerMutation {
    /// Per-gene mutation probability; `None` = 1/n_vars.
    pub prob: Option<f64>,
    /// Standard deviation as a fraction of each variable's range — the
    /// paper's "hand-tuned parameter" controlling the variance.
    pub sigma_frac: f64,
    /// Probability that a mutating gene takes a fine unit-scale step
    /// (σ = 1) instead of the coarse range-scaled one. On wide variables
    /// the coarse step almost never lands on a neighbouring integer, so
    /// without this the search cannot resolve adjacent configurations
    /// around the front.
    pub fine_prob: f64,
}

impl Default for GaussianIntegerMutation {
    fn default() -> Self {
        GaussianIntegerMutation {
            prob: None,
            sigma_frac: 0.12,
            fine_prob: 0.5,
        }
    }
}

impl GaussianIntegerMutation {
    /// Mutates a genome in place.
    pub fn mutate<R: Rng + ?Sized>(&self, vars: &[IntVar], genome: &mut [i64], rng: &mut R) {
        let p = self.prob.unwrap_or(1.0 / vars.len().max(1) as f64);
        for (i, v) in vars.iter().enumerate() {
            if rng.gen::<f64>() > p {
                continue;
            }
            let range = (v.hi - v.lo) as f64;
            if range <= 0.0 {
                continue;
            }
            let coarse = (self.sigma_frac * range).max(0.5);
            let sigma = if rng.gen::<f64>() < self.fine_prob {
                coarse.min(1.0)
            } else {
                coarse
            };
            let step = gaussian(rng) * sigma;
            // Round away from zero so a mutation is never a no-op.
            let delta = if step >= 0.0 {
                step.max(0.5).round() as i64
            } else {
                step.min(-0.5).round() as i64
            };
            genome[i] = v.clamp(genome[i] + delta);
        }
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vars() -> Vec<IntVar> {
        vec![IntVar::new("a", 0, 100)]
    }

    #[test]
    fn stays_within_bounds() {
        let op = GaussianIntegerMutation {
            prob: Some(1.0),
            sigma_frac: 0.5,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        for start in [0i64, 50, 100] {
            for _ in 0..300 {
                let mut g = vec![start];
                op.mutate(&vars(), &mut g, &mut rng);
                assert!((0..=100).contains(&g[0]));
            }
        }
    }

    #[test]
    fn always_moves_when_forced_and_unclamped() {
        let op = GaussianIntegerMutation {
            prob: Some(1.0),
            sigma_frac: 0.12,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut moved = 0;
        for _ in 0..200 {
            let mut g = vec![50i64];
            op.mutate(&vars(), &mut g, &mut rng);
            if g[0] != 50 {
                moved += 1;
            }
        }
        // Only clamping could keep it, and 50 is mid-range.
        assert_eq!(moved, 200);
    }

    #[test]
    fn zero_probability_never_mutates() {
        let op = GaussianIntegerMutation {
            prob: Some(0.0),
            sigma_frac: 0.2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = vec![50i64];
        op.mutate(&vars(), &mut g, &mut rng);
        assert_eq!(g[0], 50);
    }

    #[test]
    fn steps_roughly_symmetric() {
        let op = GaussianIntegerMutation {
            prob: Some(1.0),
            sigma_frac: 0.12,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut sum = 0i64;
        for _ in 0..4000 {
            let mut g = vec![50i64];
            op.mutate(&vars(), &mut g, &mut rng);
            sum += g[0] - 50;
        }
        let mean = sum as f64 / 4000.0;
        assert!(mean.abs() < 1.0, "drift {mean}");
    }

    #[test]
    fn sigma_scales_step_size() {
        let small = GaussianIntegerMutation {
            prob: Some(1.0),
            sigma_frac: 0.02,
            ..Default::default()
        };
        let large = GaussianIntegerMutation {
            prob: Some(1.0),
            sigma_frac: 0.40,
            ..Default::default()
        };
        let spread = |op: &GaussianIntegerMutation, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut acc = 0f64;
            for _ in 0..1000 {
                let mut g = vec![50i64];
                op.mutate(&vars(), &mut g, &mut rng);
                acc += ((g[0] - 50) as f64).abs();
            }
            acc / 1000.0
        };
        assert!(spread(&large, 5) > 3.0 * spread(&small, 5));
    }

    #[test]
    fn degenerate_variable_untouched() {
        let fixed = vec![IntVar::new("k", 7, 7)];
        let op = GaussianIntegerMutation {
            prob: Some(1.0),
            sigma_frac: 0.3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = vec![7i64];
        op.mutate(&fixed, &mut g, &mut rng);
        assert_eq!(g[0], 7);
    }
}
