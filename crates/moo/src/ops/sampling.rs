//! Integer random sampling.

use crate::problem::IntVar;
use rand::Rng;

/// Samples one genome uniformly within bounds.
pub fn random_genome<R: Rng + ?Sized>(vars: &[IntVar], rng: &mut R) -> Vec<i64> {
    vars.iter().map(|v| rng.gen_range(v.lo..=v.hi)).collect()
}

/// Samples `n` genomes, rejecting duplicates while the space allows
/// (falls back to accepting duplicates when the space is smaller than `n`).
pub fn random_population<R: Rng + ?Sized>(vars: &[IntVar], n: usize, rng: &mut R) -> Vec<Vec<i64>> {
    let volume = vars
        .iter()
        .fold(1u64, |a, v| a.saturating_mul(v.cardinality()));
    let mut out: Vec<Vec<i64>> = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while out.len() < n {
        let g = random_genome(vars, rng);
        let dup = out.contains(&g);
        attempts += 1;
        if !dup || volume < n as u64 || attempts > 20 * n {
            out.push(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vars() -> Vec<IntVar> {
        vec![IntVar::new("a", 0, 9), IntVar::new("b", -5, 5)]
    }

    #[test]
    fn genomes_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let g = random_genome(&vars(), &mut rng);
            assert!((0..=9).contains(&g[0]));
            assert!((-5..=5).contains(&g[1]));
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(
            random_population(&vars(), 10, &mut a),
            random_population(&vars(), 10, &mut b)
        );
    }

    #[test]
    fn population_unique_when_space_allows() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = random_population(&vars(), 40, &mut rng);
        let mut sorted = pop.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), pop.len());
    }

    #[test]
    fn tiny_space_still_fills_population() {
        let small = vec![IntVar::new("a", 0, 1)];
        let mut rng = StdRng::seed_from_u64(3);
        let pop = random_population(&small, 10, &mut rng);
        assert_eq!(pop.len(), 10);
    }

    #[test]
    fn covers_the_range_eventually() {
        let v = vec![IntVar::new("a", 0, 3)];
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(random_genome(&v, &mut rng)[0]);
        }
        assert_eq!(seen.len(), 4);
    }
}
