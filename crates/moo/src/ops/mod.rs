//! Variation and selection operators.
//!
//! The paper's hyper-parameters (§IV): "integer random sampling, integer
//! simulated binary crossover, with duplication elimination; mutation occurs
//! with an approximately Gaussian distribution with 0.5 as mean and variance
//! controlled by a hand-tuned parameter."

pub mod crossover;
pub mod dedup;
pub mod mutation;
pub mod sampling;
pub mod selection;

pub use crossover::IntegerSbx;
pub use dedup::{dedup_against, unique_in_batch};
pub use mutation::GaussianIntegerMutation;
pub use sampling::random_genome;
pub use selection::binary_tournament;
