//! Standard multi-objective benchmark problems (integer-grid adaptations
//! of the ZDT suite), used by the tests and benches to validate optimizer
//! quality independent of the EDA stack.
//!
//! Decision variables are integers on `[0, RESOLUTION]`, mapped to the
//! canonical `[0, 1]` reals — matching how Dovado's index spaces discretize
//! continuous trade-offs.

use crate::problem::{IntVar, Objective, Problem};

/// Grid resolution per variable.
pub const RESOLUTION: i64 = 1000;

fn unit(v: i64) -> f64 {
    (v.clamp(0, RESOLUTION)) as f64 / RESOLUTION as f64
}

/// ZDT1: convex front `f2 = 1 − √f1` at `g = 1` (all tail variables 0).
pub struct Zdt1 {
    vars: Vec<IntVar>,
    objs: Vec<Objective>,
    /// Evaluation counter.
    pub evaluations: u64,
}

impl Zdt1 {
    /// Creates the problem with `n` decision variables (n ≥ 2).
    pub fn new(n: usize) -> Zdt1 {
        assert!(n >= 2);
        Zdt1 {
            vars: (0..n)
                .map(|i| IntVar::new(format!("x{i}"), 0, RESOLUTION))
                .collect(),
            objs: vec![Objective::minimize("f1"), Objective::minimize("f2")],
            evaluations: 0,
        }
    }

    /// The true front: `f2 = 1 − √f1`, `f1 ∈ [0, 1]`.
    pub fn true_front(points: usize) -> Vec<Vec<f64>> {
        (0..points)
            .map(|i| {
                let f1 = i as f64 / (points - 1).max(1) as f64;
                vec![f1, 1.0 - f1.sqrt()]
            })
            .collect()
    }
}

impl Problem for Zdt1 {
    fn variables(&self) -> &[IntVar] {
        &self.vars
    }

    fn objectives(&self) -> &[Objective] {
        &self.objs
    }

    fn evaluate(&mut self, genome: &[i64]) -> Vec<f64> {
        self.evaluations += 1;
        let f1 = unit(genome[0]);
        let tail: f64 = genome[1..].iter().map(|&v| unit(v)).sum();
        let g = 1.0 + 9.0 * tail / (genome.len() - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        vec![f1, f2]
    }
}

/// ZDT2: non-convex front `f2 = 1 − f1²`.
pub struct Zdt2 {
    vars: Vec<IntVar>,
    objs: Vec<Objective>,
}

impl Zdt2 {
    /// Creates the problem with `n` decision variables (n ≥ 2).
    pub fn new(n: usize) -> Zdt2 {
        assert!(n >= 2);
        Zdt2 {
            vars: (0..n)
                .map(|i| IntVar::new(format!("x{i}"), 0, RESOLUTION))
                .collect(),
            objs: vec![Objective::minimize("f1"), Objective::minimize("f2")],
        }
    }
}

impl Problem for Zdt2 {
    fn variables(&self) -> &[IntVar] {
        &self.vars
    }

    fn objectives(&self) -> &[Objective] {
        &self.objs
    }

    fn evaluate(&mut self, genome: &[i64]) -> Vec<f64> {
        let f1 = unit(genome[0]);
        let tail: f64 = genome[1..].iter().map(|&v| unit(v)).sum();
        let g = 1.0 + 9.0 * tail / (genome.len() - 1) as f64;
        let f2 = g * (1.0 - (f1 / g) * (f1 / g));
        vec![f1, f2]
    }
}

/// ZDT3: disconnected front (sine term) — stresses diversity preservation.
pub struct Zdt3 {
    vars: Vec<IntVar>,
    objs: Vec<Objective>,
}

impl Zdt3 {
    /// Creates the problem with `n` decision variables (n ≥ 2).
    pub fn new(n: usize) -> Zdt3 {
        assert!(n >= 2);
        Zdt3 {
            vars: (0..n)
                .map(|i| IntVar::new(format!("x{i}"), 0, RESOLUTION))
                .collect(),
            objs: vec![Objective::minimize("f1"), Objective::minimize("f2")],
        }
    }
}

impl Problem for Zdt3 {
    fn variables(&self) -> &[IntVar] {
        &self.vars
    }

    fn objectives(&self) -> &[Objective] {
        &self.objs
    }

    fn evaluate(&mut self, genome: &[i64]) -> Vec<f64> {
        let f1 = unit(genome[0]);
        let tail: f64 = genome[1..].iter().map(|&v| unit(v)).sum();
        let g = 1.0 + 9.0 * tail / (genome.len() - 1) as f64;
        let h = 1.0 - (f1 / g).sqrt() - (f1 / g) * (10.0 * std::f64::consts::PI * f1).sin();
        vec![f1, g * h]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{hypervolume, igd};
    use crate::nsga2::{nsga2, Nsga2Config};
    use crate::termination::Termination;

    fn front_of(result: &crate::nsga2::OptResult) -> Vec<Vec<f64>> {
        result.pareto.iter().map(|i| i.min_objs.clone()).collect()
    }

    #[test]
    fn zdt1_optimum_at_zero_tail() {
        let mut p = Zdt1::new(5);
        // x = (250, 0, 0, 0, 0) → f1 = 0.25, g = 1, f2 = 0.5.
        let f = p.evaluate(&[250, 0, 0, 0, 0]);
        assert!((f[0] - 0.25).abs() < 1e-9);
        assert!((f[1] - 0.5).abs() < 1e-9);
        // Nonzero tail inflates f2.
        let worse = p.evaluate(&[250, 500, 0, 0, 0]);
        assert!(worse[1] > f[1]);
    }

    #[test]
    fn nsga2_approaches_zdt1_front() {
        let mut p = Zdt1::new(6);
        let cfg = Nsga2Config {
            pop_size: 48,
            seed: 2,
            ..Default::default()
        };
        let r = nsga2(&mut p, &cfg, &Termination::Generations(120));
        let front = front_of(&r);
        let d = igd(&front, &Zdt1::true_front(50));
        assert!(d < 0.15, "IGD {d} too far from the true front");
        // Hypervolume against (1.1, 1.1): the true front scores ~0.87.
        let hv = hypervolume(&front, &[1.1, 1.1]);
        assert!(hv > 0.55, "hypervolume {hv}");
    }

    #[test]
    fn nsga2_handles_nonconvex_zdt2() {
        let mut p = Zdt2::new(6);
        let cfg = Nsga2Config {
            pop_size: 48,
            seed: 3,
            ..Default::default()
        };
        let r = nsga2(&mut p, &cfg, &Termination::Generations(120));
        // The non-convex front defeats the weighted-sum GA (it collapses to
        // the extremes) but not NSGA-II: interior points must survive.
        let interior = r
            .pareto
            .iter()
            .filter(|i| i.min_objs[0] > 0.2 && i.min_objs[0] < 0.8)
            .count();
        assert!(interior >= 3, "only {interior} interior points");
    }

    #[test]
    fn weighted_sum_collapses_on_zdt2() {
        // The classic failure NSGA-II exists to fix: equal-weight
        // scalarization cannot hold interior points of a non-convex front.
        let mut p = Zdt2::new(6);
        let r = crate::baselines::weighted_sum_ga(
            &mut p,
            &[0.5, 0.5],
            &Termination::Generations(120),
            48,
            3,
        );
        // Best-by-scalar individuals concentrate at the extremes.
        let best = r
            .population
            .iter()
            .min_by(|a, b| {
                let sa: f64 = a.min_objs.iter().sum();
                let sb: f64 = b.min_objs.iter().sum();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap();
        let f1 = best.min_objs[0];
        assert!(
            !(0.1..=0.9).contains(&f1),
            "weighted sum unexpectedly held an interior point (f1 = {f1})"
        );
    }

    #[test]
    fn zdt3_front_is_disconnected() {
        let mut p = Zdt3::new(6);
        let cfg = Nsga2Config {
            pop_size: 48,
            seed: 4,
            ..Default::default()
        };
        let r = nsga2(&mut p, &cfg, &Termination::Generations(120));
        // f2 on ZDT3's front dips negative in some segments.
        assert!(r.pareto.iter().any(|i| i.min_objs[1] < 0.0));
    }

    #[test]
    fn evaluation_counter_tracks() {
        let mut p = Zdt1::new(3);
        let cfg = Nsga2Config {
            pop_size: 10,
            seed: 1,
            ..Default::default()
        };
        let r = nsga2(&mut p, &cfg, &Termination::Generations(5));
        assert_eq!(p.evaluations, r.evaluations);
    }
}
