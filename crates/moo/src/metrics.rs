//! Front-quality metrics: hypervolume, inverted generational distance, and
//! Deb's spread Δ. Used by the ablation benches to compare explorers.

use crate::individual::Individual;

/// Keeps only points strictly better than `reference` in every coordinate
/// and mutually non-dominated (minimization space). Points of the wrong
/// dimensionality or with non-finite coordinates are dropped rather than
/// allowed to panic the recursion.
fn clean_front(points: &[Vec<f64>], reference: &[f64]) -> Vec<Vec<f64>> {
    let inside: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| {
            p.len() == reference.len()
                && p.iter().all(|a| a.is_finite())
                && p.iter().zip(reference).all(|(a, r)| a < r)
        })
        .cloned()
        .collect();
    let mut keep = Vec::new();
    'outer: for (i, p) in inside.iter().enumerate() {
        for (j, q) in inside.iter().enumerate() {
            if i == j {
                continue;
            }
            let no_worse = q.iter().zip(p).all(|(a, b)| a <= b);
            let better = q.iter().zip(p).any(|(a, b)| a < b);
            if (no_worse && better) || (q == p && j < i) {
                continue 'outer;
            }
        }
        keep.push(p.clone());
    }
    keep
}

/// Hypervolume (minimization space) dominated by `points` against
/// `reference`. Exact recursive slicing — fine for the front sizes DSE
/// produces (tens of points, ≤ ~5 objectives).
///
/// Degenerate inputs never panic: an empty or non-finite reference, an
/// empty front, dimension-mismatched points, or points with non-finite
/// coordinates all contribute zero volume. The portfolio selector's
/// feature extractor relies on this when a race leg produces no front.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    if reference.is_empty() || reference.iter().any(|r| !r.is_finite()) {
        return 0.0;
    }
    let front = clean_front(points, reference);
    hv_recurse(&front, reference)
}

fn hv_recurse(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let d = reference.len();
    if d == 1 {
        let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        return (reference[0] - best).max(0.0);
    }
    // Sweep the last dimension ascending; each slab's cross-section is the
    // (d-1)-dimensional hypervolume of the points at or below the slab.
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| {
        a[d - 1]
            .partial_cmp(&b[d - 1])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut total = 0.0;
    for i in 0..pts.len() {
        let z_lo = pts[i][d - 1];
        let z_hi = if i + 1 < pts.len() {
            pts[i + 1][d - 1]
        } else {
            reference[d - 1]
        };
        let thickness = (z_hi - z_lo).max(0.0);
        if thickness == 0.0 {
            continue;
        }
        let slice: Vec<Vec<f64>> = pts[..=i].iter().map(|p| p[..d - 1].to_vec()).collect();
        let cleaned = clean_front(&slice, &reference[..d - 1]);
        total += thickness * hv_recurse(&cleaned, &reference[..d - 1]);
    }
    total
}

/// Hypervolume of a set of individuals (their minimization-space values).
pub fn hypervolume_of(front: &[Individual], reference: &[f64]) -> f64 {
    let pts: Vec<Vec<f64>> = front.iter().map(|i| i.min_objs.clone()).collect();
    hypervolume(&pts, reference)
}

/// Inverted generational distance: mean distance from each reference-set
/// point to its nearest front point. Lower is better.
pub fn igd(front: &[Vec<f64>], reference_set: &[Vec<f64>]) -> f64 {
    if reference_set.is_empty() {
        return 0.0;
    }
    if front.is_empty() {
        return f64::INFINITY;
    }
    let total: f64 = reference_set
        .iter()
        .map(|r| {
            front
                .iter()
                .map(|p| {
                    p.iter()
                        .zip(r)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / reference_set.len() as f64
}

/// Deb's spread metric Δ over a front (sorted internally by the first
/// objective). 0 = perfectly even spacing. Needs ≥ 3 points; returns
/// `None` otherwise.
pub fn spread(front: &[Vec<f64>]) -> Option<f64> {
    if front.len() < 3 {
        return None;
    }
    let mut pts = front.to_vec();
    pts.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap_or(std::cmp::Ordering::Equal));
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let gaps: Vec<f64> = pts.windows(2).map(|w| dist(&w[0], &w[1])).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    if mean == 0.0 {
        return Some(0.0);
    }
    let dev: f64 = gaps.iter().map(|g| (g - mean).abs()).sum();
    Some(dev / (gaps.len() as f64 * mean))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hv_single_point_2d() {
        let pts = vec![vec![1.0, 1.0]];
        assert!((hypervolume(&pts, &[3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv_two_tradeoff_points_2d() {
        // [1,2] and [2,1] vs ref [3,3]: union area = 2*1 + 1*2 - 1*1 = wait,
        // compute: point (1,2) covers [1,3]x[2,3] = 2; point (2,1) covers
        // [2,3]x[1,3] = 2; overlap [2,3]x[2,3] = 1 → total 3.
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!((hypervolume(&pts, &[3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hv_dominated_points_ignored() {
        let pts = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert!((hypervolume(&pts, &[3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv_points_outside_reference_ignored() {
        let pts = vec![vec![4.0, 1.0], vec![1.0, 1.0]];
        assert!((hypervolume(&pts, &[3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv_empty_is_zero() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn hv_empty_reference_is_zero() {
        // Zero-dimensional reference used to underflow the recursion.
        assert_eq!(hypervolume(&[vec![1.0]], &[]), 0.0);
        assert_eq!(hypervolume(&[], &[]), 0.0);
    }

    #[test]
    fn hv_non_finite_reference_is_zero() {
        assert_eq!(hypervolume(&[vec![1.0]], &[f64::NAN]), 0.0);
        assert_eq!(hypervolume(&[vec![1.0, 1.0]], &[3.0, f64::INFINITY]), 0.0);
    }

    #[test]
    fn hv_dimension_mismatched_points_are_dropped() {
        // A 1-d point against a 2-d reference used to pass the zip-based
        // filter and then index out of bounds inside the recursion.
        let pts = vec![vec![1.0], vec![1.0, 1.0], vec![1.0, 1.0, 1.0]];
        assert!((hypervolume(&pts, &[3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv_non_finite_points_are_dropped() {
        let pts = vec![vec![f64::NAN, 1.0], vec![1.0, f64::NEG_INFINITY]];
        assert_eq!(hypervolume(&pts, &[3.0, 3.0]), 0.0);
        let mixed = vec![vec![f64::NAN, 1.0], vec![1.0, 1.0]];
        assert!((hypervolume(&mixed, &[3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv_degenerate_front_on_reference_is_zero() {
        // Points sitting exactly on (or outside) the reference dominate
        // nothing.
        let pts = vec![vec![3.0, 3.0], vec![3.0, 1.0], vec![5.0, 5.0]];
        assert_eq!(hypervolume(&pts, &[3.0, 3.0]), 0.0);
    }

    #[test]
    fn hv_single_objective() {
        assert!((hypervolume(&[vec![1.0]], &[3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hv_3d_box() {
        let pts = vec![vec![0.0, 0.0, 0.0]];
        assert!((hypervolume(&pts, &[2.0, 3.0, 4.0]) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn hv_3d_union() {
        // Two boxes: (0,0,1) → 2*2*1=4 … vs ref (2,2,2):
        // box A from (0,0,1): 2*2*1 = 4; box B from (1,1,0): 1*1*2 = 2;
        // overlap: x∈[1,2], y∈[1,2], z∈[1,2] = 1 → union = 5.
        let pts = vec![vec![0.0, 0.0, 1.0], vec![1.0, 1.0, 0.0]];
        assert!(
            (hypervolume(&pts, &[2.0, 2.0, 2.0]) - 5.0).abs() < 1e-12,
            "{}",
            hypervolume(&pts, &[2.0, 2.0, 2.0])
        );
    }

    #[test]
    fn hv_monotone_in_points() {
        let a = vec![vec![2.0, 2.0]];
        let mut b = a.clone();
        b.push(vec![1.0, 2.5]);
        let r = [4.0, 4.0];
        assert!(hypervolume(&b, &r) > hypervolume(&a, &r));
    }

    #[test]
    fn igd_zero_when_front_covers_reference() {
        let f = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert_eq!(igd(&f, &f), 0.0);
    }

    #[test]
    fn igd_grows_with_distance() {
        let reference = vec![vec![0.0, 0.0]];
        let near = vec![vec![0.1, 0.0]];
        let far = vec![vec![5.0, 0.0]];
        assert!(igd(&near, &reference) < igd(&far, &reference));
        assert_eq!(igd(&[], &reference), f64::INFINITY);
    }

    #[test]
    fn spread_even_spacing_is_zero() {
        let f = vec![vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]];
        assert!(spread(&f).unwrap() < 1e-12);
    }

    #[test]
    fn spread_uneven_positive() {
        let f = vec![vec![0.0, 3.0], vec![0.1, 2.9], vec![3.0, 0.0]];
        assert!(spread(&f).unwrap() > 0.5);
    }

    #[test]
    fn spread_needs_three_points() {
        assert!(spread(&[vec![0.0], vec![1.0]]).is_none());
    }
}
