//! Baseline explorers.
//!
//! The paper positions NSGA-II against the wider exploration-strategy
//! literature (Panerati et al. \[12\]); these baselines let the benches show
//! the comparison concretely: uniform random search, exhaustive
//! enumeration (exact for small spaces — Dovado's "exact exploration of a
//! given set of parameters" mode), and a single-objective weighted-sum GA
//! (the classic scalarization NSGA-II supersedes).
//!
//! Since the explorer-portfolio refactor these are thin run-to-completion
//! wrappers over the stepwise engines in [`crate::explorer`]; wrapper and
//! engine share the RNG call order, so both produce bitwise-identical
//! results for the same seed.

use crate::explorer::{DynProblem, ExhaustiveExplorer, Explorer, RandomExplorer, WsgaExplorer};
use crate::nsga2::OptResult;
use crate::problem::Problem;
use crate::termination::Termination;

/// Uniform random search: sample, evaluate, keep the non-dominated set.
pub fn random_search<P: Problem + ?Sized>(
    problem: &mut P,
    termination: &Termination,
    batch: usize,
    seed: u64,
) -> OptResult {
    let mut dp = DynProblem(problem);
    let mut engine = RandomExplorer::start(&dp, batch, seed);
    while !engine.should_stop(&dp, termination) {
        engine.step(&mut dp);
    }
    Box::new(engine).into_result()
}

/// Exhaustive enumeration of the whole space.
///
/// Returns `None` when the volume exceeds `limit` (the time cost the paper
/// calls "prohibitive … for a good DSE"). Runs as a single batch, so the
/// result reports one generation.
pub fn exhaustive_search<P: Problem + ?Sized>(problem: &mut P, limit: u64) -> Option<OptResult> {
    let mut dp = DynProblem(problem);
    let batch = dp.volume().min(usize::MAX as u64).max(1) as usize;
    let mut engine = ExhaustiveExplorer::start(&dp, limit, batch)?;
    let never = Termination::Generations(u32::MAX);
    while !engine.should_stop(&dp, &never) {
        engine.step(&mut dp);
    }
    Some(Box::new(engine).into_result())
}

/// Single-objective GA on a fixed weighted sum of the (minimization-space)
/// objectives. `weights` must match the objective count.
pub fn weighted_sum_ga<P: Problem + ?Sized>(
    problem: &mut P,
    weights: &[f64],
    termination: &Termination,
    pop_size: usize,
    seed: u64,
) -> OptResult {
    let mut dp = DynProblem(problem);
    let mut engine = WsgaExplorer::start(&mut dp, weights.to_vec(), pop_size, seed);
    while !engine.should_stop(&dp, termination) {
        engine.step(&mut dp);
    }
    Box::new(engine).into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Schaffer;

    #[test]
    fn random_search_finds_some_front() {
        let mut p = Schaffer::new();
        let r = random_search(&mut p, &Termination::Evaluations(500), 50, 1);
        assert!(r.evaluations >= 500);
        assert!(!r.pareto.is_empty());
        for a in &r.pareto {
            for b in &r.pareto {
                assert!(!a.dominates(b) || a.genome == b.genome);
            }
        }
    }

    #[test]
    fn exhaustive_is_exact_on_small_space() {
        // Shrink the space so enumeration is feasible and exact.
        struct Small(Schaffer, Vec<crate::problem::IntVar>);
        impl Problem for Small {
            fn variables(&self) -> &[crate::problem::IntVar] {
                &self.1
            }
            fn objectives(&self) -> &[crate::problem::Objective] {
                self.0.objectives()
            }
            fn evaluate(&mut self, g: &[i64]) -> Vec<f64> {
                self.0.evaluate(g)
            }
        }
        let mut p = Small(
            Schaffer::new(),
            vec![crate::problem::IntVar::new("x", -10, 10)],
        );
        let r = exhaustive_search(&mut p, 10_000).unwrap();
        assert_eq!(r.evaluations, 21);
        assert_eq!(r.generations, 1);
        // Exact Pareto set: x ∈ {0, 1, 2}.
        let mut xs: Vec<i64> = r.pareto.iter().map(|i| i.genome[0]).collect();
        xs.sort();
        assert_eq!(xs, vec![0, 1, 2]);
    }

    #[test]
    fn exhaustive_refuses_large_space() {
        let mut p = Schaffer::new();
        assert!(exhaustive_search(&mut p, 100).is_none());
    }

    #[test]
    fn weighted_sum_collapses_to_one_region() {
        let mut p = Schaffer::new();
        let r = weighted_sum_ga(&mut p, &[1.0, 1.0], &Termination::Generations(30), 24, 2);
        // Equal weights on x² and (x−2)²: optimum at x=1.
        let best = r
            .population
            .iter()
            .min_by(|a, b| {
                let sa: f64 = a.min_objs.iter().sum();
                let sb: f64 = b.min_objs.iter().sum();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap();
        assert!((0..=2).contains(&best.genome[0]), "best {:?}", best.genome);
    }

    #[test]
    fn weighted_sum_deterministic_under_duplicate_fitness() {
        // Every genome scores the same scalar fitness, so survival is pure
        // tie-breaking; two identical runs must still agree exactly (the
        // old fitness-only sort left survivor choice to insertion order).
        struct Flat(Vec<crate::problem::IntVar>, Vec<crate::problem::Objective>);
        impl Problem for Flat {
            fn variables(&self) -> &[crate::problem::IntVar] {
                &self.0
            }
            fn objectives(&self) -> &[crate::problem::Objective] {
                &self.1
            }
            fn evaluate(&mut self, _: &[i64]) -> Vec<f64> {
                vec![0.0]
            }
        }
        let run = || {
            let mut p = Flat(
                vec![crate::problem::IntVar::new("x", 0, 500)],
                vec![crate::problem::Objective::minimize("f")],
            );
            let r = weighted_sum_ga(&mut p, &[1.0], &Termination::Generations(5), 12, 9);
            r.population
                .iter()
                .map(|i| i.genome.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_search_deterministic_per_seed() {
        let run = |seed| {
            let mut p = Schaffer::new();
            let r = random_search(&mut p, &Termination::Evaluations(200), 50, seed);
            r.pareto
                .iter()
                .map(|i| i.genome.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
