//! Baseline explorers.
//!
//! The paper positions NSGA-II against the wider exploration-strategy
//! literature (Panerati et al. \[12\]); these baselines let the benches show
//! the comparison concretely: uniform random search, exhaustive
//! enumeration (exact for small spaces — Dovado's "exact exploration of a
//! given set of parameters" mode), and a single-objective weighted-sum GA
//! (the classic scalarization NSGA-II supersedes).

use crate::individual::{non_dominated_indices, Individual};
use crate::nsga2::OptResult;
use crate::ops::sampling::random_population;
use crate::ops::{GaussianIntegerMutation, IntegerSbx};
use crate::problem::{to_min_space, Problem};
use crate::termination::{EngineState, Termination};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn finish(mut archive: Vec<Individual>, generations: u32, evaluations: u64) -> OptResult {
    let idx = non_dominated_indices(&archive);
    let mut pareto: Vec<Individual> = idx.into_iter().map(|i| archive[i].clone()).collect();
    pareto.sort_by(|a, b| a.genome.cmp(&b.genome));
    pareto.dedup_by(|a, b| a.genome == b.genome);
    for p in &mut pareto {
        p.rank = 0;
    }
    for a in &mut archive {
        a.rank = 0;
    }
    OptResult {
        population: archive,
        pareto,
        generations,
        evaluations,
        history: Vec::new(),
    }
}

/// Uniform random search: sample, evaluate, keep the non-dominated set.
pub fn random_search<P: Problem + ?Sized>(
    problem: &mut P,
    termination: &Termination,
    batch: usize,
    seed: u64,
) -> OptResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let vars = problem.variables().to_vec();
    let objectives = problem.objectives().to_vec();
    let mut archive: Vec<Individual> = Vec::new();
    let mut evaluations = 0u64;
    let mut generation = 0u32;
    loop {
        let state = EngineState {
            generation,
            evaluations,
            external_cost: problem.external_cost(),
        };
        if termination.should_stop(&state) {
            break;
        }
        let genomes = random_population(&vars, batch.max(1), &mut rng);
        let raws = problem.evaluate_batch(&genomes);
        evaluations += genomes.len() as u64;
        archive.extend(genomes.into_iter().zip(raws).map(|(g, raw)| {
            let m = to_min_space(&objectives, &raw);
            Individual::new(g, raw, m)
        }));
        generation += 1;
    }
    finish(archive, generation, evaluations)
}

/// Exhaustive enumeration of the whole space.
///
/// Returns `None` when the volume exceeds `limit` (the time cost the paper
/// calls "prohibitive … for a good DSE").
pub fn exhaustive_search<P: Problem + ?Sized>(problem: &mut P, limit: u64) -> Option<OptResult> {
    let vars = problem.variables().to_vec();
    let objectives = problem.objectives().to_vec();
    let volume = problem.volume();
    if volume > limit {
        return None;
    }
    let mut archive = Vec::with_capacity(volume as usize);
    let mut genome: Vec<i64> = vars.iter().map(|v| v.lo).collect();
    let mut evaluations = 0u64;
    loop {
        let raw = problem.evaluate(&genome);
        evaluations += 1;
        let m = to_min_space(&objectives, &raw);
        archive.push(Individual::new(genome.clone(), raw, m));
        // Odometer increment.
        let mut i = 0usize;
        loop {
            if i == vars.len() {
                return Some(finish(archive, 1, evaluations));
            }
            genome[i] += 1;
            if genome[i] <= vars[i].hi {
                break;
            }
            genome[i] = vars[i].lo;
            i += 1;
        }
    }
}

/// Single-objective GA on a fixed weighted sum of the (minimization-space)
/// objectives. `weights` must match the objective count.
pub fn weighted_sum_ga<P: Problem + ?Sized>(
    problem: &mut P,
    weights: &[f64],
    termination: &Termination,
    pop_size: usize,
    seed: u64,
) -> OptResult {
    assert_eq!(weights.len(), problem.objectives().len());
    let mut rng = StdRng::seed_from_u64(seed);
    let vars = problem.variables().to_vec();
    let objectives = problem.objectives().to_vec();
    let crossover = IntegerSbx::default();
    let mutation = GaussianIntegerMutation::default();

    let scalar =
        |min_objs: &[f64]| -> f64 { min_objs.iter().zip(weights).map(|(v, w)| v * w).sum() };

    let mut evaluations = 0u64;
    let genomes = random_population(&vars, pop_size, &mut rng);
    let raws = problem.evaluate_batch(&genomes);
    evaluations += genomes.len() as u64;
    let mut pop: Vec<Individual> = genomes
        .into_iter()
        .zip(raws)
        .map(|(g, raw)| {
            let m = to_min_space(&objectives, &raw);
            Individual::new(g, raw, m)
        })
        .collect();
    let mut archive = pop.clone();

    let mut generation = 0u32;
    loop {
        let state = EngineState {
            generation,
            evaluations,
            external_cost: problem.external_cost(),
        };
        if termination.should_stop(&state) {
            break;
        }
        generation += 1;
        let mut offspring = Vec::with_capacity(pop_size);
        while offspring.len() < pop_size {
            let pick = |rng: &mut StdRng| {
                let a = rng.gen_range(0..pop.len());
                let b = rng.gen_range(0..pop.len());
                if scalar(&pop[a].min_objs) <= scalar(&pop[b].min_objs) {
                    a
                } else {
                    b
                }
            };
            let (p1, p2) = (pick(&mut rng), pick(&mut rng));
            let (mut c1, mut c2) =
                crossover.cross(&vars, &pop[p1].genome, &pop[p2].genome, &mut rng);
            mutation.mutate(&vars, &mut c1, &mut rng);
            mutation.mutate(&vars, &mut c2, &mut rng);
            offspring.push(c1);
            if offspring.len() < pop_size {
                offspring.push(c2);
            }
        }
        let raws = problem.evaluate_batch(&offspring);
        evaluations += offspring.len() as u64;
        let kids: Vec<Individual> = offspring
            .into_iter()
            .zip(raws)
            .map(|(g, raw)| {
                let m = to_min_space(&objectives, &raw);
                Individual::new(g, raw, m)
            })
            .collect();
        archive.extend(kids.iter().cloned());
        // (μ+λ) truncation by scalar fitness.
        pop.extend(kids);
        pop.sort_by(|a, b| {
            scalar(&a.min_objs)
                .partial_cmp(&scalar(&b.min_objs))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        pop.truncate(pop_size);
    }
    finish(archive, generation, evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Schaffer;

    #[test]
    fn random_search_finds_some_front() {
        let mut p = Schaffer::new();
        let r = random_search(&mut p, &Termination::Evaluations(500), 50, 1);
        assert!(r.evaluations >= 500);
        assert!(!r.pareto.is_empty());
        for a in &r.pareto {
            for b in &r.pareto {
                assert!(!a.dominates(b) || a.genome == b.genome);
            }
        }
    }

    #[test]
    fn exhaustive_is_exact_on_small_space() {
        // Shrink the space so enumeration is feasible and exact.
        struct Small(Schaffer, Vec<crate::problem::IntVar>);
        impl Problem for Small {
            fn variables(&self) -> &[crate::problem::IntVar] {
                &self.1
            }
            fn objectives(&self) -> &[crate::problem::Objective] {
                self.0.objectives()
            }
            fn evaluate(&mut self, g: &[i64]) -> Vec<f64> {
                self.0.evaluate(g)
            }
        }
        let mut p = Small(
            Schaffer::new(),
            vec![crate::problem::IntVar::new("x", -10, 10)],
        );
        let r = exhaustive_search(&mut p, 10_000).unwrap();
        assert_eq!(r.evaluations, 21);
        // Exact Pareto set: x ∈ {0, 1, 2}.
        let mut xs: Vec<i64> = r.pareto.iter().map(|i| i.genome[0]).collect();
        xs.sort();
        assert_eq!(xs, vec![0, 1, 2]);
    }

    #[test]
    fn exhaustive_refuses_large_space() {
        let mut p = Schaffer::new();
        assert!(exhaustive_search(&mut p, 100).is_none());
    }

    #[test]
    fn weighted_sum_collapses_to_one_region() {
        let mut p = Schaffer::new();
        let r = weighted_sum_ga(&mut p, &[1.0, 1.0], &Termination::Generations(30), 24, 2);
        // Equal weights on x² and (x−2)²: optimum at x=1.
        let best = r
            .population
            .iter()
            .min_by(|a, b| {
                let sa: f64 = a.min_objs.iter().sum();
                let sb: f64 = b.min_objs.iter().sum();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap();
        assert!((0..=2).contains(&best.genome[0]), "best {:?}", best.genome);
    }

    #[test]
    fn random_search_deterministic_per_seed() {
        let run = |seed| {
            let mut p = Schaffer::new();
            let r = random_search(&mut p, &Termination::Evaluations(200), 50, seed);
            r.pareto
                .iter()
                .map(|i| i.genome.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
