//! Algorithm-agnostic stepwise exploration: the [`Explorer`] trait.
//!
//! The driver in `dovado-core` used to be hard-wired to [`Nsga2Engine`];
//! every cross-cutting service (journaling, trace events, cancellation,
//! parallel schedules, the serve daemon) was welded to that one engine.
//! [`Explorer`] is the seam that frees them: any search algorithm that can
//! run one *generation* at a time, capture its full state as a tagged
//! [`ExplorerSnapshot`], and report its current front plugs into the same
//! driver and inherits all of those services unchanged.
//!
//! The contract mirrors what made the NSGA-II engine crash-safe:
//!
//! * `step` advances exactly one generation and is the only method that
//!   evaluates the problem;
//! * `snapshot` taken at a generation boundary, fed back through the
//!   matching `resume` constructor, continues the run **bitwise** — RNG
//!   stream position included;
//! * `should_stop` is consulted *between* generations, so termination (and
//!   the paper's soft deadline) composes identically for every algorithm.
//!
//! Engines here: [`Nsga2Explorer`] (wraps the classic engine),
//! [`RandomExplorer`], [`ExhaustiveExplorer`], [`WsgaExplorer`]
//! (weighted-sum GA) and [`AnnealingExplorer`] (simulated annealing). The
//! Bayesian acquisition engine lives in `dovado-core` (it needs the
//! surrogate crate) but shares [`BayesSnapshot`] defined here so the
//! journal format stays in one place.

use crate::individual::{non_dominated_indices, Individual};
use crate::nsga2::{GenStats, Nsga2Config, Nsga2Engine, Nsga2Snapshot, OptResult};
use crate::ops::sampling::{random_genome, random_population};
use crate::ops::{GaussianIntegerMutation, IntegerSbx};
use crate::problem::{to_min_space, IntVar, Objective, Problem};
use crate::termination::{EngineState, Termination};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stepwise, snapshotable search engine.
///
/// Object-safe so the driver can hold a `Box<dyn Explorer>` chosen at
/// runtime (including by the portfolio selector).
pub trait Explorer {
    /// Stable identifier used in journals, trace events and CLI flags.
    fn name(&self) -> &'static str;

    /// Generations completed so far.
    fn generation(&self) -> u32;

    /// Evaluations spent so far.
    fn evaluations(&self) -> u64;

    /// Whether the engine has nothing left to explore (only the exhaustive
    /// engine ever says yes).
    fn exhausted(&self) -> bool {
        false
    }

    /// Whether the run should stop before the next generation.
    fn should_stop(&self, problem: &dyn Problem, termination: &Termination) -> bool {
        let state = EngineState {
            generation: self.generation(),
            evaluations: self.evaluations(),
            external_cost: problem.external_cost(),
        };
        self.exhausted() || termination.should_stop(&state)
    }

    /// Runs one full generation against the problem.
    fn step(&mut self, problem: &mut dyn Problem);

    /// Captures the engine's complete mid-run state. Feeding the snapshot
    /// back through the engine's `resume` constructor continues bitwise.
    fn snapshot(&self) -> ExplorerSnapshot;

    /// The current non-dominated set over everything evaluated so far.
    fn front(&self) -> Vec<Individual>;

    /// Finalizes the run into an [`OptResult`].
    fn into_result(self: Box<Self>) -> OptResult;
}

/// Mid-run state of the [`RandomExplorer`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSnapshot {
    /// Generations (batches) completed.
    pub generation: u32,
    /// Evaluations spent.
    pub evaluations: u64,
    /// Raw xoshiro256** state of the sampler's RNG.
    pub rng_state: [u64; 4],
    /// Everything evaluated so far, in insertion order.
    pub archive: Vec<Individual>,
    /// Per-generation history.
    pub history: Vec<GenStats>,
}

/// Mid-run state of the [`ExhaustiveExplorer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveSnapshot {
    /// Generations (batches) completed.
    pub generation: u32,
    /// Evaluations spent.
    pub evaluations: u64,
    /// Next genome to enumerate; `None` once the space is exhausted.
    pub cursor: Option<Vec<i64>>,
    /// Everything evaluated so far, in enumeration order.
    pub archive: Vec<Individual>,
    /// Per-generation history.
    pub history: Vec<GenStats>,
}

/// Mid-run state of the [`WsgaExplorer`].
#[derive(Debug, Clone, PartialEq)]
pub struct WsgaSnapshot {
    /// Generations completed.
    pub generation: u32,
    /// Evaluations spent.
    pub evaluations: u64,
    /// Raw xoshiro256** state of the GA's RNG.
    pub rng_state: [u64; 4],
    /// Current (μ+λ)-truncated population.
    pub population: Vec<Individual>,
    /// Everything evaluated so far, in insertion order.
    pub archive: Vec<Individual>,
    /// Per-generation history.
    pub history: Vec<GenStats>,
}

/// Mid-run state of the [`AnnealingExplorer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingSnapshot {
    /// Generations completed.
    pub generation: u32,
    /// Evaluations spent.
    pub evaluations: u64,
    /// Raw xoshiro256** state of the annealer's RNG.
    pub rng_state: [u64; 4],
    /// Current solution genome.
    pub current: Vec<i64>,
    /// Scalar energy of the current solution.
    pub energy: f64,
    /// Current temperature.
    pub temperature: f64,
    /// Everything evaluated so far, in insertion order.
    pub archive: Vec<Individual>,
    /// Per-generation history.
    pub history: Vec<GenStats>,
}

/// Mid-run state of the Bayesian acquisition explorer (engine lives in
/// `dovado-core`; the snapshot is defined here so the journal's tagged
/// union covers every explorer).
#[derive(Debug, Clone, PartialEq)]
pub struct BayesSnapshot {
    /// Generations completed.
    pub generation: u32,
    /// Evaluations spent.
    pub evaluations: u64,
    /// Raw xoshiro256** state of the sampler's RNG.
    pub rng_state: [u64; 4],
    /// Everything evaluated so far, in insertion order (the surrogate's
    /// training set is rebuilt from this on resume).
    pub archive: Vec<Individual>,
    /// Per-generation history.
    pub history: Vec<GenStats>,
}

/// Tagged union over every explorer's snapshot — what the journal
/// serializes at each generation boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplorerSnapshot {
    /// NSGA-II engine state.
    Nsga2(Nsga2Snapshot),
    /// Random-search state.
    Random(RandomSnapshot),
    /// Exhaustive-enumeration state.
    Exhaustive(ExhaustiveSnapshot),
    /// Weighted-sum GA state.
    WeightedSum(WsgaSnapshot),
    /// Simulated-annealing state.
    Annealing(AnnealingSnapshot),
    /// Bayesian acquisition state.
    Bayes(BayesSnapshot),
}

impl ExplorerSnapshot {
    /// The journal tag for this variant; matches [`Explorer::name`].
    pub fn kind(&self) -> &'static str {
        match self {
            ExplorerSnapshot::Nsga2(_) => "nsga2",
            ExplorerSnapshot::Random(_) => "random",
            ExplorerSnapshot::Exhaustive(_) => "exhaustive",
            ExplorerSnapshot::WeightedSum(_) => "wsga",
            ExplorerSnapshot::Annealing(_) => "sa",
            ExplorerSnapshot::Bayes(_) => "bayes",
        }
    }

    /// Generations completed at the time of the snapshot.
    pub fn generation(&self) -> u32 {
        match self {
            ExplorerSnapshot::Nsga2(s) => s.generation,
            ExplorerSnapshot::Random(s) => s.generation,
            ExplorerSnapshot::Exhaustive(s) => s.generation,
            ExplorerSnapshot::WeightedSum(s) => s.generation,
            ExplorerSnapshot::Annealing(s) => s.generation,
            ExplorerSnapshot::Bayes(s) => s.generation,
        }
    }

    /// Evaluations spent at the time of the snapshot.
    pub fn evaluations(&self) -> u64 {
        match self {
            ExplorerSnapshot::Nsga2(s) => s.evaluations,
            ExplorerSnapshot::Random(s) => s.evaluations,
            ExplorerSnapshot::Exhaustive(s) => s.evaluations,
            ExplorerSnapshot::WeightedSum(s) => s.evaluations,
            ExplorerSnapshot::Annealing(s) => s.evaluations,
            ExplorerSnapshot::Bayes(s) => s.evaluations,
        }
    }

    /// Mutable access to the per-generation history, whatever the
    /// variant. External costs in the history track wall-clock-like
    /// tool spend, which varies with store capacity and repeated work;
    /// callers comparing optimizer *state* across runs normalize it
    /// through this accessor.
    pub fn history_mut(&mut self) -> &mut Vec<GenStats> {
        match self {
            ExplorerSnapshot::Nsga2(s) => &mut s.history,
            ExplorerSnapshot::Random(s) => &mut s.history,
            ExplorerSnapshot::Exhaustive(s) => &mut s.history,
            ExplorerSnapshot::WeightedSum(s) => &mut s.history,
            ExplorerSnapshot::Annealing(s) => &mut s.history,
            ExplorerSnapshot::Bayes(s) => &mut s.history,
        }
    }
}

/// Non-dominated subset of an archive (cloned, ranks pinned to 0).
pub fn front_of(archive: &[Individual]) -> Vec<Individual> {
    let mut front: Vec<Individual> = non_dominated_indices(archive)
        .into_iter()
        .map(|i| archive[i].clone())
        .collect();
    for p in &mut front {
        p.rank = 0;
    }
    front
}

/// Finalizes an archive-based explorer: the whole archive becomes the
/// result population (ranks pinned to 0) and the deduplicated
/// non-dominated set becomes the Pareto front.
pub fn finish_archive(
    mut archive: Vec<Individual>,
    generations: u32,
    evaluations: u64,
    history: Vec<GenStats>,
) -> OptResult {
    let idx = non_dominated_indices(&archive);
    let mut pareto: Vec<Individual> = idx.into_iter().map(|i| archive[i].clone()).collect();
    pareto.sort_by(|a, b| a.genome.cmp(&b.genome));
    pareto.dedup_by(|a, b| a.genome == b.genome);
    for p in &mut pareto {
        p.rank = 0;
    }
    for a in &mut archive {
        a.rank = 0;
    }
    OptResult {
        population: archive,
        pareto,
        generations,
        evaluations,
        history,
    }
}

/// Evaluates a batch of genomes into [`Individual`]s (minimization-space
/// conversion included).
pub fn evaluate_genomes(
    problem: &mut dyn Problem,
    objectives: &[Objective],
    genomes: Vec<Vec<i64>>,
) -> Vec<Individual> {
    let raws = problem.evaluate_batch(&genomes);
    genomes
        .into_iter()
        .zip(raws)
        .map(|(g, raw)| {
            let m = to_min_space(objectives, &raw);
            Individual::new(g, raw, m)
        })
        .collect()
}

/// Adapter that lets `P: Problem + ?Sized` generics (the run-to-completion
/// wrappers in [`crate::baselines`]) drive the `&mut dyn Problem` trait
/// methods without requiring `P: Sized` for the unsize coercion.
pub(crate) struct DynProblem<'a, P: Problem + ?Sized>(pub &'a mut P);

impl<P: Problem + ?Sized> Problem for DynProblem<'_, P> {
    fn variables(&self) -> &[IntVar] {
        self.0.variables()
    }
    fn objectives(&self) -> &[Objective] {
        self.0.objectives()
    }
    fn evaluate(&mut self, genome: &[i64]) -> Vec<f64> {
        self.0.evaluate(genome)
    }
    fn evaluate_batch(&mut self, genomes: &[Vec<i64>]) -> Vec<Vec<f64>> {
        self.0.evaluate_batch(genomes)
    }
    fn external_cost(&self) -> f64 {
        self.0.external_cost()
    }
}

// --------------------------------------------------------------------------
// NSGA-II
// --------------------------------------------------------------------------

/// [`Nsga2Engine`] behind the [`Explorer`] seam.
#[derive(Debug, Clone)]
pub struct Nsga2Explorer {
    engine: Nsga2Engine,
}

impl Nsga2Explorer {
    /// Starts a fresh run (evaluates the initial population).
    pub fn start(problem: &mut dyn Problem, cfg: &Nsga2Config) -> Nsga2Explorer {
        Nsga2Explorer {
            engine: Nsga2Engine::start(problem, cfg),
        }
    }

    /// Rebuilds the engine from a journal snapshot.
    pub fn resume(problem: &dyn Problem, cfg: &Nsga2Config, snap: Nsga2Snapshot) -> Nsga2Explorer {
        Nsga2Explorer {
            engine: Nsga2Engine::resume(problem, cfg, snap),
        }
    }
}

impl Explorer for Nsga2Explorer {
    fn name(&self) -> &'static str {
        "nsga2"
    }
    fn generation(&self) -> u32 {
        self.engine.generation()
    }
    fn evaluations(&self) -> u64 {
        self.engine.evaluations()
    }
    fn step(&mut self, problem: &mut dyn Problem) {
        self.engine.step(problem);
    }
    fn snapshot(&self) -> ExplorerSnapshot {
        ExplorerSnapshot::Nsga2(self.engine.snapshot())
    }
    fn front(&self) -> Vec<Individual> {
        front_of(self.engine.archive())
    }
    fn into_result(self: Box<Self>) -> OptResult {
        self.engine.into_result()
    }
}

// --------------------------------------------------------------------------
// Random search
// --------------------------------------------------------------------------

/// Uniform random search, one batch per generation.
#[derive(Debug, Clone)]
pub struct RandomExplorer {
    batch: usize,
    rng: StdRng,
    vars: Vec<IntVar>,
    objectives: Vec<Objective>,
    archive: Vec<Individual>,
    history: Vec<GenStats>,
    generation: u32,
    evaluations: u64,
}

impl RandomExplorer {
    /// Starts a fresh run. Evaluates nothing until the first step, so a
    /// zero-generation budget spends zero evaluations.
    pub fn start(problem: &dyn Problem, batch: usize, seed: u64) -> RandomExplorer {
        RandomExplorer {
            batch: batch.max(1),
            rng: StdRng::seed_from_u64(seed),
            vars: problem.variables().to_vec(),
            objectives: problem.objectives().to_vec(),
            archive: Vec::new(),
            history: Vec::new(),
            generation: 0,
            evaluations: 0,
        }
    }

    /// Rebuilds the sampler from a journal snapshot.
    pub fn resume(problem: &dyn Problem, batch: usize, snap: RandomSnapshot) -> RandomExplorer {
        RandomExplorer {
            batch: batch.max(1),
            rng: StdRng::from_state(snap.rng_state),
            vars: problem.variables().to_vec(),
            objectives: problem.objectives().to_vec(),
            archive: snap.archive,
            history: snap.history,
            generation: snap.generation,
            evaluations: snap.evaluations,
        }
    }
}

impl Explorer for RandomExplorer {
    fn name(&self) -> &'static str {
        "random"
    }
    fn generation(&self) -> u32 {
        self.generation
    }
    fn evaluations(&self) -> u64 {
        self.evaluations
    }
    fn step(&mut self, problem: &mut dyn Problem) {
        let genomes = random_population(&self.vars, self.batch, &mut self.rng);
        let inds = evaluate_genomes(problem, &self.objectives, genomes);
        self.evaluations += inds.len() as u64;
        self.archive.extend(inds);
        self.generation += 1;
        self.history.push(GenStats {
            generation: self.generation,
            evaluations: self.evaluations,
            front_size: non_dominated_indices(&self.archive).len(),
            external_cost: problem.external_cost(),
        });
    }
    fn snapshot(&self) -> ExplorerSnapshot {
        ExplorerSnapshot::Random(RandomSnapshot {
            generation: self.generation,
            evaluations: self.evaluations,
            rng_state: self.rng.state(),
            archive: self.archive.clone(),
            history: self.history.clone(),
        })
    }
    fn front(&self) -> Vec<Individual> {
        front_of(&self.archive)
    }
    fn into_result(self: Box<Self>) -> OptResult {
        finish_archive(
            self.archive,
            self.generation,
            self.evaluations,
            self.history,
        )
    }
}

// --------------------------------------------------------------------------
// Exhaustive enumeration
// --------------------------------------------------------------------------

/// Exhaustive enumeration in odometer order (first variable fastest), one
/// batch per generation so journals land at batch boundaries.
#[derive(Debug, Clone)]
pub struct ExhaustiveExplorer {
    batch: usize,
    vars: Vec<IntVar>,
    objectives: Vec<Objective>,
    cursor: Option<Vec<i64>>,
    archive: Vec<Individual>,
    history: Vec<GenStats>,
    generation: u32,
    evaluations: u64,
}

impl ExhaustiveExplorer {
    /// Starts a fresh enumeration; `None` when the space volume exceeds
    /// `limit` (the cost the paper calls "prohibitive … for a good DSE").
    pub fn start(problem: &dyn Problem, limit: u64, batch: usize) -> Option<ExhaustiveExplorer> {
        if problem.volume() > limit {
            return None;
        }
        let vars = problem.variables().to_vec();
        let cursor = Some(vars.iter().map(|v| v.lo).collect());
        Some(ExhaustiveExplorer {
            batch: batch.max(1),
            objectives: problem.objectives().to_vec(),
            vars,
            cursor,
            archive: Vec::new(),
            history: Vec::new(),
            generation: 0,
            evaluations: 0,
        })
    }

    /// Rebuilds the enumerator from a journal snapshot.
    pub fn resume(
        problem: &dyn Problem,
        batch: usize,
        snap: ExhaustiveSnapshot,
    ) -> ExhaustiveExplorer {
        ExhaustiveExplorer {
            batch: batch.max(1),
            vars: problem.variables().to_vec(),
            objectives: problem.objectives().to_vec(),
            cursor: snap.cursor,
            archive: snap.archive,
            history: snap.history,
            generation: snap.generation,
            evaluations: snap.evaluations,
        }
    }
}

impl Explorer for ExhaustiveExplorer {
    fn name(&self) -> &'static str {
        "exhaustive"
    }
    fn generation(&self) -> u32 {
        self.generation
    }
    fn evaluations(&self) -> u64 {
        self.evaluations
    }
    fn exhausted(&self) -> bool {
        self.cursor.is_none()
    }
    fn step(&mut self, problem: &mut dyn Problem) {
        let mut genomes: Vec<Vec<i64>> = Vec::with_capacity(self.batch);
        while genomes.len() < self.batch {
            let Some(g) = self.cursor.as_mut() else { break };
            genomes.push(g.clone());
            // Odometer increment.
            let mut i = 0usize;
            let done = loop {
                if i == self.vars.len() {
                    break true;
                }
                g[i] += 1;
                if g[i] <= self.vars[i].hi {
                    break false;
                }
                g[i] = self.vars[i].lo;
                i += 1;
            };
            if done {
                self.cursor = None;
            }
        }
        if genomes.is_empty() {
            return;
        }
        let inds = evaluate_genomes(problem, &self.objectives, genomes);
        self.evaluations += inds.len() as u64;
        self.archive.extend(inds);
        self.generation += 1;
        self.history.push(GenStats {
            generation: self.generation,
            evaluations: self.evaluations,
            front_size: non_dominated_indices(&self.archive).len(),
            external_cost: problem.external_cost(),
        });
    }
    fn snapshot(&self) -> ExplorerSnapshot {
        ExplorerSnapshot::Exhaustive(ExhaustiveSnapshot {
            generation: self.generation,
            evaluations: self.evaluations,
            cursor: self.cursor.clone(),
            archive: self.archive.clone(),
            history: self.history.clone(),
        })
    }
    fn front(&self) -> Vec<Individual> {
        front_of(&self.archive)
    }
    fn into_result(self: Box<Self>) -> OptResult {
        finish_archive(
            self.archive,
            self.generation,
            self.evaluations,
            self.history,
        )
    }
}

// --------------------------------------------------------------------------
// Weighted-sum GA
// --------------------------------------------------------------------------

/// Single-objective GA on a fixed weighted sum of the minimization-space
/// objectives — the classic scalarization baseline NSGA-II supersedes.
#[derive(Debug, Clone)]
pub struct WsgaExplorer {
    weights: Vec<f64>,
    pop_size: usize,
    rng: StdRng,
    vars: Vec<IntVar>,
    objectives: Vec<Objective>,
    crossover: IntegerSbx,
    mutation: GaussianIntegerMutation,
    pop: Vec<Individual>,
    archive: Vec<Individual>,
    history: Vec<GenStats>,
    generation: u32,
    evaluations: u64,
}

fn scalarize(weights: &[f64], min_objs: &[f64]) -> f64 {
    min_objs.iter().zip(weights).map(|(v, w)| v * w).sum()
}

impl WsgaExplorer {
    /// Starts a fresh run (evaluates the initial population). `weights`
    /// must match the problem's objective count.
    pub fn start(
        problem: &mut dyn Problem,
        weights: Vec<f64>,
        pop_size: usize,
        seed: u64,
    ) -> WsgaExplorer {
        assert_eq!(weights.len(), problem.objectives().len());
        let mut rng = StdRng::seed_from_u64(seed);
        let vars = problem.variables().to_vec();
        let objectives = problem.objectives().to_vec();
        let genomes = random_population(&vars, pop_size, &mut rng);
        let pop = evaluate_genomes(problem, &objectives, genomes);
        let evaluations = pop.len() as u64;
        let archive = pop.clone();
        let history = vec![GenStats {
            generation: 0,
            evaluations,
            front_size: non_dominated_indices(&archive).len(),
            external_cost: problem.external_cost(),
        }];
        WsgaExplorer {
            weights,
            pop_size,
            rng,
            vars,
            objectives,
            crossover: IntegerSbx::default(),
            mutation: GaussianIntegerMutation::default(),
            pop,
            archive,
            history,
            generation: 0,
            evaluations,
        }
    }

    /// Rebuilds the GA from a journal snapshot.
    pub fn resume(
        problem: &dyn Problem,
        weights: Vec<f64>,
        pop_size: usize,
        snap: WsgaSnapshot,
    ) -> WsgaExplorer {
        WsgaExplorer {
            weights,
            pop_size,
            rng: StdRng::from_state(snap.rng_state),
            vars: problem.variables().to_vec(),
            objectives: problem.objectives().to_vec(),
            crossover: IntegerSbx::default(),
            mutation: GaussianIntegerMutation::default(),
            pop: snap.population,
            archive: snap.archive,
            history: snap.history,
            generation: snap.generation,
            evaluations: snap.evaluations,
        }
    }
}

impl Explorer for WsgaExplorer {
    fn name(&self) -> &'static str {
        "wsga"
    }
    fn generation(&self) -> u32 {
        self.generation
    }
    fn evaluations(&self) -> u64 {
        self.evaluations
    }
    fn step(&mut self, problem: &mut dyn Problem) {
        self.generation += 1;
        let mut offspring: Vec<Vec<i64>> = Vec::with_capacity(self.pop_size);
        while offspring.len() < self.pop_size {
            let pick = |rng: &mut StdRng, pop: &[Individual], weights: &[f64]| {
                let a = rng.gen_range(0..pop.len());
                let b = rng.gen_range(0..pop.len());
                if scalarize(weights, &pop[a].min_objs) <= scalarize(weights, &pop[b].min_objs) {
                    a
                } else {
                    b
                }
            };
            let p1 = pick(&mut self.rng, &self.pop, &self.weights);
            let p2 = pick(&mut self.rng, &self.pop, &self.weights);
            let (mut c1, mut c2) = self.crossover.cross(
                &self.vars,
                &self.pop[p1].genome,
                &self.pop[p2].genome,
                &mut self.rng,
            );
            self.mutation.mutate(&self.vars, &mut c1, &mut self.rng);
            self.mutation.mutate(&self.vars, &mut c2, &mut self.rng);
            offspring.push(c1);
            if offspring.len() < self.pop_size {
                offspring.push(c2);
            }
        }
        let kids = evaluate_genomes(problem, &self.objectives, offspring);
        self.evaluations += kids.len() as u64;
        self.archive.extend(kids.iter().cloned());
        // (μ+λ) truncation by scalar fitness. Ties break on the genome so
        // survival is a pure function of the candidate set, not of the
        // order evaluations happened to arrive in.
        self.pop.extend(kids);
        let weights = &self.weights;
        self.pop.sort_by(|a, b| {
            scalarize(weights, &a.min_objs)
                .partial_cmp(&scalarize(weights, &b.min_objs))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.genome.cmp(&b.genome))
        });
        self.pop.truncate(self.pop_size);
        self.history.push(GenStats {
            generation: self.generation,
            evaluations: self.evaluations,
            front_size: non_dominated_indices(&self.archive).len(),
            external_cost: problem.external_cost(),
        });
    }
    fn snapshot(&self) -> ExplorerSnapshot {
        ExplorerSnapshot::WeightedSum(WsgaSnapshot {
            generation: self.generation,
            evaluations: self.evaluations,
            rng_state: self.rng.state(),
            population: self.pop.clone(),
            archive: self.archive.clone(),
            history: self.history.clone(),
        })
    }
    fn front(&self) -> Vec<Individual> {
        front_of(&self.archive)
    }
    fn into_result(self: Box<Self>) -> OptResult {
        finish_archive(
            self.archive,
            self.generation,
            self.evaluations,
            self.history,
        )
    }
}

// --------------------------------------------------------------------------
// Simulated annealing
// --------------------------------------------------------------------------

/// Simulated annealing over the integer space: each generation proposes a
/// batch of Gaussian-mutated neighbours of the current solution, evaluates
/// them (one batch, so parallel schedules apply), then walks the batch
/// serially with Metropolis acceptance on the mean minimization-space
/// objective. Temperature cools geometrically per generation.
#[derive(Debug, Clone)]
pub struct AnnealingExplorer {
    batch: usize,
    alpha: f64,
    rng: StdRng,
    vars: Vec<IntVar>,
    objectives: Vec<Objective>,
    mutation: GaussianIntegerMutation,
    current: Vec<i64>,
    energy: f64,
    temperature: f64,
    archive: Vec<Individual>,
    history: Vec<GenStats>,
    generation: u32,
    evaluations: u64,
}

/// Cooling rate per generation.
const ANNEALING_ALPHA: f64 = 0.9;

fn mean_energy(min_objs: &[f64]) -> f64 {
    if min_objs.is_empty() {
        return 0.0;
    }
    min_objs.iter().sum::<f64>() / min_objs.len() as f64
}

impl AnnealingExplorer {
    /// Starts a fresh run: samples and evaluates a random starting point
    /// and scales the initial temperature to its energy.
    pub fn start(problem: &mut dyn Problem, batch: usize, seed: u64) -> AnnealingExplorer {
        let mut rng = StdRng::seed_from_u64(seed);
        let vars = problem.variables().to_vec();
        let objectives = problem.objectives().to_vec();
        let genome = random_genome(&vars, &mut rng);
        let inds = evaluate_genomes(problem, &objectives, vec![genome]);
        let first = &inds[0];
        let energy = mean_energy(&first.min_objs);
        let history = vec![GenStats {
            generation: 0,
            evaluations: 1,
            front_size: 1,
            external_cost: problem.external_cost(),
        }];
        AnnealingExplorer {
            batch: batch.max(1),
            alpha: ANNEALING_ALPHA,
            current: first.genome.clone(),
            energy,
            temperature: (0.1 * energy.abs()).max(1.0),
            rng,
            vars,
            objectives,
            mutation: GaussianIntegerMutation::default(),
            archive: inds,
            history,
            generation: 0,
            evaluations: 1,
        }
    }

    /// Rebuilds the annealer from a journal snapshot.
    pub fn resume(
        problem: &dyn Problem,
        batch: usize,
        snap: AnnealingSnapshot,
    ) -> AnnealingExplorer {
        AnnealingExplorer {
            batch: batch.max(1),
            alpha: ANNEALING_ALPHA,
            rng: StdRng::from_state(snap.rng_state),
            vars: problem.variables().to_vec(),
            objectives: problem.objectives().to_vec(),
            mutation: GaussianIntegerMutation::default(),
            current: snap.current,
            energy: snap.energy,
            temperature: snap.temperature,
            archive: snap.archive,
            history: snap.history,
            generation: snap.generation,
            evaluations: snap.evaluations,
        }
    }
}

impl Explorer for AnnealingExplorer {
    fn name(&self) -> &'static str {
        "sa"
    }
    fn generation(&self) -> u32 {
        self.generation
    }
    fn evaluations(&self) -> u64 {
        self.evaluations
    }
    fn step(&mut self, problem: &mut dyn Problem) {
        let mut genomes: Vec<Vec<i64>> = Vec::with_capacity(self.batch);
        for _ in 0..self.batch {
            let mut g = self.current.clone();
            self.mutation.mutate(&self.vars, &mut g, &mut self.rng);
            genomes.push(g);
        }
        let inds = evaluate_genomes(problem, &self.objectives, genomes);
        self.evaluations += inds.len() as u64;
        for ind in &inds {
            let e = mean_energy(&ind.min_objs);
            let delta = e - self.energy;
            let accept =
                delta < 0.0 || self.rng.gen::<f64>() < (-delta / self.temperature.max(1e-12)).exp();
            if accept {
                self.current = ind.genome.clone();
                self.energy = e;
            }
        }
        self.archive.extend(inds);
        self.temperature *= self.alpha;
        self.generation += 1;
        self.history.push(GenStats {
            generation: self.generation,
            evaluations: self.evaluations,
            front_size: non_dominated_indices(&self.archive).len(),
            external_cost: problem.external_cost(),
        });
    }
    fn snapshot(&self) -> ExplorerSnapshot {
        ExplorerSnapshot::Annealing(AnnealingSnapshot {
            generation: self.generation,
            evaluations: self.evaluations,
            rng_state: self.rng.state(),
            current: self.current.clone(),
            energy: self.energy,
            temperature: self.temperature,
            archive: self.archive.clone(),
            history: self.history.clone(),
        })
    }
    fn front(&self) -> Vec<Individual> {
        front_of(&self.archive)
    }
    fn into_result(self: Box<Self>) -> OptResult {
        finish_archive(
            self.archive,
            self.generation,
            self.evaluations,
            self.history,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Schaffer;

    fn small_schaffer() -> impl Problem {
        struct Small(Schaffer, Vec<IntVar>);
        impl Problem for Small {
            fn variables(&self) -> &[IntVar] {
                &self.1
            }
            fn objectives(&self) -> &[Objective] {
                self.0.objectives()
            }
            fn evaluate(&mut self, g: &[i64]) -> Vec<f64> {
                self.0.evaluate(g)
            }
        }
        Small(Schaffer::new(), vec![IntVar::new("x", -10, 10)])
    }

    fn run_to_end(mut e: Box<dyn Explorer>, p: &mut dyn Problem, t: &Termination) -> OptResult {
        while !e.should_stop(p, t) {
            e.step(p);
        }
        e.into_result()
    }

    #[test]
    fn every_explorer_snapshot_resume_is_bitwise() {
        let term = Termination::Generations(6);
        type Mk = Box<dyn Fn(&mut dyn Problem) -> Box<dyn Explorer>>;
        type Rs = Box<dyn Fn(&dyn Problem, ExplorerSnapshot) -> Box<dyn Explorer>>;
        let cases: Vec<(Mk, Rs)> = vec![
            (
                Box::new(|p: &mut dyn Problem| {
                    Box::new(Nsga2Explorer::start(
                        p,
                        &Nsga2Config {
                            pop_size: 8,
                            seed: 3,
                            ..Default::default()
                        },
                    )) as Box<dyn Explorer>
                }),
                Box::new(|p: &dyn Problem, s: ExplorerSnapshot| match s {
                    ExplorerSnapshot::Nsga2(s) => Box::new(Nsga2Explorer::resume(
                        p,
                        &Nsga2Config {
                            pop_size: 8,
                            seed: 3,
                            ..Default::default()
                        },
                        s,
                    )) as Box<dyn Explorer>,
                    _ => unreachable!(),
                }),
            ),
            (
                Box::new(|p: &mut dyn Problem| {
                    Box::new(RandomExplorer::start(p, 8, 3)) as Box<dyn Explorer>
                }),
                Box::new(|p: &dyn Problem, s: ExplorerSnapshot| match s {
                    ExplorerSnapshot::Random(s) => {
                        Box::new(RandomExplorer::resume(p, 8, s)) as Box<dyn Explorer>
                    }
                    _ => unreachable!(),
                }),
            ),
            (
                Box::new(|p: &mut dyn Problem| {
                    Box::new(ExhaustiveExplorer::start(p, 1000, 8).unwrap()) as Box<dyn Explorer>
                }),
                Box::new(|p: &dyn Problem, s: ExplorerSnapshot| match s {
                    ExplorerSnapshot::Exhaustive(s) => {
                        Box::new(ExhaustiveExplorer::resume(p, 8, s)) as Box<dyn Explorer>
                    }
                    _ => unreachable!(),
                }),
            ),
            (
                Box::new(|p: &mut dyn Problem| {
                    Box::new(WsgaExplorer::start(p, vec![1.0, 1.0], 8, 3)) as Box<dyn Explorer>
                }),
                Box::new(|p: &dyn Problem, s: ExplorerSnapshot| match s {
                    ExplorerSnapshot::WeightedSum(s) => {
                        Box::new(WsgaExplorer::resume(p, vec![1.0, 1.0], 8, s)) as Box<dyn Explorer>
                    }
                    _ => unreachable!(),
                }),
            ),
            (
                Box::new(|p: &mut dyn Problem| {
                    Box::new(AnnealingExplorer::start(p, 8, 3)) as Box<dyn Explorer>
                }),
                Box::new(|p: &dyn Problem, s: ExplorerSnapshot| match s {
                    ExplorerSnapshot::Annealing(s) => {
                        Box::new(AnnealingExplorer::resume(p, 8, s)) as Box<dyn Explorer>
                    }
                    _ => unreachable!(),
                }),
            ),
        ];
        for (mk, rs) in cases {
            let mut p1 = small_schaffer();
            let direct = run_to_end(mk(&mut p1), &mut p1, &term);

            let mut p2 = small_schaffer();
            let mut e = mk(&mut p2);
            while !e.should_stop(&p2, &term) {
                let snap = e.snapshot();
                e = rs(&p2, snap);
                e.step(&mut p2);
            }
            let resumed = e.into_result();
            assert_eq!(direct.generations, resumed.generations);
            assert_eq!(direct.evaluations, resumed.evaluations);
            assert_eq!(direct.history, resumed.history);
            assert_eq!(direct.population, resumed.population);
            assert_eq!(direct.pareto, resumed.pareto);
        }
    }

    #[test]
    fn exhaustive_explorer_enumerates_exactly_once() {
        let mut p = small_schaffer();
        let e = ExhaustiveExplorer::start(&p, 1000, 5).unwrap();
        let r = run_to_end(Box::new(e), &mut p, &Termination::Generations(10_000));
        assert_eq!(r.evaluations, 21);
        let mut genomes: Vec<Vec<i64>> = r.population.iter().map(|i| i.genome.clone()).collect();
        genomes.sort();
        genomes.dedup();
        assert_eq!(genomes.len(), 21);
        // Stops on exhaustion, not the generation budget.
        assert_eq!(r.generations, 21_u32.div_ceil(5));
    }

    #[test]
    fn exhaustive_explorer_refuses_large_space() {
        let p = Schaffer::new();
        assert!(ExhaustiveExplorer::start(&p, 100, 5).is_none());
    }

    #[test]
    fn annealing_improves_on_schaffer() {
        let mut p = Schaffer::new();
        let e = AnnealingExplorer::start(&mut p, 16, 5);
        let r = run_to_end(Box::new(e), &mut p, &Termination::Generations(40));
        // The optimum of the mean energy is x ∈ [0, 2]; the walk must get
        // close even from a random start in [-1000, 1000].
        let best = r
            .population
            .iter()
            .map(|i| mean_energy(&i.min_objs))
            .fold(f64::INFINITY, f64::min)
            .sqrt();
        assert!(best < 100.0, "best distance-ish {best}");
        assert_eq!(r.evaluations, 1 + 40 * 16);
    }

    #[test]
    fn wsga_truncation_orders_equal_fitness_by_genome() {
        // A constant objective makes every scalar fitness identical, so
        // survival is decided purely by the genome tie-break: the kept
        // population must be the lexicographically smallest genomes.
        struct Flat(Vec<IntVar>, Vec<Objective>);
        impl Problem for Flat {
            fn variables(&self) -> &[IntVar] {
                &self.0
            }
            fn objectives(&self) -> &[Objective] {
                &self.1
            }
            fn evaluate(&mut self, _: &[i64]) -> Vec<f64> {
                vec![0.0]
            }
        }
        let mut p = Flat(
            vec![IntVar::new("x", 0, 1000)],
            vec![Objective::minimize("f")],
        );
        let mut e = WsgaExplorer::start(&mut p, vec![1.0], 8, 11);
        e.step(&mut p);
        let ExplorerSnapshot::WeightedSum(snap) = e.snapshot() else {
            unreachable!()
        };
        let genomes: Vec<Vec<i64>> = snap.population.iter().map(|i| i.genome.clone()).collect();
        let mut sorted = genomes.clone();
        sorted.sort();
        assert_eq!(genomes, sorted, "ties must break on genome order");
    }

    #[test]
    fn snapshot_kinds_match_names() {
        let mut p = small_schaffer();
        let explorers: Vec<Box<dyn Explorer>> = vec![
            Box::new(RandomExplorer::start(&p, 4, 1)),
            Box::new(ExhaustiveExplorer::start(&p, 1000, 4).unwrap()),
            Box::new(WsgaExplorer::start(&mut p, vec![1.0, 1.0], 4, 1)),
            Box::new(AnnealingExplorer::start(&mut p, 4, 1)),
            Box::new(Nsga2Explorer::start(
                &mut p,
                &Nsga2Config {
                    pop_size: 4,
                    seed: 1,
                    ..Default::default()
                },
            )),
        ];
        for e in &explorers {
            assert_eq!(e.snapshot().kind(), e.name());
            assert_eq!(e.snapshot().generation(), e.generation());
            assert_eq!(e.snapshot().evaluations(), e.evaluations());
        }
    }
}
