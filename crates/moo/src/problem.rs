//! Problem definition for integer multi-objective optimization.
//!
//! The paper formulates DSE "as a multi-objective integer optimization
//! problem since … only integer-valued parameters are synthesizable both in
//! VHDL and V/SV. Besides, boolean parameters are treated as integer with
//! 0 and 1 values" (§III-B1). A [`Problem`] exposes integer decision
//! variables with inclusive bounds and a vector of objectives, each to be
//! minimized or maximized.

use std::fmt;

/// One integer decision variable with inclusive bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntVar {
    /// Variable name (parameter name in the DSE use case).
    pub name: String,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl IntVar {
    /// Creates a variable, normalizing inverted bounds.
    pub fn new(name: impl Into<String>, lo: i64, hi: i64) -> IntVar {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        IntVar {
            name: name.into(),
            lo,
            hi,
        }
    }

    /// Number of admissible values.
    pub fn cardinality(&self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }

    /// Clamps a value into the bounds.
    pub fn clamp(&self, v: i64) -> i64 {
        v.clamp(self.lo, self.hi)
    }

    /// Whether `v` is within bounds.
    pub fn contains(&self, v: i64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

impl fmt::Display for IntVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ∈ [{}, {}]", self.name, self.lo, self.hi)
    }
}

/// Whether an objective is minimized or maximized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Smaller is better (area metrics).
    Minimize,
    /// Larger is better (frequency).
    Maximize,
}

impl Sense {
    /// Sign applied to convert a raw value into minimization space.
    pub fn sign(&self) -> f64 {
        match self {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        }
    }
}

/// A named objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Objective {
    /// Objective name (e.g. `LUT`, `Fmax`).
    pub name: String,
    /// Optimization direction.
    pub sense: Sense,
}

impl Objective {
    /// A minimized objective.
    pub fn minimize(name: impl Into<String>) -> Objective {
        Objective {
            name: name.into(),
            sense: Sense::Minimize,
        }
    }

    /// A maximized objective.
    pub fn maximize(name: impl Into<String>) -> Objective {
        Objective {
            name: name.into(),
            sense: Sense::Maximize,
        }
    }
}

/// A multi-objective integer problem.
///
/// `evaluate` returns **raw** objective values in the order of
/// [`Problem::objectives`]; the engines convert to minimization space
/// internally using each objective's [`Sense`].
pub trait Problem {
    /// The decision variables.
    fn variables(&self) -> &[IntVar];

    /// The objectives.
    fn objectives(&self) -> &[Objective];

    /// Evaluates one genome (one value per variable, within bounds).
    fn evaluate(&mut self, genome: &[i64]) -> Vec<f64>;

    /// Evaluates a batch; the default maps [`Problem::evaluate`], but
    /// implementations backed by expensive evaluators may parallelize.
    ///
    /// Contract for implementations that do: the batch is a *generation* —
    /// `out[i]` must depend only on `genomes[i]` and on problem state as it
    /// stood when the batch started, never on other genomes' results from
    /// the same batch. Engines rely on this staged (decide-against-snapshot,
    /// then evaluate, then fold state serially) semantics for seeded
    /// determinism: with it, a parallel implementation returns bitwise the
    /// same vectors as a serial one. Duplicate genomes within the batch must
    /// yield identical rows, so implementations are free to dispatch each
    /// distinct genome once and fan results back out.
    fn evaluate_batch(&mut self, genomes: &[Vec<i64>]) -> Vec<Vec<f64>> {
        genomes.iter().map(|g| self.evaluate(g)).collect()
    }

    /// External cost spent so far (e.g. simulated tool seconds). Drives
    /// soft-deadline termination; defaults to zero for analytic problems.
    fn external_cost(&self) -> f64 {
        0.0
    }

    /// Total design-space volume (product of cardinalities), saturating.
    fn volume(&self) -> u64 {
        self.variables()
            .iter()
            .fold(1u64, |acc, v| acc.saturating_mul(v.cardinality()))
    }
}

/// Converts raw objective values into minimization space.
pub fn to_min_space(objectives: &[Objective], raw: &[f64]) -> Vec<f64> {
    objectives
        .iter()
        .zip(raw)
        .map(|(o, v)| o.sense.sign() * v)
        .collect()
}

/// A simple closed-form test problem used across the crate's tests: the
/// integer variant of the classic SCH problem (f1 = x², f2 = (x−2)²).
#[derive(Debug, Clone)]
pub struct Schaffer {
    vars: Vec<IntVar>,
    objs: Vec<Objective>,
    /// Number of `evaluate` calls, for budget tests.
    pub evaluations: u64,
}

impl Schaffer {
    /// Creates the problem with x ∈ [-1000, 1000].
    pub fn new() -> Schaffer {
        Schaffer {
            vars: vec![IntVar::new("x", -1000, 1000)],
            objs: vec![Objective::minimize("f1"), Objective::minimize("f2")],
            evaluations: 0,
        }
    }
}

impl Default for Schaffer {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for Schaffer {
    fn variables(&self) -> &[IntVar] {
        &self.vars
    }

    fn objectives(&self) -> &[Objective] {
        &self.objs
    }

    fn evaluate(&mut self, genome: &[i64]) -> Vec<f64> {
        self.evaluations += 1;
        let x = genome[0] as f64;
        vec![x * x, (x - 2.0) * (x - 2.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intvar_normalizes_bounds() {
        let v = IntVar::new("a", 10, 2);
        assert_eq!((v.lo, v.hi), (2, 10));
        assert_eq!(v.cardinality(), 9);
    }

    #[test]
    fn intvar_clamp_and_contains() {
        let v = IntVar::new("a", 0, 7);
        assert_eq!(v.clamp(-3), 0);
        assert_eq!(v.clamp(100), 7);
        assert!(v.contains(0) && v.contains(7));
        assert!(!v.contains(8));
    }

    #[test]
    fn sense_signs() {
        assert_eq!(Sense::Minimize.sign(), 1.0);
        assert_eq!(Sense::Maximize.sign(), -1.0);
    }

    #[test]
    fn min_space_conversion() {
        let objs = vec![Objective::minimize("area"), Objective::maximize("fmax")];
        let m = to_min_space(&objs, &[100.0, 250.0]);
        assert_eq!(m, vec![100.0, -250.0]);
    }

    #[test]
    fn schaffer_shape() {
        let mut p = Schaffer::new();
        assert_eq!(p.variables().len(), 1);
        assert_eq!(p.objectives().len(), 2);
        assert_eq!(p.evaluate(&[0]), vec![0.0, 4.0]);
        assert_eq!(p.evaluate(&[2]), vec![4.0, 0.0]);
        assert_eq!(p.evaluations, 2);
    }

    #[test]
    fn volume_saturates() {
        struct Huge(Vec<IntVar>, Vec<Objective>);
        impl Problem for Huge {
            fn variables(&self) -> &[IntVar] {
                &self.0
            }
            fn objectives(&self) -> &[Objective] {
                &self.1
            }
            fn evaluate(&mut self, _: &[i64]) -> Vec<f64> {
                vec![]
            }
        }
        let h = Huge(
            vec![
                IntVar::new("a", i64::MIN / 4, i64::MAX / 4),
                IntVar::new("b", i64::MIN / 4, i64::MAX / 4),
            ],
            vec![],
        );
        assert_eq!(h.volume(), u64::MAX);
    }

    #[test]
    fn default_batch_maps_evaluate() {
        let mut p = Schaffer::new();
        let out = p.evaluate_batch(&[vec![0], vec![2]]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], vec![4.0, 0.0]);
    }
}
