//! Crowding-distance assignment (Deb et al., NSGA-II).
//!
//! Preserves diversity along each front: boundary solutions get infinite
//! distance, interior solutions the sum of normalized neighbour gaps per
//! objective.

use crate::individual::Individual;

/// Computes crowding distances for the individuals at `front` indices and
/// writes them into `pop[i].crowding`.
pub fn assign_crowding(pop: &mut [Individual], front: &[usize]) {
    let n = front.len();
    if n == 0 {
        return;
    }
    for &i in front {
        pop[i].crowding = 0.0;
    }
    if n <= 2 {
        for &i in front {
            pop[i].crowding = f64::INFINITY;
        }
        return;
    }
    let n_obj = pop[front[0]].min_objs.len();
    let mut order: Vec<usize> = front.to_vec();
    for m in 0..n_obj {
        order.sort_by(|&a, &b| {
            pop[a].min_objs[m]
                .partial_cmp(&pop[b].min_objs[m])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = pop[order[0]].min_objs[m];
        let hi = pop[order[n - 1]].min_objs[m];
        pop[order[0]].crowding = f64::INFINITY;
        pop[order[n - 1]].crowding = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..(n - 1) {
            let prev = pop[order[w - 1]].min_objs[m];
            let next = pop[order[w + 1]].min_objs[m];
            let i = order[w];
            if pop[i].crowding.is_finite() {
                pop[i].crowding += (next - prev) / span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(objs: &[f64]) -> Individual {
        Individual::new(vec![], objs.to_vec(), objs.to_vec())
    }

    #[test]
    fn boundaries_infinite() {
        let mut pop = vec![
            ind(&[1.0, 4.0]),
            ind(&[2.0, 3.0]),
            ind(&[3.0, 2.0]),
            ind(&[4.0, 1.0]),
        ];
        let front: Vec<usize> = (0..4).collect();
        assign_crowding(&mut pop, &front);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[3].crowding.is_infinite());
        assert!(pop[1].crowding.is_finite());
        assert!(pop[2].crowding.is_finite());
    }

    #[test]
    fn evenly_spaced_points_equal_distance() {
        let mut pop = vec![
            ind(&[0.0, 4.0]),
            ind(&[1.0, 3.0]),
            ind(&[2.0, 2.0]),
            ind(&[3.0, 1.0]),
            ind(&[4.0, 0.0]),
        ];
        let front: Vec<usize> = (0..5).collect();
        assign_crowding(&mut pop, &front);
        assert!((pop[1].crowding - pop[2].crowding).abs() < 1e-12);
        assert!((pop[2].crowding - pop[3].crowding).abs() < 1e-12);
    }

    #[test]
    fn crowded_point_scores_lower() {
        // Points: two clustered near the middle, one isolated.
        let mut pop = vec![
            ind(&[0.0, 10.0]),
            ind(&[4.9, 5.1]),
            ind(&[5.0, 5.0]),
            ind(&[5.1, 4.9]),
            ind(&[10.0, 0.0]),
        ];
        let front: Vec<usize> = (0..5).collect();
        assign_crowding(&mut pop, &front);
        // Middle of the cluster is the most crowded interior point.
        assert!(pop[2].crowding < pop[1].crowding);
        assert!(pop[2].crowding < pop[3].crowding);
    }

    #[test]
    fn small_fronts_all_infinite() {
        let mut pop = vec![ind(&[1.0]), ind(&[2.0])];
        assign_crowding(&mut pop, &[0, 1]);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[1].crowding.is_infinite());
        let mut single = vec![ind(&[1.0])];
        assign_crowding(&mut single, &[0]);
        assert!(single[0].crowding.is_infinite());
    }

    #[test]
    fn degenerate_objective_span_handled() {
        let mut pop = vec![ind(&[1.0, 1.0]), ind(&[1.0, 2.0]), ind(&[1.0, 3.0])];
        let front: Vec<usize> = (0..3).collect();
        assign_crowding(&mut pop, &front);
        // First objective has zero span; must not produce NaN.
        assert!(!pop[1].crowding.is_nan());
    }

    #[test]
    fn empty_front_noop() {
        let mut pop: Vec<Individual> = vec![];
        assign_crowding(&mut pop, &[]);
    }
}
