//! # dovado-moo
//!
//! Multi-objective integer optimization for the Dovado DSE framework:
//! a from-scratch NSGA-II (fast non-dominated sorting, crowding distance,
//! binary tournament, integer SBX crossover, Gaussian integer mutation,
//! duplicate elimination), baseline explorers (random, exhaustive,
//! weighted-sum GA), quality metrics (hypervolume, IGD, spread) and
//! termination criteria including the paper's soft deadline.
//!
//! ```
//! use dovado_moo::{nsga2, Nsga2Config, Schaffer, Termination};
//!
//! let mut problem = Schaffer::new();
//! let cfg = Nsga2Config { pop_size: 20, seed: 1, ..Default::default() };
//! let result = nsga2(&mut problem, &cfg, &Termination::Generations(25));
//! assert!(!result.pareto.is_empty());
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod benchmarks;
pub mod crowding;
pub mod explorer;
pub mod individual;
pub mod metrics;
pub mod nsga2;
pub mod ops;
pub mod problem;
pub mod sorting;
pub mod termination;

pub use baselines::{exhaustive_search, random_search, weighted_sum_ga};
pub use benchmarks::{Zdt1, Zdt2, Zdt3};
pub use crowding::assign_crowding;
pub use explorer::{
    AnnealingExplorer, AnnealingSnapshot, BayesSnapshot, ExhaustiveExplorer, ExhaustiveSnapshot,
    Explorer, ExplorerSnapshot, Nsga2Explorer, RandomExplorer, RandomSnapshot, WsgaExplorer,
    WsgaSnapshot,
};
pub use individual::{non_dominated_indices, Individual};
pub use metrics::{hypervolume, hypervolume_of, igd, spread};
pub use nsga2::{nsga2, GenStats, Nsga2Config, Nsga2Engine, Nsga2Snapshot, OptResult};
pub use ops::{GaussianIntegerMutation, IntegerSbx};
pub use problem::{to_min_space, IntVar, Objective, Problem, Schaffer, Sense};
pub use sorting::fast_non_dominated_sort;
pub use termination::{EngineState, Termination};
