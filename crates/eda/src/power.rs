//! Power estimation (`report_power`).
//!
//! The DSE literature the paper builds on optimizes power alongside delay
//! and area (Karakaya's power-delay-area product, §II). Vivado exposes
//! power through `report_power`; this module provides the simulated
//! equivalent: a classic static + dynamic decomposition,
//! `P = P_static(device) + Σ_cells C_eff · α · f`, with process-dependent
//! coefficients so 16 nm parts draw less dynamic power per cell than 28 nm
//! ones.

use crate::netlist::Netlist;
use dovado_fpga::{Part, ResourceKind};

/// Default toggle rate α (fraction of cells switching per cycle) — the
/// 12.5 % Vivado assumes when no simulation data is supplied.
pub const DEFAULT_TOGGLE_RATE: f64 = 0.125;

/// A power estimate in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Device leakage (independent of the design).
    pub static_mw: f64,
    /// Switching power of the design at the given clock.
    pub dynamic_mw: f64,
}

impl PowerEstimate {
    /// Total power.
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }
}

/// Per-cell effective switching energy coefficients, in µW per MHz at
/// α = 1 (scaled by the process factor below).
fn cell_coeff_uw_per_mhz(kind: ResourceKind) -> f64 {
    match kind {
        ResourceKind::Lut => 0.30,
        ResourceKind::Register => 0.10,
        ResourceKind::Bram => 15.0,
        ResourceKind::Uram => 30.0,
        ResourceKind::Dsp => 10.0,
        ResourceKind::Carry => 0.06,
        ResourceKind::Io => 6.0,
        ResourceKind::Bufg => 12.0,
    }
}

/// Process scaling of dynamic power (16 nm FinFET switches at a fraction
/// of the 28 nm planar energy).
fn process_factor(part: &Part) -> f64 {
    match part.timing.process_nm {
        nm if nm <= 16 => 0.45,
        _ => 1.0,
    }
}

/// Estimates power for a routed design at `clock_mhz`.
pub fn estimate_power(
    netlist: &Netlist,
    part: &Part,
    clock_mhz: f64,
    toggle: f64,
) -> PowerEstimate {
    let toggle = toggle.clamp(0.0, 1.0);
    let f = clock_mhz.max(0.0);

    // Leakage grows with device size; FinFET leaks less per cell.
    let device_cells = part.capacity.total() as f64;
    let leak_per_cell_uw = if part.timing.process_nm <= 16 {
        0.5
    } else {
        0.8
    };
    let static_mw = device_cells * leak_per_cell_uw / 1000.0;

    let mut dynamic_uw = 0.0;
    for kind in ResourceKind::ALL {
        let n = netlist.cells.get(kind) as f64;
        dynamic_uw += n * cell_coeff_uw_per_mhz(kind) * f * toggle;
    }
    // Clock tree: proportional to the number of sequential cells.
    dynamic_uw += netlist.registers() as f64 * 0.02 * f;

    PowerEstimate {
        static_mw,
        dynamic_mw: dynamic_uw * process_factor(part) / 1000.0,
    }
}

/// Renders a `report_power`-shaped text report.
pub fn write_power_report(module: &str, est: &PowerEstimate, clock_mhz: f64) -> String {
    format!(
        "Copyright 1986-2026 Dovado-RS simulated Vivado\n\
         | Design       : {module}\n\
         \n\
         Power Report (activity derived from constraints, toggle {:.1} %)\n\
         | Total On-Chip Power (W)  | {:.4} |\n\
         | Dynamic (W)              | {:.4} |\n\
         | Device Static (W)        | {:.4} |\n\
         | Clock (MHz)              | {clock_mhz:.3} |\n",
        DEFAULT_TOGGLE_RATE * 100.0,
        est.total_mw() / 1000.0,
        est.dynamic_mw / 1000.0,
        est.static_mw / 1000.0,
    )
}

/// Scrapes the total power (mW) back out of a power report.
pub fn parse_power_mw(text: &str) -> Option<f64> {
    for line in text.lines() {
        if line.contains("Total On-Chip Power") {
            let cols: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            if let Some(v) = cols.get(1).and_then(|s| s.parse::<f64>().ok()) {
                return Some(v * 1000.0);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dovado_fpga::{Catalog, ResourceSet};

    fn netlist(luts: u64, regs: u64, brams: u64) -> Netlist {
        let mut n = Netlist::empty("dut");
        n.cells = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Bram, brams),
        ]);
        n
    }

    fn k7() -> Part {
        Catalog::builtin().resolve("xc7k70t").unwrap().clone()
    }

    fn zu3() -> Part {
        Catalog::builtin().resolve("xczu3eg").unwrap().clone()
    }

    #[test]
    fn dynamic_power_scales_with_frequency_and_cells() {
        let n = netlist(1000, 1000, 4);
        let slow = estimate_power(&n, &k7(), 100.0, DEFAULT_TOGGLE_RATE);
        let fast = estimate_power(&n, &k7(), 200.0, DEFAULT_TOGGLE_RATE);
        assert!((fast.dynamic_mw / slow.dynamic_mw - 2.0).abs() < 1e-9);
        let big = estimate_power(&netlist(2000, 2000, 8), &k7(), 100.0, DEFAULT_TOGGLE_RATE);
        assert!(big.dynamic_mw > slow.dynamic_mw * 1.9);
    }

    #[test]
    fn static_power_is_design_independent() {
        let a = estimate_power(&netlist(10, 10, 0), &k7(), 100.0, 0.1);
        let b = estimate_power(&netlist(10_000, 10_000, 50), &k7(), 100.0, 0.1);
        assert_eq!(a.static_mw, b.static_mw);
    }

    #[test]
    fn finfet_draws_less_dynamic_per_cell() {
        let n = netlist(1000, 1000, 4);
        let p28 = estimate_power(&n, &k7(), 150.0, DEFAULT_TOGGLE_RATE);
        let p16 = estimate_power(&n, &zu3(), 150.0, DEFAULT_TOGGLE_RATE);
        assert!(p16.dynamic_mw < p28.dynamic_mw * 0.6);
    }

    #[test]
    fn zero_frequency_means_leakage_only() {
        let n = netlist(1000, 1000, 4);
        let p = estimate_power(&n, &k7(), 0.0, DEFAULT_TOGGLE_RATE);
        assert_eq!(p.dynamic_mw, 0.0);
        assert!(p.static_mw > 0.0);
    }

    #[test]
    fn toggle_rate_clamped() {
        let n = netlist(1000, 0, 0);
        let a = estimate_power(&n, &k7(), 100.0, 5.0);
        let b = estimate_power(&n, &k7(), 100.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn report_roundtrip() {
        let n = netlist(1500, 1200, 6);
        let est = estimate_power(&n, &k7(), 180.0, DEFAULT_TOGGLE_RATE);
        let text = write_power_report("dut", &est, 180.0);
        let back = parse_power_mw(&text).unwrap();
        assert!(
            (back - est.total_mw()).abs() < 0.5,
            "{back} vs {}",
            est.total_mw()
        );
        assert!(parse_power_mw("garbage").is_none());
    }

    #[test]
    fn magnitudes_plausible() {
        // A small design on the K7: total power in the 100 mW – 2 W window.
        let n = netlist(5000, 6000, 20);
        let p = estimate_power(&n, &k7(), 200.0, DEFAULT_TOGGLE_RATE);
        let total = p.total_mw();
        assert!((50.0..2000.0).contains(&total), "total {total} mW");
    }
}
