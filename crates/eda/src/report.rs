//! Vivado-shaped text reports and their parsers.
//!
//! Dovado drives the real tool through files: it asks Vivado to write
//! `report_utilization`/`report_timing_summary` output and scrapes the
//! numbers back out (§III-A4). The simulator reproduces that interface:
//! [`write_utilization_report`]/[`write_timing_report`] emit text with the
//! same table shapes, and [`parse_utilization_report`]/[`parse_wns`] are the
//! scrapers the Dovado core uses — so the framework genuinely round-trips
//! its metrics through report text, like the paper's tool does.

use crate::error::{EdaError, EdaResult};
use crate::place_route::ImplResult;
use dovado_fpga::{Part, ResourceKind, ResourceSet};
use std::fmt::Write as _;

/// Renders a utilization report for `used` resources on `part`.
///
/// Device-dependent resources with zero capacity (e.g. URAM on non-UltraScale+
/// parts) are omitted, matching the paper's note that such rows are
/// "reported only if present".
pub fn write_utilization_report(module: &str, used: &ResourceSet, part: &Part) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Copyright 1986-2026 Dovado-RS simulated Vivado");
    let _ = writeln!(s, "| Design       : {module}");
    let _ = writeln!(s, "| Device       : {}", part.name);
    let _ = writeln!(s, "| Design State : Routed");
    let _ = writeln!(s);
    let _ = writeln!(s, "Utilization Design Information");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "+----------------------------+--------+-------+-----------+-------+"
    );
    let _ = writeln!(
        s,
        "|          Site Type         |  Used  | Fixed | Available | Util% |"
    );
    let _ = writeln!(
        s,
        "+----------------------------+--------+-------+-----------+-------+"
    );
    for kind in ResourceKind::ALL {
        let avail = part.capacity.get(kind);
        if avail == 0 {
            continue;
        }
        let u = used.get(kind);
        let pct = 100.0 * u as f64 / avail as f64;
        let _ = writeln!(
            s,
            "| {:<26} | {:>6} | {:>5} | {:>9} | {:>5.2} |",
            kind.report_label(),
            u,
            0,
            avail,
            pct
        );
    }
    let _ = writeln!(
        s,
        "+----------------------------+--------+-------+-----------+-------+"
    );
    s
}

/// Parses a utilization report back into a [`ResourceSet`].
pub fn parse_utilization_report(text: &str) -> EdaResult<ResourceSet> {
    let mut out = ResourceSet::zero();
    let mut rows = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cols: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cols.len() < 4 {
            continue;
        }
        let Some(kind) = ResourceKind::from_report_label(cols[0]) else {
            continue;
        };
        let Ok(used) = cols[1].parse::<u64>() else {
            continue;
        };
        out.set(kind, used);
        rows += 1;
    }
    if rows == 0 {
        return Err(EdaError::Parse(
            "no utilization rows found in report".into(),
        ));
    }
    Ok(out)
}

/// Renders a timing-summary report with the WNS line Dovado scrapes.
pub fn write_timing_report(module: &str, result: &ImplResult) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Copyright 1986-2026 Dovado-RS simulated Vivado");
    let _ = writeln!(s, "| Design       : {module}");
    let _ = writeln!(s);
    let _ = writeln!(s, "Design Timing Summary");
    let _ = writeln!(
        s,
        "| WNS(ns)  | TNS(ns)  | TNS Failing Endpoints | Total Endpoints |"
    );
    let _ = writeln!(
        s,
        "| -------  | -------  | --------------------- | --------------- |"
    );
    let tns = if result.wns_ns < 0.0 {
        result.wns_ns * 8.0
    } else {
        0.0
    };
    let failing = if result.wns_ns < 0.0 { 8 } else { 0 };
    let _ = writeln!(
        s,
        "| {:>8.3} | {:>8.3} | {:>21} | {:>15} |",
        result.wns_ns, tns, failing, 64
    );
    let _ = writeln!(s);
    let _ = writeln!(s, "Clock Summary");
    let _ = writeln!(
        s,
        "clk  {{0.000 {:.3}}}  period {:.3}ns  frequency {:.3} MHz (constraint)",
        result.period_ns / 2.0,
        result.period_ns,
        1000.0 / result.period_ns
    );
    let _ = writeln!(s);
    let _ = writeln!(s, "Critical path: {}", result.netlist.crit_path);
    let _ = writeln!(
        s,
        "Data path delay: {:.3}ns (achievable frequency {:.3} MHz)",
        result.crit_delay_ns,
        result.fmax_mhz()
    );
    s
}

/// Extracts the WNS value (ns) from a timing-summary report.
pub fn parse_wns(text: &str) -> EdaResult<f64> {
    let mut lines = text.lines();
    while let Some(line) = lines.next() {
        if line.contains("WNS(ns)") {
            // Skip the separator row, then read the value row.
            let _sep = lines.next();
            if let Some(values) = lines.next() {
                let first = values
                    .trim()
                    .trim_matches('|')
                    .split('|')
                    .next()
                    .map(str::trim)
                    .unwrap_or("");
                return first
                    .parse::<f64>()
                    .map_err(|_| EdaError::Parse(format!("cannot parse WNS from `{first}`")));
            }
        }
    }
    Err(EdaError::Parse(
        "no WNS column found in timing report".into(),
    ))
}

/// Extracts the constrained period (ns) from a timing-summary report.
pub fn parse_period(text: &str) -> EdaResult<f64> {
    for line in text.lines() {
        if let Some(idx) = line.find("period ") {
            let rest = &line[idx + "period ".len()..];
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            if let Ok(v) = num.parse::<f64>() {
                return Ok(v);
            }
        }
    }
    Err(EdaError::Parse("no period found in timing report".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use dovado_fpga::Catalog;

    fn part() -> Part {
        Catalog::builtin().resolve("xc7k70t").unwrap().clone()
    }

    fn impl_result(wns: f64, period: f64) -> ImplResult {
        let mut nl = Netlist::empty("dut");
        nl.crit_path = "a -> b".into();
        ImplResult {
            netlist: nl,
            utilization: 0.1,
            crit_delay_ns: period - wns,
            wns_ns: wns,
            period_ns: period,
            runtime_s: 1.0,
            log: String::new(),
        }
    }

    #[test]
    fn utilization_roundtrip() {
        let used = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, 1234),
            (ResourceKind::Register, 567),
            (ResourceKind::Bram, 4),
        ]);
        let text = write_utilization_report("dut", &used, &part());
        let back = parse_utilization_report(&text).unwrap();
        assert_eq!(back.get(ResourceKind::Lut), 1234);
        assert_eq!(back.get(ResourceKind::Register), 567);
        assert_eq!(back.get(ResourceKind::Bram), 4);
    }

    #[test]
    fn uram_row_absent_on_series7() {
        let used = ResourceSet::from_pairs(&[(ResourceKind::Lut, 10)]);
        let text = write_utilization_report("dut", &used, &part());
        assert!(!text.contains("URAM"));
    }

    #[test]
    fn uram_row_present_on_uram_device() {
        let ku5p = Catalog::builtin().resolve("xcku5p").unwrap().clone();
        let used = ResourceSet::from_pairs(&[(ResourceKind::Uram, 3)]);
        let text = write_utilization_report("dut", &used, &ku5p);
        assert!(text.contains("URAM"));
        let back = parse_utilization_report(&text).unwrap();
        assert_eq!(back.get(ResourceKind::Uram), 3);
    }

    #[test]
    fn wns_roundtrip_negative() {
        let text = write_timing_report("dut", &impl_result(-4.125, 1.0));
        let wns = parse_wns(&text).unwrap();
        assert!((wns + 4.125).abs() < 1e-9);
    }

    #[test]
    fn wns_roundtrip_positive() {
        let text = write_timing_report("dut", &impl_result(0.75, 5.0));
        assert!((parse_wns(&text).unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn period_roundtrip() {
        let text = write_timing_report("dut", &impl_result(-2.0, 1.0));
        assert!((parse_period(&text).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fmax_recoverable_from_report_numbers() {
        // Eq. 1: Fmax = 1000 / (T - WNS).
        let r = impl_result(-4.0, 1.0);
        let text = write_timing_report("dut", &r);
        let wns = parse_wns(&text).unwrap();
        let period = parse_period(&text).unwrap();
        let fmax = 1000.0 / (period - wns);
        assert!((fmax - 200.0).abs() < 1e-6);
    }

    #[test]
    fn parse_errors_on_garbage() {
        assert!(parse_utilization_report("nothing here").is_err());
        assert!(parse_wns("nothing here").is_err());
        assert!(parse_period("nothing here").is_err());
    }

    #[test]
    fn utilization_percent_sane() {
        let used = ResourceSet::from_pairs(&[(ResourceKind::Lut, 4100)]);
        let text = write_utilization_report("dut", &used, &part());
        // 4100/41000 = 10 %
        assert!(text.contains("10.00"));
    }
}
