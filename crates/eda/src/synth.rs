//! Simulated logic synthesis.
//!
//! Takes an elaborated [`Netlist`], applies the selected synthesis
//! directive's area/delay trade-off plus a small deterministic optimization
//! noise, and produces a [`SynthResult`] with the optimized netlist and a
//! simulated tool run time. Dovado exposes directive selection to the user
//! ("the user can specify the directives to guide the tool for a given
//! optimization metric", §III-A3); the directives here mirror Vivado's
//! `synth_design -directive` values.

use crate::netlist::Netlist;
use dovado_fpga::{Part, ResourceKind};
use std::fmt;
use std::str::FromStr;

/// Synthesis directive (Vivado `synth_design -directive`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthDirective {
    /// Balanced default flow.
    #[default]
    Default,
    /// Favor tool run time over QoR.
    RuntimeOptimized,
    /// Aggressive area recovery.
    AreaOptimizedHigh,
    /// Moderate area recovery.
    AreaOptimizedMedium,
    /// Timing-driven synthesis.
    PerformanceOptimized,
    /// Spread logic to ease routing.
    AlternateRoutability,
    /// Avoid long carry chains.
    FewerCarryChains,
}

impl SynthDirective {
    /// Multiplier on LUT count.
    pub fn area_factor(&self) -> f64 {
        match self {
            SynthDirective::Default => 1.0,
            SynthDirective::RuntimeOptimized => 1.06,
            SynthDirective::AreaOptimizedHigh => 0.90,
            SynthDirective::AreaOptimizedMedium => 0.95,
            SynthDirective::PerformanceOptimized => 1.08,
            SynthDirective::AlternateRoutability => 1.04,
            SynthDirective::FewerCarryChains => 1.03,
        }
    }

    /// Additive adjustment to critical-path logic levels.
    pub fn level_delta(&self) -> i32 {
        match self {
            SynthDirective::Default => 0,
            SynthDirective::RuntimeOptimized => 1,
            SynthDirective::AreaOptimizedHigh => 1,
            SynthDirective::AreaOptimizedMedium => 0,
            SynthDirective::PerformanceOptimized => -1,
            SynthDirective::AlternateRoutability => 0,
            SynthDirective::FewerCarryChains => 0,
        }
    }

    /// Multiplier on tool run time.
    pub fn runtime_factor(&self) -> f64 {
        match self {
            SynthDirective::Default => 1.0,
            SynthDirective::RuntimeOptimized => 0.55,
            SynthDirective::AreaOptimizedHigh => 1.35,
            SynthDirective::AreaOptimizedMedium => 1.15,
            SynthDirective::PerformanceOptimized => 1.40,
            SynthDirective::AlternateRoutability => 1.20,
            SynthDirective::FewerCarryChains => 1.05,
        }
    }

    /// The Vivado spelling.
    pub fn as_vivado(&self) -> &'static str {
        match self {
            SynthDirective::Default => "Default",
            SynthDirective::RuntimeOptimized => "RuntimeOptimized",
            SynthDirective::AreaOptimizedHigh => "AreaOptimized_high",
            SynthDirective::AreaOptimizedMedium => "AreaOptimized_medium",
            SynthDirective::PerformanceOptimized => "PerformanceOptimized",
            SynthDirective::AlternateRoutability => "AlternateRoutability",
            SynthDirective::FewerCarryChains => "FewerCarryChains",
        }
    }
}

impl FromStr for SynthDirective {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let l = s.to_ascii_lowercase();
        Ok(match l.as_str() {
            "default" => SynthDirective::Default,
            "runtimeoptimized" => SynthDirective::RuntimeOptimized,
            "areaoptimized_high" => SynthDirective::AreaOptimizedHigh,
            "areaoptimized_medium" => SynthDirective::AreaOptimizedMedium,
            "performanceoptimized" => SynthDirective::PerformanceOptimized,
            "alternateroutability" => SynthDirective::AlternateRoutability,
            "fewercarrychains" => SynthDirective::FewerCarryChains,
            _ => return Err(format!("unknown synth directive `{s}`")),
        })
    }
}

impl fmt::Display for SynthDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_vivado())
    }
}

/// Output of the synthesis engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthResult {
    /// Optimized netlist.
    pub netlist: Netlist,
    /// Simulated tool run time in seconds.
    pub runtime_s: f64,
    /// Directive used.
    pub directive: SynthDirective,
    /// Short log excerpt.
    pub log: String,
}

/// Simulated run time of a from-scratch synthesis, in seconds.
pub fn synth_runtime_s(cells_total: u64, directive: SynthDirective) -> f64 {
    (14.0 + 0.012 * cells_total as f64) * directive.runtime_factor()
}

/// Runs synthesis on an elaborated netlist.
///
/// `seed` feeds the deterministic optimization noise; the same
/// (netlist, part, directive, seed) quadruple always yields the same result.
pub fn synthesize(
    netlist: &Netlist,
    part: &Part,
    directive: SynthDirective,
    seed: u64,
) -> SynthResult {
    let mut out = netlist.clone();

    // Synthesis is deterministic for fixed inputs (as the real tool is):
    // resource counts move only with the directive. The stochastic part of
    // the flow lives in place & route (see `place_route::place_and_route`,
    // which seeds its jitter from the same design identity). `part` and
    // `seed` stay in the signature: device-aware mapping heuristics and
    // seeded optimization are extension points the ablation benches probe.
    let _ = (part, seed);
    let luts = netlist.cells.get(ResourceKind::Lut) as f64 * directive.area_factor();
    out.cells
        .set(ResourceKind::Lut, luts.round().max(1.0) as u64);

    // Logic depth after technology mapping.
    let levels = netlist.logic_levels as i64 + directive.level_delta() as i64;
    out.logic_levels = levels.max(1) as u32;

    if directive == SynthDirective::FewerCarryChains {
        out.carry_bits = (out.carry_bits / 2).max(1);
        out.cells.set(
            ResourceKind::Lut,
            out.cells.get(ResourceKind::Lut) + out.carry_bits as u64,
        );
    }

    let runtime_s = synth_runtime_s(netlist.cells.total(), directive);
    let log = format!(
        "synth_design: module {} mapped to {} LUT, {} FF, {} BRAM, {} DSP (directive {})",
        out.module,
        out.cells.get(ResourceKind::Lut),
        out.cells.get(ResourceKind::Register),
        out.cells.get(ResourceKind::Bram),
        out.cells.get(ResourceKind::Dsp),
        directive.as_vivado(),
    );
    SynthResult {
        netlist: out,
        runtime_s,
        directive,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dovado_fpga::{Catalog, ResourceSet};

    fn netlist() -> Netlist {
        let mut n = Netlist::empty("dut");
        n.cells = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, 1000),
            (ResourceKind::Register, 800),
            (ResourceKind::Bram, 4),
        ]);
        n.logic_levels = 6;
        n.carry_bits = 16;
        n.design_hash = 0xDEADBEEF;
        n
    }

    fn part() -> Part {
        Catalog::builtin().resolve("xc7k70t").unwrap().clone()
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let a = synthesize(&netlist(), &part(), SynthDirective::Default, 42);
        let b = synthesize(&netlist(), &part(), SynthDirective::Default, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_independent_resource_counts() {
        // Synthesis QoR is deterministic regardless of the seed; only the
        // place & route stage is seeded.
        let a = synthesize(&netlist(), &part(), SynthDirective::Default, 1);
        let b = synthesize(&netlist(), &part(), SynthDirective::Default, 2);
        assert_eq!(a.netlist, b.netlist);
    }

    #[test]
    fn area_directive_reduces_luts_adds_level() {
        let d = synthesize(&netlist(), &part(), SynthDirective::Default, 7);
        let a = synthesize(&netlist(), &part(), SynthDirective::AreaOptimizedHigh, 7);
        assert!(a.netlist.luts() < d.netlist.luts());
        assert_eq!(a.netlist.logic_levels, d.netlist.logic_levels + 1);
    }

    #[test]
    fn performance_directive_cuts_level_costs_area() {
        let d = synthesize(&netlist(), &part(), SynthDirective::Default, 7);
        let p = synthesize(&netlist(), &part(), SynthDirective::PerformanceOptimized, 7);
        assert!(p.netlist.luts() > d.netlist.luts());
        assert_eq!(p.netlist.logic_levels, d.netlist.logic_levels - 1);
    }

    #[test]
    fn runtime_scales_with_size_and_directive() {
        assert!(
            synth_runtime_s(100_000, SynthDirective::Default)
                > synth_runtime_s(1_000, SynthDirective::Default)
        );
        assert!(
            synth_runtime_s(10_000, SynthDirective::RuntimeOptimized)
                < synth_runtime_s(10_000, SynthDirective::Default)
        );
    }

    #[test]
    fn directive_roundtrip() {
        for d in [
            SynthDirective::Default,
            SynthDirective::RuntimeOptimized,
            SynthDirective::AreaOptimizedHigh,
            SynthDirective::AreaOptimizedMedium,
            SynthDirective::PerformanceOptimized,
            SynthDirective::AlternateRoutability,
            SynthDirective::FewerCarryChains,
        ] {
            assert_eq!(d.as_vivado().parse::<SynthDirective>().unwrap(), d);
        }
        assert!("nonsense".parse::<SynthDirective>().is_err());
    }

    #[test]
    fn fewer_carry_chains_halves_carry() {
        let r = synthesize(&netlist(), &part(), SynthDirective::FewerCarryChains, 3);
        assert_eq!(r.netlist.carry_bits, 8);
    }

    #[test]
    fn brams_never_touched_by_synthesis_noise() {
        let r = synthesize(&netlist(), &part(), SynthDirective::Default, 99);
        assert_eq!(r.netlist.brams(), 4);
    }
}
