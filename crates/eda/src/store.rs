//! Content-addressed on-disk evaluation store.
//!
//! Every real tool run is the scarce resource in Dovado's cost model; this
//! module makes paid-for runs durable. An [`EvalStore`] is a directory of
//! entry files keyed by a 128-bit [`EvalKey`] derived from everything that
//! determines a run's answer (HDL sources, top module, flow configuration,
//! and the concrete design point). Entries carry a format-version header and
//! an FNV-1a checksum; any mismatch — truncation, bit-flip, stale format —
//! is treated as a cache *miss*, never as a wrong answer.
//!
//! Writes are atomic: payloads land in a unique temporary file first and are
//! published with `rename`, so a crash mid-write can leave stray `.tmp`
//! debris but never a half-written entry under a valid key.
//!
//! # Sharding, capacity, and compaction
//!
//! Entries are sharded into [`SHARD_COUNT`] subdirectories by the leading
//! hex digits of their key, so a store serving millions of cached
//! evaluations never funnels every lookup through one giant directory.
//! A store may be opened with a **capacity bound**
//! ([`EvalStore::open_bounded`]): once the bound is exceeded, the
//! least-recently-touched entries are evicted (ties broken by key hex, so
//! eviction order is deterministic). [`EvalStore::compact`] walks the whole
//! store in one pass — deleting `.tmp` debris and corrupt entries,
//! migrating legacy unsharded entries into their shards, and re-enforcing
//! the capacity bound.
//!
//! The governing invariant for every one of those operations: **removing an
//! entry can only ever produce a future miss, never a wrong answer.**
//! Content addressing means a key is never reused for different data, and
//! the checksum envelope means damaged data never decodes; eviction and
//! compaction therefore only delete whole entries, which re-run the tool on
//! the next request.

use crate::hash::{fnv1a, fnv1a_with};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version of the on-disk entry encoding. Bump whenever the serialized
/// entry schema changes shape; old entries then read as misses instead of
/// being misinterpreted.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Number of leading hex digits of the key used as the shard directory
/// name (2 digits = 256 shards).
pub const SHARD_PREFIX_LEN: usize = 2;

/// Number of shard subdirectories a fully-populated store uses.
pub const SHARD_COUNT: usize = 1 << (4 * SHARD_PREFIX_LEN);

/// Independent second FNV basis (decimal digits of e, as FNV uses digits of
/// a prime offset); running a second stream over the same bytes gives the
/// key its upper 64 bits.
const FNV_BASIS_HI: u64 = 0x2718_2818_2845_9045;

/// Byte inserted between key parts so `("ab", "c")` and `("a", "bc")` hash
/// differently.
const PART_SEPARATOR: u8 = 0x1F;

static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// A 128-bit content hash identifying one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// Upper 64 bits (seeded-basis FNV-1a stream).
    pub hi: u64,
    /// Lower 64 bits (standard FNV-1a stream).
    pub lo: u64,
}

impl EvalKey {
    /// Hashes an ordered sequence of string parts into a key.
    ///
    /// Parts are separated by an out-of-band byte, so the key depends on
    /// the part boundaries as well as their contents.
    pub fn from_parts<S: AsRef<str>>(parts: &[S]) -> EvalKey {
        let mut bytes = Vec::new();
        for p in parts {
            bytes.extend_from_slice(p.as_ref().as_bytes());
            bytes.push(PART_SEPARATOR);
        }
        EvalKey {
            hi: fnv1a_with(FNV_BASIS_HI, &bytes),
            lo: fnv1a(&bytes),
        }
    }

    /// Extends this key with further parts, returning the combined key.
    pub fn extend<S: AsRef<str>>(&self, parts: &[S]) -> EvalKey {
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&self.hi.to_be_bytes());
        bytes.extend_from_slice(&self.lo.to_be_bytes());
        bytes.push(PART_SEPARATOR);
        for p in parts {
            bytes.extend_from_slice(p.as_ref().as_bytes());
            bytes.push(PART_SEPARATOR);
        }
        EvalKey {
            hi: fnv1a_with(FNV_BASIS_HI, &bytes),
            lo: fnv1a(&bytes),
        }
    }

    /// 32-hex-digit rendering, used as the entry file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Wraps `payload` in a version header + checksum envelope.
///
/// Layout (text, line-oriented):
///
/// ```text
/// <tag> <version>
/// fnv1a <16 hex digits over the payload bytes>
/// <payload...>
/// ```
pub fn encode_checked(tag: &str, version: u32, payload: &str) -> String {
    format!(
        "{tag} {version}\nfnv1a {:016x}\n{payload}",
        fnv1a(payload.as_bytes())
    )
}

/// Validates an envelope produced by [`encode_checked`] and returns the
/// payload, or `None` on any header, version, or checksum mismatch.
pub fn decode_checked<'a>(tag: &str, version: u32, text: &'a str) -> Option<&'a str> {
    let rest = text.strip_prefix(tag)?.strip_prefix(' ')?;
    let (ver_line, rest) = rest.split_once('\n')?;
    if ver_line.parse::<u32>().ok()? != version {
        return None;
    }
    let (sum_line, payload) = rest.split_once('\n')?;
    let sum = u64::from_str_radix(sum_line.strip_prefix("fnv1a ")?, 16).ok()?;
    if fnv1a(payload.as_bytes()) != sum {
        return None;
    }
    Some(payload)
}

/// Writes `bytes` to `path` atomically: a unique sibling temp file is
/// written, flushed, and published via `rename`.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{pid}.{nonce}.tmp"));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Observer of store evictions: called with the evicted key's hex once per
/// entry removed by the capacity bound (on `put` or `compact`), after the
/// entry file is gone. The core wires this to the observability spine.
pub type EvictionHook = Arc<dyn Fn(&str) + Send + Sync>;

/// What one [`EvalStore::compact`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactStats {
    /// Valid entries still present after the pass.
    pub retained: usize,
    /// Entries deleted because they failed envelope validation.
    pub removed_corrupt: usize,
    /// Stray `.tmp` files (crash debris) deleted.
    pub removed_debris: usize,
    /// Legacy unsharded entries moved into their shard directory.
    pub migrated: usize,
    /// Valid entries evicted to re-enforce the capacity bound.
    pub evicted: usize,
}

/// Recency bookkeeping for the capacity bound: a per-handle view of which
/// entries exist and when each was last touched. Ticks are unique, so the
/// eviction order `(tick, hex)` is total and deterministic.
#[derive(Default)]
struct StoreIndex {
    /// Key hex → last-touch tick.
    ticks: HashMap<String, u64>,
    /// `(tick, hex)` mirror of `ticks`: the first element is always the
    /// coldest entry.
    order: BTreeSet<(u64, String)>,
    clock: u64,
}

impl StoreIndex {
    fn touch(&mut self, hex: &str) {
        let tick = self.clock;
        self.clock += 1;
        if let Some(old) = self.ticks.insert(hex.to_string(), tick) {
            self.order.remove(&(old, hex.to_string()));
        }
        self.order.insert((tick, hex.to_string()));
    }

    fn forget(&mut self, hex: &str) {
        if let Some(old) = self.ticks.remove(hex) {
            self.order.remove(&(old, hex.to_string()));
        }
    }

    fn len(&self) -> usize {
        self.ticks.len()
    }

    fn coldest(&self) -> Option<String> {
        self.order.iter().next().map(|(_, hex)| hex.clone())
    }
}

/// A sharded directory of checksummed evaluation entries, optionally
/// bounded in entry count.
///
/// Clones share the recency index, the capacity bound, and the eviction
/// hook, so concurrent readers and writers cooperate on one bookkeeping
/// view. Independently-opened handles over the same directory each keep
/// their own view; [`EvalStore::compact`] resynchronizes a handle with the
/// disk.
#[derive(Clone)]
pub struct EvalStore {
    dir: PathBuf,
    /// Maximum entries to retain; `None` (the explicit default of
    /// [`EvalStore::open`]) means unbounded.
    capacity: Option<usize>,
    index: Arc<Mutex<StoreIndex>>,
    hook: Arc<Mutex<Option<EvictionHook>>>,
}

impl fmt::Debug for EvalStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalStore")
            .field("dir", &self.dir)
            .field("capacity", &self.capacity)
            .finish()
    }
}

const ENTRY_TAG: &str = "dovado-store";

impl EvalStore {
    /// Opens (creating if needed) an **unbounded** store rooted at `dir` —
    /// unbounded is the explicit default; use [`EvalStore::open_bounded`]
    /// to cap the on-disk entry count.
    pub fn open(dir: &Path) -> io::Result<EvalStore> {
        Self::open_bounded(dir, None)
    }

    /// Opens (creating if needed) a store rooted at `dir` holding at most
    /// `capacity` entries (`None` = unbounded). Once full, a `put` evicts
    /// the least-recently-touched entries first, deterministic tie-break
    /// by key hex. A zero capacity can cache nothing and is rejected.
    pub fn open_bounded(dir: &Path, capacity: Option<usize>) -> io::Result<EvalStore> {
        if capacity == Some(0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "store capacity must be at least 1 entry (use None for unbounded)",
            ));
        }
        fs::create_dir_all(dir)?;
        let store = EvalStore {
            dir: dir.to_path_buf(),
            capacity,
            index: Arc::new(Mutex::new(StoreIndex::default())),
            hook: Arc::new(Mutex::new(None)),
        };
        // Seed the recency index from disk in sorted-hex order, so a
        // freshly-opened bounded store evicts deterministically even
        // before any entry has been touched.
        let mut hexes: Vec<String> = store
            .scan_entries()
            .into_iter()
            .map(|(hex, _)| hex)
            .collect();
        hexes.sort();
        let mut index = store.index.lock().expect("store index poisoned");
        for hex in hexes {
            index.touch(&hex);
        }
        drop(index);
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Installs the eviction observer (replacing any prior one). Shared
    /// across clones of this handle.
    pub fn set_eviction_hook(&self, hook: EvictionHook) {
        *self.hook.lock().expect("store hook poisoned") = Some(hook);
    }

    /// The shard directory for a key hex.
    fn shard_dir(&self, hex: &str) -> PathBuf {
        self.dir.join(&hex[..SHARD_PREFIX_LEN])
    }

    /// The on-disk path an entry for `key` would occupy (inside its
    /// shard).
    pub fn entry_path(&self, key: &EvalKey) -> PathBuf {
        let hex = key.hex();
        self.shard_dir(&hex).join(format!("{hex}.entry"))
    }

    /// The pre-sharding (flat) path of an entry: where a store written by
    /// an older layout would hold it. `get` falls back to this path and
    /// migrates the entry into its shard.
    fn legacy_entry_path(&self, hex: &str) -> PathBuf {
        self.dir.join(format!("{hex}.entry"))
    }

    /// Looks up `key`, returning the stored payload on a clean hit.
    ///
    /// A missing file is a miss. A file that fails version or checksum
    /// validation is *also* a miss — and is deleted so the slot heals on
    /// the next `put` instead of failing validation forever. A valid
    /// entry found at the legacy unsharded path is served and migrated
    /// into its shard.
    pub fn get(&self, key: &EvalKey) -> Option<String> {
        let hex = key.hex();
        let path = self.entry_path(key);
        match read_valid_entry(&path) {
            ReadOutcome::Valid(payload) => {
                self.index.lock().expect("store index poisoned").touch(&hex);
                return Some(payload);
            }
            ReadOutcome::Corrupt => {
                let _ = fs::remove_file(&path);
                self.index
                    .lock()
                    .expect("store index poisoned")
                    .forget(&hex);
                return None;
            }
            ReadOutcome::Absent => {}
        }
        // Legacy flat layout: serve and migrate into the shard.
        let legacy = self.legacy_entry_path(&hex);
        match read_valid_entry(&legacy) {
            ReadOutcome::Valid(payload) => {
                let _ = fs::create_dir_all(self.shard_dir(&hex));
                let _ = fs::rename(&legacy, &path);
                self.index.lock().expect("store index poisoned").touch(&hex);
                Some(payload)
            }
            ReadOutcome::Corrupt => {
                let _ = fs::remove_file(&legacy);
                self.index
                    .lock()
                    .expect("store index poisoned")
                    .forget(&hex);
                None
            }
            ReadOutcome::Absent => {
                self.index
                    .lock()
                    .expect("store index poisoned")
                    .forget(&hex);
                None
            }
        }
    }

    /// Stores `payload` under `key` (atomic replace of any prior entry),
    /// then evicts the coldest entries if the capacity bound is exceeded.
    pub fn put(&self, key: &EvalKey, payload: &str) -> io::Result<()> {
        let hex = key.hex();
        let text = encode_checked(ENTRY_TAG, STORE_FORMAT_VERSION, payload);
        fs::create_dir_all(self.shard_dir(&hex))?;
        atomic_write(&self.entry_path(key), text.as_bytes())?;
        let evicted = {
            let mut index = self.index.lock().expect("store index poisoned");
            index.touch(&hex);
            self.evict_over_capacity(&mut index)
        };
        self.notify_evictions(&evicted);
        Ok(())
    }

    /// Removes coldest entries until the index fits the capacity bound.
    /// Must run under the index lock; returns the evicted hexes (files
    /// already deleted) for hook notification outside the lock.
    fn evict_over_capacity(&self, index: &mut StoreIndex) -> Vec<String> {
        let Some(cap) = self.capacity else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while index.len() > cap {
            let Some(hex) = index.coldest() else { break };
            let _ = fs::remove_file(self.shard_dir(&hex).join(format!("{hex}.entry")));
            let _ = fs::remove_file(self.legacy_entry_path(&hex));
            index.forget(&hex);
            evicted.push(hex);
        }
        evicted
    }

    /// Calls the eviction hook once per evicted key (outside any lock the
    /// hook could re-enter).
    fn notify_evictions(&self, evicted: &[String]) {
        if evicted.is_empty() {
            return;
        }
        let hook = self.hook.lock().expect("store hook poisoned").clone();
        if let Some(hook) = hook {
            for hex in evicted {
                hook(hex);
            }
        }
    }

    /// One full maintenance pass over the store directory:
    ///
    /// * deletes stray `.tmp` files (crash debris from interrupted atomic
    ///   writes),
    /// * deletes entries that fail envelope validation (they could only
    ///   ever read as misses),
    /// * migrates valid legacy unsharded entries into their shards,
    /// * rebuilds this handle's recency index from the surviving entries
    ///   (preserving known recency, discovering foreign writes), and
    /// * re-enforces the capacity bound, evicting coldest-first.
    ///
    /// Like eviction, compaction can only produce future misses, never
    /// wrong answers: it removes whole entries and never rewrites one.
    pub fn compact(&self) -> io::Result<CompactStats> {
        let mut stats = CompactStats::default();
        let mut valid: Vec<String> = Vec::new();

        for (hex, path) in self.scan_files()? {
            match hex {
                ScannedFile::Debris => {
                    let _ = fs::remove_file(&path);
                    stats.removed_debris += 1;
                }
                ScannedFile::Entry(hex) => match read_valid_entry(&path) {
                    ReadOutcome::Valid(_) => {
                        let sharded = self.shard_dir(&hex).join(format!("{hex}.entry"));
                        if path != sharded {
                            fs::create_dir_all(self.shard_dir(&hex))?;
                            if fs::rename(&path, &sharded).is_ok() {
                                stats.migrated += 1;
                            }
                        }
                        valid.push(hex);
                    }
                    ReadOutcome::Corrupt => {
                        let _ = fs::remove_file(&path);
                        stats.removed_corrupt += 1;
                    }
                    // Deleted concurrently between scan and read.
                    ReadOutcome::Absent => {}
                },
            }
        }

        valid.sort();
        valid.dedup();
        let evicted = {
            let mut index = self.index.lock().expect("store index poisoned");
            // Rebuild: keep the recency of entries this handle knew,
            // enqueue discovered ones in sorted-hex order behind a fresh
            // tick so the rebuilt order is deterministic.
            let mut rebuilt = StoreIndex {
                clock: index.clock,
                ..StoreIndex::default()
            };
            let mut known: Vec<(u64, String)> = Vec::new();
            let mut discovered: Vec<String> = Vec::new();
            for hex in &valid {
                match index.ticks.get(hex) {
                    Some(&tick) => known.push((tick, hex.clone())),
                    None => discovered.push(hex.clone()),
                }
            }
            known.sort();
            for (_, hex) in known {
                rebuilt.touch(&hex);
            }
            for hex in discovered {
                rebuilt.touch(&hex);
            }
            *index = rebuilt;
            self.evict_over_capacity(&mut index)
        };
        stats.evicted = evicted.len();
        stats.retained = valid.len() - stats.evicted;
        self.notify_evictions(&evicted);
        Ok(stats)
    }

    /// Number of valid-looking entry files currently on disk (root and
    /// all shards).
    pub fn len(&self) -> usize {
        self.scan_entries().len()
    }

    /// Whether the store currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `.entry` files on disk as `(hex, path)`, root and shards.
    fn scan_entries(&self) -> Vec<(String, PathBuf)> {
        self.scan_files()
            .unwrap_or_default()
            .into_iter()
            .filter_map(|(f, path)| match f {
                ScannedFile::Entry(hex) => Some((hex, path)),
                ScannedFile::Debris => None,
            })
            .collect()
    }

    /// Walks the store directory one level deep (root files + shard
    /// directories), classifying each file as an entry or `.tmp` debris.
    fn scan_files(&self) -> io::Result<Vec<(ScannedFile, PathBuf)>> {
        let mut out = Vec::new();
        let visit_dir = |dir: &Path, out: &mut Vec<(ScannedFile, PathBuf)>| {
            let Ok(rd) = fs::read_dir(dir) else { return };
            for entry in rd.filter_map(Result::ok) {
                let path = entry.path();
                if path.is_dir() {
                    continue;
                }
                if let Some(f) = classify_file(&path) {
                    out.push((f, path));
                }
            }
        };
        visit_dir(&self.dir, &mut out);
        let rd = fs::read_dir(&self.dir)?;
        for entry in rd.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() && is_shard_dir_name(&path) {
                visit_dir(&path, &mut out);
            }
        }
        Ok(out)
    }
}

/// One file found by the store walk.
enum ScannedFile {
    /// A `<hex>.entry` file (hex stem attached).
    Entry(String),
    /// A stray `.tmp` file from an interrupted atomic write.
    Debris,
}

fn classify_file(path: &Path) -> Option<ScannedFile> {
    let name = path.file_name()?.to_str()?;
    if name.ends_with(".tmp") {
        return Some(ScannedFile::Debris);
    }
    let stem = name.strip_suffix(".entry")?;
    Some(ScannedFile::Entry(stem.to_string()))
}

fn is_shard_dir_name(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.len() == SHARD_PREFIX_LEN && n.chars().all(|c| c.is_ascii_hexdigit()))
}

/// What reading one entry file yielded.
enum ReadOutcome {
    /// Decoded cleanly; payload attached.
    Valid(String),
    /// Present but failed UTF-8 or envelope validation.
    Corrupt,
    /// No file (or unreadable at the I/O level): a plain miss.
    Absent,
}

fn read_valid_entry(path: &Path) -> ReadOutcome {
    let Ok(bytes) = fs::read(path) else {
        return ReadOutcome::Absent;
    };
    match String::from_utf8(bytes)
        .ok()
        .and_then(|text| decode_checked(ENTRY_TAG, STORE_FORMAT_VERSION, &text).map(str::to_string))
    {
        Some(payload) => ReadOutcome::Valid(payload),
        None => ReadOutcome::Corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("dovado-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn key_is_stable_and_part_sensitive() {
        let a = EvalKey::from_parts(&["fifo", "DEPTH=8"]);
        let b = EvalKey::from_parts(&["fifo", "DEPTH=8"]);
        assert_eq!(a, b);
        assert_ne!(a, EvalKey::from_parts(&["fifo", "DEPTH=9"]));
        // Part boundaries matter: "ab"+"c" != "a"+"bc".
        assert_ne!(
            EvalKey::from_parts(&["ab", "c"]),
            EvalKey::from_parts(&["a", "bc"])
        );
        assert_eq!(a.hex().len(), 32);
        assert_ne!(a.extend(&["DATA_WIDTH=32"]), a);
    }

    #[test]
    fn roundtrip_hit() {
        let store = EvalStore::open(&tmpdir("roundtrip")).unwrap();
        let key = EvalKey::from_parts(&["design", "point"]);
        assert!(store.get(&key).is_none());
        store.put(&key, "objectives 1.0 2.0\n").unwrap();
        assert_eq!(store.get(&key).unwrap(), "objectives 1.0 2.0\n");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn entries_land_in_their_shard() {
        let store = EvalStore::open(&tmpdir("shard")).unwrap();
        let key = EvalKey::from_parts(&["sharded"]);
        store.put(&key, "payload").unwrap();
        let path = store.entry_path(&key);
        assert!(path.exists());
        let shard = path
            .parent()
            .unwrap()
            .file_name()
            .unwrap()
            .to_str()
            .unwrap();
        assert_eq!(shard, &key.hex()[..SHARD_PREFIX_LEN]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn legacy_flat_entries_are_served_and_migrated() {
        let dir = tmpdir("legacy");
        let store = EvalStore::open(&dir).unwrap();
        let key = EvalKey::from_parts(&["old"]);
        // Simulate a pre-sharding store: entry at the flat root path.
        let text = encode_checked(ENTRY_TAG, STORE_FORMAT_VERSION, "vintage");
        fs::write(dir.join(format!("{}.entry", key.hex())), text).unwrap();
        assert_eq!(store.get(&key).unwrap(), "vintage");
        // Migrated into the shard; the flat path is gone.
        assert!(store.entry_path(&key).exists());
        assert!(!dir.join(format!("{}.entry", key.hex())).exists());
        assert_eq!(store.get(&key).unwrap(), "vintage");
    }

    #[test]
    fn truncation_is_a_miss() {
        let store = EvalStore::open(&tmpdir("trunc")).unwrap();
        let key = EvalKey::from_parts(&["x"]);
        store
            .put(&key, "a long payload that will be cut short")
            .unwrap();
        let path = store.entry_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 5]).unwrap();
        assert!(store.get(&key).is_none());
        // The corrupt file was removed, so a fresh put heals the slot.
        assert!(!path.exists());
        store.put(&key, "fresh").unwrap();
        assert_eq!(store.get(&key).unwrap(), "fresh");
    }

    #[test]
    fn bitflip_is_a_miss() {
        let store = EvalStore::open(&tmpdir("flip")).unwrap();
        let key = EvalKey::from_parts(&["y"]);
        store.put(&key, "value 3.25").unwrap();
        let path = store.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(&key).is_none());
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let store = EvalStore::open(&tmpdir("ver")).unwrap();
        let key = EvalKey::from_parts(&["z"]);
        let stale = encode_checked(ENTRY_TAG, STORE_FORMAT_VERSION + 1, "payload");
        fs::create_dir_all(store.entry_path(&key).parent().unwrap()).unwrap();
        fs::write(store.entry_path(&key), stale).unwrap();
        assert!(store.get(&key).is_none());
    }

    #[test]
    fn envelope_roundtrip_and_rejection() {
        let enc = encode_checked("tag", 3, "hello\nworld");
        assert_eq!(decode_checked("tag", 3, &enc), Some("hello\nworld"));
        assert_eq!(decode_checked("tag", 4, &enc), None);
        assert_eq!(decode_checked("gat", 3, &enc), None);
        assert_eq!(decode_checked("tag", 3, &enc.replace('o', "0")), None);
        assert_eq!(decode_checked("tag", 3, "garbage"), None);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let err = EvalStore::open_bounded(&tmpdir("zero"), Some(0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn bounded_store_evicts_least_recently_touched_first() {
        let store = EvalStore::open_bounded(&tmpdir("lru"), Some(2)).unwrap();
        let evicted: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let log = evicted.clone();
        store.set_eviction_hook(Arc::new(move |hex| {
            log.lock().unwrap().push(hex.to_string())
        }));

        let a = EvalKey::from_parts(&["a"]);
        let b = EvalKey::from_parts(&["b"]);
        let c = EvalKey::from_parts(&["c"]);
        store.put(&a, "A").unwrap();
        store.put(&b, "B").unwrap();
        // Touch `a` so `b` is now the coldest entry.
        assert_eq!(store.get(&a).unwrap(), "A");
        store.put(&c, "C").unwrap();

        assert_eq!(store.len(), 2);
        assert_eq!(evicted.lock().unwrap().as_slice(), &[b.hex()]);
        assert!(store.get(&b).is_none(), "evicted entry is a miss");
        assert_eq!(store.get(&a).unwrap(), "A", "touched entry survives");
        assert_eq!(store.get(&c).unwrap(), "C");
    }

    #[test]
    fn eviction_is_only_ever_a_miss() {
        let store = EvalStore::open_bounded(&tmpdir("missonly"), Some(3)).unwrap();
        let keys: Vec<EvalKey> = (0..10)
            .map(|i| EvalKey::from_parts(&["k", &i.to_string()]))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            store.put(key, &format!("payload-{i}")).unwrap();
        }
        assert_eq!(store.len(), 3);
        for (i, key) in keys.iter().enumerate() {
            match store.get(key) {
                None => {}
                Some(p) => assert_eq!(p, format!("payload-{i}"), "never a wrong answer"),
            }
        }
    }

    #[test]
    fn compact_removes_debris_and_corruption_and_migrates() {
        let dir = tmpdir("compact");
        let store = EvalStore::open(&dir).unwrap();
        let good = EvalKey::from_parts(&["good"]);
        let bad = EvalKey::from_parts(&["bad"]);
        store.put(&good, "kept").unwrap();
        store.put(&bad, "doomed").unwrap();
        // Corrupt one entry in place.
        let bad_path = store.entry_path(&bad);
        fs::write(&bad_path, "garbage").unwrap();
        // Crash debris in the root and in a shard.
        fs::write(dir.join("stale.0.0.tmp"), "half-written").unwrap();
        fs::write(
            store.entry_path(&good).parent().unwrap().join("x.1.2.tmp"),
            "more",
        )
        .unwrap();
        // A valid legacy flat entry.
        let old = EvalKey::from_parts(&["old"]);
        let text = encode_checked(ENTRY_TAG, STORE_FORMAT_VERSION, "vintage");
        fs::write(dir.join(format!("{}.entry", old.hex())), text).unwrap();

        let stats = store.compact().unwrap();
        assert_eq!(stats.removed_corrupt, 1);
        assert_eq!(stats.removed_debris, 2);
        assert_eq!(stats.migrated, 1);
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.retained, 2);
        assert!(!bad_path.exists());
        assert_eq!(store.get(&good).unwrap(), "kept");
        assert_eq!(store.get(&old).unwrap(), "vintage");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn compact_enforces_capacity_and_reports_evictions() {
        let dir = tmpdir("compact-cap");
        // Fill beyond the bound through an unbounded handle, then compact
        // through a bounded one (a handle that never saw the puts).
        let unbounded = EvalStore::open(&dir).unwrap();
        for i in 0..6 {
            unbounded
                .put(&EvalKey::from_parts(&["n", &i.to_string()]), "v")
                .unwrap();
        }
        let bounded = EvalStore::open_bounded(&dir, Some(2)).unwrap();
        let stats = bounded.compact().unwrap();
        assert_eq!(stats.evicted, 4);
        assert_eq!(stats.retained, 2);
        assert_eq!(bounded.len(), 2);
    }

    #[test]
    fn clones_share_the_recency_view() {
        let store = EvalStore::open_bounded(&tmpdir("clone"), Some(1)).unwrap();
        let twin = store.clone();
        let a = EvalKey::from_parts(&["a"]);
        let b = EvalKey::from_parts(&["b"]);
        store.put(&a, "A").unwrap();
        twin.put(&b, "B").unwrap();
        assert_eq!(
            store.len(),
            1,
            "the clone's put evicted through the shared index"
        );
        assert!(store.get(&a).is_none());
        assert_eq!(store.get(&b).unwrap(), "B");
    }
}
