//! Content-addressed on-disk evaluation store.
//!
//! Every real tool run is the scarce resource in Dovado's cost model; this
//! module makes paid-for runs durable. An [`EvalStore`] is a directory of
//! entry files keyed by a 128-bit [`EvalKey`] derived from everything that
//! determines a run's answer (HDL sources, top module, flow configuration,
//! and the concrete design point). Entries carry a format-version header and
//! an FNV-1a checksum; any mismatch — truncation, bit-flip, stale format —
//! is treated as a cache *miss*, never as a wrong answer.
//!
//! Writes are atomic: payloads land in a unique temporary file first and are
//! published with `rename`, so a crash mid-write can leave stray `.tmp`
//! debris but never a half-written entry under a valid key.

use crate::hash::{fnv1a, fnv1a_with};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the on-disk entry encoding. Bump whenever the serialized
/// entry schema changes shape; old entries then read as misses instead of
/// being misinterpreted.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Independent second FNV basis (decimal digits of e, as FNV uses digits of
/// a prime offset); running a second stream over the same bytes gives the
/// key its upper 64 bits.
const FNV_BASIS_HI: u64 = 0x2718_2818_2845_9045;

/// Byte inserted between key parts so `("ab", "c")` and `("a", "bc")` hash
/// differently.
const PART_SEPARATOR: u8 = 0x1F;

static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// A 128-bit content hash identifying one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// Upper 64 bits (seeded-basis FNV-1a stream).
    pub hi: u64,
    /// Lower 64 bits (standard FNV-1a stream).
    pub lo: u64,
}

impl EvalKey {
    /// Hashes an ordered sequence of string parts into a key.
    ///
    /// Parts are separated by an out-of-band byte, so the key depends on
    /// the part boundaries as well as their contents.
    pub fn from_parts<S: AsRef<str>>(parts: &[S]) -> EvalKey {
        let mut bytes = Vec::new();
        for p in parts {
            bytes.extend_from_slice(p.as_ref().as_bytes());
            bytes.push(PART_SEPARATOR);
        }
        EvalKey {
            hi: fnv1a_with(FNV_BASIS_HI, &bytes),
            lo: fnv1a(&bytes),
        }
    }

    /// Extends this key with further parts, returning the combined key.
    pub fn extend<S: AsRef<str>>(&self, parts: &[S]) -> EvalKey {
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&self.hi.to_be_bytes());
        bytes.extend_from_slice(&self.lo.to_be_bytes());
        bytes.push(PART_SEPARATOR);
        for p in parts {
            bytes.extend_from_slice(p.as_ref().as_bytes());
            bytes.push(PART_SEPARATOR);
        }
        EvalKey {
            hi: fnv1a_with(FNV_BASIS_HI, &bytes),
            lo: fnv1a(&bytes),
        }
    }

    /// 32-hex-digit rendering, used as the entry file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Wraps `payload` in a version header + checksum envelope.
///
/// Layout (text, line-oriented):
///
/// ```text
/// <tag> <version>
/// fnv1a <16 hex digits over the payload bytes>
/// <payload...>
/// ```
pub fn encode_checked(tag: &str, version: u32, payload: &str) -> String {
    format!(
        "{tag} {version}\nfnv1a {:016x}\n{payload}",
        fnv1a(payload.as_bytes())
    )
}

/// Validates an envelope produced by [`encode_checked`] and returns the
/// payload, or `None` on any header, version, or checksum mismatch.
pub fn decode_checked<'a>(tag: &str, version: u32, text: &'a str) -> Option<&'a str> {
    let rest = text.strip_prefix(tag)?.strip_prefix(' ')?;
    let (ver_line, rest) = rest.split_once('\n')?;
    if ver_line.parse::<u32>().ok()? != version {
        return None;
    }
    let (sum_line, payload) = rest.split_once('\n')?;
    let sum = u64::from_str_radix(sum_line.strip_prefix("fnv1a ")?, 16).ok()?;
    if fnv1a(payload.as_bytes()) != sum {
        return None;
    }
    Some(payload)
}

/// Writes `bytes` to `path` atomically: a unique sibling temp file is
/// written, flushed, and published via `rename`.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{pid}.{nonce}.tmp"));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A directory of checksummed evaluation entries.
#[derive(Debug, Clone)]
pub struct EvalStore {
    dir: PathBuf,
}

const ENTRY_TAG: &str = "dovado-store";

impl EvalStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<EvalStore> {
        fs::create_dir_all(dir)?;
        Ok(EvalStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path an entry for `key` would occupy.
    pub fn entry_path(&self, key: &EvalKey) -> PathBuf {
        self.dir.join(format!("{}.entry", key.hex()))
    }

    /// Looks up `key`, returning the stored payload on a clean hit.
    ///
    /// A missing file is a miss. A file that fails version or checksum
    /// validation is *also* a miss — and is deleted so the slot heals on
    /// the next `put` instead of failing validation forever.
    pub fn get(&self, key: &EvalKey) -> Option<String> {
        let path = self.entry_path(key);
        // An I/O error (most commonly: no such entry) is a plain miss; a
        // file that exists but is not valid UTF-8 is corruption and goes
        // through the same delete-and-miss path as a checksum failure.
        let bytes = fs::read(&path).ok()?;
        let payload = String::from_utf8(bytes).ok().and_then(|text| {
            decode_checked(ENTRY_TAG, STORE_FORMAT_VERSION, &text).map(str::to_string)
        });
        if payload.is_none() {
            let _ = fs::remove_file(&path);
        }
        payload
    }

    /// Stores `payload` under `key` (atomic replace of any prior entry).
    pub fn put(&self, key: &EvalKey, payload: &str) -> io::Result<()> {
        let text = encode_checked(ENTRY_TAG, STORE_FORMAT_VERSION, payload);
        atomic_write(&self.entry_path(key), text.as_bytes())
    }

    /// Number of valid-looking entry files currently on disk.
    pub fn len(&self) -> usize {
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return 0;
        };
        rd.filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "entry"))
            .count()
    }

    /// Whether the store currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("dovado-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn key_is_stable_and_part_sensitive() {
        let a = EvalKey::from_parts(&["fifo", "DEPTH=8"]);
        let b = EvalKey::from_parts(&["fifo", "DEPTH=8"]);
        assert_eq!(a, b);
        assert_ne!(a, EvalKey::from_parts(&["fifo", "DEPTH=9"]));
        // Part boundaries matter: "ab"+"c" != "a"+"bc".
        assert_ne!(
            EvalKey::from_parts(&["ab", "c"]),
            EvalKey::from_parts(&["a", "bc"])
        );
        assert_eq!(a.hex().len(), 32);
        assert_ne!(a.extend(&["DATA_WIDTH=32"]), a);
    }

    #[test]
    fn roundtrip_hit() {
        let store = EvalStore::open(&tmpdir("roundtrip")).unwrap();
        let key = EvalKey::from_parts(&["design", "point"]);
        assert!(store.get(&key).is_none());
        store.put(&key, "objectives 1.0 2.0\n").unwrap();
        assert_eq!(store.get(&key).unwrap(), "objectives 1.0 2.0\n");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn truncation_is_a_miss() {
        let store = EvalStore::open(&tmpdir("trunc")).unwrap();
        let key = EvalKey::from_parts(&["x"]);
        store
            .put(&key, "a long payload that will be cut short")
            .unwrap();
        let path = store.entry_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 5]).unwrap();
        assert!(store.get(&key).is_none());
        // The corrupt file was removed, so a fresh put heals the slot.
        assert!(!path.exists());
        store.put(&key, "fresh").unwrap();
        assert_eq!(store.get(&key).unwrap(), "fresh");
    }

    #[test]
    fn bitflip_is_a_miss() {
        let store = EvalStore::open(&tmpdir("flip")).unwrap();
        let key = EvalKey::from_parts(&["y"]);
        store.put(&key, "value 3.25").unwrap();
        let path = store.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(&key).is_none());
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let store = EvalStore::open(&tmpdir("ver")).unwrap();
        let key = EvalKey::from_parts(&["z"]);
        let stale = encode_checked(ENTRY_TAG, STORE_FORMAT_VERSION + 1, "payload");
        fs::write(store.entry_path(&key), stale).unwrap();
        assert!(store.get(&key).is_none());
    }

    #[test]
    fn envelope_roundtrip_and_rejection() {
        let enc = encode_checked("tag", 3, "hello\nworld");
        assert_eq!(decode_checked("tag", 3, &enc), Some("hello\nworld"));
        assert_eq!(decode_checked("tag", 4, &enc), None);
        assert_eq!(decode_checked("gat", 3, &enc), None);
        assert_eq!(decode_checked("tag", 3, &enc.replace('o', "0")), None);
        assert_eq!(decode_checked("tag", 3, "garbage"), None);
    }
}
