//! Error type for the simulated EDA flow.

use std::fmt;

/// Anything that can go wrong while driving the simulated tool.
#[derive(Debug, Clone, PartialEq)]
pub enum EdaError {
    /// A TCL script failed to parse or execute.
    Tcl(String),
    /// A referenced file does not exist in the tool's virtual filesystem.
    FileNotFound(String),
    /// HDL source failed to parse.
    Parse(String),
    /// No module with the given name is loaded.
    UnknownModule(String),
    /// The requested part is not in the catalog.
    UnknownPart(String),
    /// A parameter binding failed (unknown name, non-integer value, …).
    Parameter(String),
    /// Elaboration failed (no architecture model could place the design).
    Elaboration(String),
    /// The design does not fit the device.
    ResourceOverflow(String),
    /// Flow-order violation (e.g. `route_design` before `place_design`).
    FlowOrder(String),
    /// Checkpoint missing or incompatible.
    Checkpoint(String),
    /// The tool process died mid-flow (environmental, not a property of
    /// the design).
    ToolCrash(String),
    /// The tool exceeded its time budget and was killed.
    Timeout(String),
    /// A remote worker died (or its transport broke) and the session
    /// could not be recovered by replay. Environmental, like a crash.
    WorkerLost(String),
}

impl EdaError {
    /// Whether a retry of the same run can plausibly succeed.
    ///
    /// Crashes, timeouts, lost workers, and checkpoint corruption are
    /// environmental: the same design point may evaluate cleanly on the
    /// next attempt. Everything else (parse errors, unknown parts,
    /// overflow, …) is a property of the inputs and will fail identically
    /// every time.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            EdaError::ToolCrash(_)
                | EdaError::Timeout(_)
                | EdaError::Checkpoint(_)
                | EdaError::WorkerLost(_)
        )
    }
}

impl fmt::Display for EdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdaError::Tcl(m) => write!(f, "TCL error: {m}"),
            EdaError::FileNotFound(p) => write!(f, "file not found: {p}"),
            EdaError::Parse(m) => write!(f, "HDL parse error: {m}"),
            EdaError::UnknownModule(m) => write!(f, "unknown module: {m}"),
            EdaError::UnknownPart(p) => write!(f, "unknown part: {p}"),
            EdaError::Parameter(m) => write!(f, "parameter error: {m}"),
            EdaError::Elaboration(m) => write!(f, "elaboration error: {m}"),
            EdaError::ResourceOverflow(m) => write!(f, "design does not fit device: {m}"),
            EdaError::FlowOrder(m) => write!(f, "flow order violation: {m}"),
            EdaError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            EdaError::ToolCrash(m) => write!(f, "tool crashed: {m}"),
            EdaError::Timeout(m) => write!(f, "tool timed out: {m}"),
            EdaError::WorkerLost(m) => write!(f, "worker lost: {m}"),
        }
    }
}

impl std::error::Error for EdaError {}

/// Convenience alias.
pub type EdaResult<T> = Result<T, EdaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(EdaError::Tcl("boom".into()).to_string(), "TCL error: boom");
        assert_eq!(
            EdaError::UnknownPart("xc9k".into()).to_string(),
            "unknown part: xc9k"
        );
    }
}
