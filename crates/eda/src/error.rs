//! Error type for the simulated EDA flow.

use std::fmt;

/// Anything that can go wrong while driving the simulated tool.
#[derive(Debug, Clone, PartialEq)]
pub enum EdaError {
    /// A TCL script failed to parse or execute.
    Tcl(String),
    /// A referenced file does not exist in the tool's virtual filesystem.
    FileNotFound(String),
    /// HDL source failed to parse.
    Parse(String),
    /// No module with the given name is loaded.
    UnknownModule(String),
    /// The requested part is not in the catalog.
    UnknownPart(String),
    /// A parameter binding failed (unknown name, non-integer value, …).
    Parameter(String),
    /// Elaboration failed (no architecture model could place the design).
    Elaboration(String),
    /// The design does not fit the device.
    ResourceOverflow(String),
    /// Flow-order violation (e.g. `route_design` before `place_design`).
    FlowOrder(String),
    /// Checkpoint missing or incompatible.
    Checkpoint(String),
}

impl fmt::Display for EdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdaError::Tcl(m) => write!(f, "TCL error: {m}"),
            EdaError::FileNotFound(p) => write!(f, "file not found: {p}"),
            EdaError::Parse(m) => write!(f, "HDL parse error: {m}"),
            EdaError::UnknownModule(m) => write!(f, "unknown module: {m}"),
            EdaError::UnknownPart(p) => write!(f, "unknown part: {p}"),
            EdaError::Parameter(m) => write!(f, "parameter error: {m}"),
            EdaError::Elaboration(m) => write!(f, "elaboration error: {m}"),
            EdaError::ResourceOverflow(m) => write!(f, "design does not fit device: {m}"),
            EdaError::FlowOrder(m) => write!(f, "flow order violation: {m}"),
            EdaError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
        }
    }
}

impl std::error::Error for EdaError {}

/// Convenience alias.
pub type EdaResult<T> = Result<T, EdaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(EdaError::Tcl("boom".into()).to_string(), "TCL error: boom");
        assert_eq!(
            EdaError::UnknownPart("xc9k".into()).to_string(),
            "unknown part: xc9k"
        );
    }
}
