//! Deterministic hashing for reproducible flow noise.
//!
//! The simulated tool derives per-run jitter (placement noise, small
//! utilization deltas) from a SplitMix64 hash of the design identity, so
//! that identical runs are bit-identical — a property the checkpoint cache
//! and the exploration tests rely on.

/// SplitMix64 step: maps any 64-bit state to a well-mixed 64-bit output.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice (cheap, stable across platforms).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a with a caller-chosen basis.
///
/// Running two streams with independent bases over the same bytes yields an
/// effectively 128-bit fingerprint — the evaluation store uses this to make
/// accidental key collisions implausible.
pub fn fnv1a_with(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hashes a string.
pub fn hash_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// Combines two hashes order-dependently.
pub fn combine(a: u64, b: u64) -> u64 {
    splitmix64(a ^ b.rotate_left(17))
}

/// A deterministic pseudo-random value in `[-1.0, 1.0]` derived from a seed.
pub fn unit_noise(seed: u64) -> f64 {
    let v = splitmix64(seed);
    // 53 random mantissa bits → [0, 1), then map to [-1, 1).
    let u = (v >> 11) as f64 / (1u64 << 53) as f64;
    2.0 * u - 1.0
}

/// A deterministic pseudo-random value in `[0.0, 1.0)`.
pub fn unit_uniform(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Single-bit input changes flip roughly half the output bits.
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16 && d < 48, "poor avalanche: {d}");
    }

    #[test]
    fn fnv_distinguishes_strings() {
        assert_ne!(hash_str("fifo DEPTH=8"), hash_str("fifo DEPTH=9"));
        assert_eq!(hash_str(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn combine_is_order_dependent() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn unit_noise_in_range() {
        for seed in 0..1000u64 {
            let n = unit_noise(seed);
            assert!((-1.0..=1.0).contains(&n), "noise {n} out of range");
        }
    }

    #[test]
    fn unit_noise_roughly_centred() {
        let mean: f64 = (0..10_000u64).map(unit_noise).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
    }

    #[test]
    fn unit_uniform_in_range() {
        for seed in 0..1000u64 {
            let u = unit_uniform(seed);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
