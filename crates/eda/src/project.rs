//! In-memory project state: sources, top module, constraints, generics —
//! plus hierarchical elaboration.
//!
//! Elaboration resolves the top module down through recorded
//! instantiations: Dovado's generated box (an empty wrapper with a single
//! `BOXED` instance carrying the generic map) elaborates to glue-plus-child,
//! exactly how the real tool sees it.

use crate::archmodel::{bind_parameters, ElabContext, ModelRegistry};
use crate::error::{EdaError, EdaResult};
use crate::netlist::Netlist;
use dovado_fpga::Part;
use dovado_hdl::catalog::{CatalogError, SourceCatalog};
use dovado_hdl::{Instantiation, Language, ModuleInterface, SourceFile};
use std::collections::BTreeMap;

/// A clock constraint created by `create_clock`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockConstraint {
    /// The constrained port name.
    pub port: String,
    /// Target period in nanoseconds.
    pub period_ns: f64,
}

/// One parsed source file registered with the project.
#[derive(Debug, Clone)]
pub struct SourceUnit {
    /// Path inside the tool's virtual filesystem.
    pub path: String,
    /// Language it was read as.
    pub language: Language,
    /// Parse result.
    pub file: SourceFile,
    /// VHDL library the file was compiled into (`work` by default; the
    /// paper's naming constraint maps one subfolder per library).
    pub library: String,
}

/// Project state for one tool session.
#[derive(Debug, Clone)]
pub struct Project {
    /// Project name.
    pub name: String,
    /// Target part.
    pub part: Part,
    /// Registered sources in read order (SV packages must be read first —
    /// the paper's parsing-order specification; enforced in
    /// [`Project::check_ordering`]).
    pub sources: Vec<SourceUnit>,
    /// Explicit top module, if set.
    pub top: Option<String>,
    /// Generic/parameter overrides applied to the top module.
    pub generics: BTreeMap<String, i64>,
    /// Clock constraints.
    pub clocks: Vec<ClockConstraint>,
}

impl Project {
    /// Creates an empty project targeting `part`.
    pub fn new(name: impl Into<String>, part: Part) -> Project {
        Project {
            name: name.into(),
            part,
            sources: Vec::new(),
            top: None,
            generics: BTreeMap::new(),
            clocks: Vec::new(),
        }
    }

    /// Builds a project from a cataloged source tree: sources are
    /// registered in the catalog's topological compile order (packages
    /// before their bodies and users, entities before architectures and
    /// instantiators), and the top module comes from `top` or, failing
    /// that, the catalog's graph-based inference.
    ///
    /// This replaces ad-hoc `add_source` call ordering: the caller hands
    /// over the whole tree and the dependency graph decides.
    pub fn from_catalog(
        name: impl Into<String>,
        part: Part,
        catalog: &SourceCatalog,
        top: Option<&str>,
    ) -> EdaResult<Project> {
        let mut p = Project::new(name, part);
        for f in catalog.compile_order() {
            p.sources.push(SourceUnit {
                path: f.path.clone(),
                language: f.language,
                file: f.file.clone(),
                library: f.library.clone().unwrap_or_else(|| "work".to_string()),
            });
        }
        p.top = Some(match top {
            Some(t) => t.to_string(),
            None => catalog.infer_top().map_err(catalog_err)?,
        });
        Ok(p)
    }

    /// The project's sources as a unit-level dependency catalog
    /// (structure only — no source text, so no content fingerprint).
    /// This is the graph behind [`Project::infer_top`] and compile-order
    /// queries.
    pub fn catalog(&self) -> EdaResult<SourceCatalog> {
        SourceCatalog::from_parsed(
            self.sources
                .iter()
                .map(|s| {
                    (
                        s.path.clone(),
                        s.language,
                        Some(s.library.clone()),
                        s.file.clone(),
                    )
                })
                .collect(),
        )
        .map_err(catalog_err)
    }

    /// Parses and registers a source buffer.
    pub fn add_source(
        &mut self,
        path: &str,
        language: Language,
        text: &str,
        library: Option<&str>,
    ) -> EdaResult<()> {
        let (file, diags) = dovado_hdl::parse_source(language, text)
            .map_err(|e| EdaError::Parse(format!("{path}: {e}")))?;
        if diags.has_errors() {
            let first = diags
                .iter()
                .find(|d| d.severity == dovado_hdl::Severity::Error)
                .map(|d| d.message.clone())
                .unwrap_or_default();
            return Err(EdaError::Parse(format!("{path}: {first}")));
        }
        self.sources.push(SourceUnit {
            path: path.to_string(),
            language,
            file,
            library: library.unwrap_or("work").to_string(),
        });
        Ok(())
    }

    /// All module interfaces across sources.
    pub fn modules(&self) -> impl Iterator<Item = &ModuleInterface> {
        self.sources.iter().flat_map(|s| s.file.modules.iter())
    }

    /// Finds a module by case-insensitive name.
    pub fn find_module(&self, name: &str) -> Option<&ModuleInterface> {
        self.modules().find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Maps a VHDL architecture name to its entity.
    fn arch_entity(&self, arch: &str) -> Option<&str> {
        self.sources
            .iter()
            .flat_map(|s| s.file.architectures.iter())
            .find(|(a, _)| a.eq_ignore_ascii_case(arch))
            .map(|(_, e)| e.as_str())
    }

    /// Instantiations whose parent is the given module (directly for
    /// Verilog; via its architectures for VHDL).
    pub fn children_of(&self, module: &str) -> Vec<&Instantiation> {
        self.sources
            .iter()
            .flat_map(|s| s.file.instantiations.iter())
            .filter(|i| {
                i.parent.eq_ignore_ascii_case(module)
                    || self
                        .arch_entity(&i.parent)
                        .is_some_and(|e| e.eq_ignore_ascii_case(module))
            })
            .collect()
    }

    /// Infers the top module by dependency-graph query: the unique
    /// module/entity no instantiation or configuration refers to. With
    /// zero or several roots the error is deterministic — ambiguity lists
    /// every candidate sorted by name, so the same project always
    /// produces the same message regardless of source registration order.
    pub fn infer_top(&self) -> EdaResult<String> {
        self.catalog()?.infer_top().map_err(catalog_err)
    }

    /// The effective top module name.
    pub fn top_name(&self) -> EdaResult<String> {
        match &self.top {
            Some(t) => Ok(t.clone()),
            None => self.infer_top(),
        }
    }

    /// Checks the paper's parsing-order rule: SystemVerilog packages are
    /// read "at the very beginning of the step". Returns the offending
    /// paths when a package appears after a module-bearing file.
    pub fn check_ordering(&self) -> Vec<String> {
        let mut seen_module = false;
        let mut offenders = Vec::new();
        for s in &self.sources {
            if !s.file.packages.is_empty()
                && s.language != Language::Vhdl
                && seen_module
                && s.file.modules.is_empty()
            {
                offenders.push(s.path.clone());
            }
            if !s.file.modules.is_empty() {
                seen_module = true;
            }
        }
        offenders
    }

    /// Elaborates the top module (with the project generics) into a
    /// [`Netlist`], recursing through recorded instantiations.
    pub fn elaborate(&self, registry: &ModelRegistry) -> EdaResult<Netlist> {
        let top = self.top_name()?;
        self.elaborate_module(registry, &top, &self.generics, 0)
    }

    fn elaborate_module(
        &self,
        registry: &ModelRegistry,
        name: &str,
        overrides: &BTreeMap<String, i64>,
        depth: u32,
    ) -> EdaResult<Netlist> {
        if depth > 16 {
            return Err(EdaError::Elaboration(format!(
                "hierarchy too deep (cycle?) at `{name}`"
            )));
        }
        let module = self
            .find_module(name)
            .ok_or_else(|| EdaError::UnknownModule(name.to_string()))?;
        let params = bind_parameters(module, overrides)?;
        let ctx = ElabContext {
            module,
            params: &params,
            part: &self.part,
        };

        let children = self.children_of(&module.name);
        let model_is_generic = registry.model_for(&module.name).name() == "generic-interface";

        if model_is_generic && !children.is_empty() {
            // Structural wrapper (e.g. the Dovado box): negligible own
            // logic; absorb every child with its evaluated generic map.
            let mut nl = Netlist::empty(&module.name);
            nl.design_hash = ctx.design_hash();
            for child in &children {
                let mut child_overrides = BTreeMap::new();
                for (gname, gexpr) in &child.generics {
                    let v = gexpr.eval(&params).map_err(|e| {
                        EdaError::Parameter(format!(
                            "generic `{gname}` of instance `{}`: {e}",
                            child.label
                        ))
                    })?;
                    child_overrides.insert(gname.clone(), v);
                }
                let child_nl = self.elaborate_module(
                    registry,
                    child.target_simple(),
                    &child_overrides,
                    depth + 1,
                )?;
                nl.absorb(&child_nl);
            }
            Ok(nl)
        } else {
            registry.elaborate(&ctx)
        }
    }
}

/// Maps a catalog error onto the EDA error space: parse problems stay
/// parse errors; graph problems (cycles, top inference) are elaboration
/// errors with the catalog's deterministic message.
fn catalog_err(e: CatalogError) -> EdaError {
    match e {
        CatalogError::Parse(m) => EdaError::Parse(m),
        other => EdaError::Elaboration(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dovado_fpga::Catalog;

    fn k7() -> Part {
        Catalog::builtin().resolve("xc7k70t").unwrap().clone()
    }

    const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

    const BOX_SV: &str = r#"
module box(input wire clk);
  (* DONT_TOUCH = "TRUE" *)
  fifo_v3 #(
      .DEPTH(64),
      .DATA_WIDTH(32)
  ) BOXED (
      .clk_i(clk)
  );
endmodule"#;

    #[test]
    fn add_and_find_sources() {
        let mut p = Project::new("t", k7());
        p.add_source("fifo.sv", Language::SystemVerilog, FIFO_SV, None)
            .unwrap();
        assert!(p.find_module("FIFO_V3").is_some());
        assert!(p.find_module("nope").is_none());
    }

    #[test]
    fn parse_failure_surfaces() {
        let mut p = Project::new("t", k7());
        assert!(p
            .add_source(
                "bad.sv",
                Language::SystemVerilog,
                "module m(input wire c);",
                None
            )
            .is_err());
    }

    #[test]
    fn infer_top_picks_uninstantiated() {
        let mut p = Project::new("t", k7());
        p.add_source("fifo.sv", Language::SystemVerilog, FIFO_SV, None)
            .unwrap();
        p.add_source("box.sv", Language::SystemVerilog, BOX_SV, None)
            .unwrap();
        assert_eq!(p.infer_top().unwrap(), "box");
    }

    #[test]
    fn infer_top_ambiguous_errors_deterministically() {
        // Register in reverse-alphabetical order: the error must still
        // list candidates sorted by name.
        let mut p = Project::new("t", k7());
        p.add_source(
            "b.sv",
            Language::SystemVerilog,
            "module zeta(input wire c); endmodule",
            None,
        )
        .unwrap();
        p.add_source(
            "a.sv",
            Language::SystemVerilog,
            "module alpha(input wire c); endmodule",
            None,
        )
        .unwrap();
        let msg = p.infer_top().unwrap_err().to_string();
        assert!(msg.contains("ambiguous top module"), "{msg}");
        assert!(msg.contains("alpha, zeta"), "{msg}");
        assert!(msg.contains("--top"), "{msg}");
    }

    #[test]
    fn from_catalog_orders_sources_and_infers_top() {
        use dovado_hdl::catalog::CatalogSource;
        // Hand the catalog the files in the *wrong* order; the project
        // must come out compile-ordered with the graph-inferred top.
        let cat = SourceCatalog::from_sources(vec![
            CatalogSource::new("box.sv", Language::SystemVerilog, BOX_SV),
            CatalogSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV),
        ])
        .unwrap();
        let p = Project::from_catalog("t", k7(), &cat, None).unwrap();
        let paths: Vec<&str> = p.sources.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["fifo.sv", "box.sv"]);
        assert_eq!(p.top.as_deref(), Some("box"));
        assert!(p.check_ordering().is_empty());

        // An explicit top overrides inference.
        let p2 = Project::from_catalog("t", k7(), &cat, Some("fifo_v3")).unwrap();
        assert_eq!(p2.top.as_deref(), Some("fifo_v3"));

        // And the catalog-built project elaborates like the add_source one.
        let reg = ModelRegistry::with_builtin_models();
        let via_catalog = p.elaborate(&reg).unwrap();
        let mut legacy = Project::new("t", k7());
        legacy
            .add_source("fifo.sv", Language::SystemVerilog, FIFO_SV, None)
            .unwrap();
        legacy
            .add_source("box.sv", Language::SystemVerilog, BOX_SV, None)
            .unwrap();
        legacy.top = Some("box".into());
        let via_legacy = legacy.elaborate(&reg).unwrap();
        assert_eq!(via_catalog.luts(), via_legacy.luts());
        assert_eq!(via_catalog.registers(), via_legacy.registers());
    }

    #[test]
    fn project_catalog_exposes_graph_queries() {
        let mut p = Project::new("t", k7());
        p.add_source("fifo.sv", Language::SystemVerilog, FIFO_SV, None)
            .unwrap();
        p.add_source("box.sv", Language::SystemVerilog, BOX_SV, None)
            .unwrap();
        let cat = p.catalog().unwrap();
        assert_eq!(cat.dependencies_of("box.sv"), vec!["fifo.sv"]);
        assert_eq!(cat.infer_top().unwrap(), "box");
    }

    #[test]
    fn elaborate_through_box_applies_generic_map() {
        let reg = ModelRegistry::with_builtin_models();
        let mut p = Project::new("t", k7());
        p.add_source("fifo.sv", Language::SystemVerilog, FIFO_SV, None)
            .unwrap();
        p.add_source("box.sv", Language::SystemVerilog, BOX_SV, None)
            .unwrap();
        p.top = Some("box".into());
        let boxed = p.elaborate(&reg).unwrap();

        // Compare with direct elaboration at DEPTH=64.
        let mut p2 = Project::new("t2", k7());
        p2.add_source("fifo.sv", Language::SystemVerilog, FIFO_SV, None)
            .unwrap();
        p2.top = Some("fifo_v3".into());
        p2.generics.insert("DEPTH".into(), 64);
        let direct = p2.elaborate(&reg).unwrap();

        assert_eq!(boxed.luts(), direct.luts());
        assert_eq!(boxed.registers(), direct.registers());
        assert_eq!(boxed.logic_levels, direct.logic_levels);
    }

    #[test]
    fn elaborate_vhdl_box() {
        let reg = ModelRegistry::with_builtin_models();
        let mut p = Project::new("t", k7());
        p.add_source(
            "neorv32.vhd",
            Language::Vhdl,
            r#"
entity neorv32_top is
  generic (
    MEM_INT_IMEM_SIZE : natural := 16384;
    MEM_INT_DMEM_SIZE : natural := 8192
  );
  port ( clk_i : in std_logic );
end entity neorv32_top;
"#,
            None,
        )
        .unwrap();
        p.add_source(
            "box.vhd",
            Language::Vhdl,
            r#"
library ieee;
use ieee.std_logic_1164.all;
entity box is
  port ( clk : in std_logic );
end entity box;
architecture box_arch of box is
begin
  BOXED: entity work.neorv32_top
    generic map (
      MEM_INT_IMEM_SIZE => 32768,
      MEM_INT_DMEM_SIZE => 32768
    )
    port map ( clk_i => clk );
end architecture box_arch;
"#,
            None,
        )
        .unwrap();
        p.top = Some("box".into());
        let nl = p.elaborate(&reg).unwrap();
        // 32 KiB imem + 32 KiB dmem → 8 + 8 BRAM.
        assert_eq!(nl.brams(), 16);
    }

    #[test]
    fn top_generics_override_defaults() {
        let reg = ModelRegistry::with_builtin_models();
        let mut p = Project::new("t", k7());
        p.add_source("fifo.sv", Language::SystemVerilog, FIFO_SV, None)
            .unwrap();
        p.top = Some("fifo_v3".into());
        let base = p.elaborate(&reg).unwrap();
        p.generics.insert("DEPTH".into(), 512);
        let big = p.elaborate(&reg).unwrap();
        assert!(big.registers() > base.registers());
    }

    #[test]
    fn unknown_child_module_errors() {
        let reg = ModelRegistry::with_builtin_models();
        let mut p = Project::new("t", k7());
        p.add_source(
            "box.sv",
            Language::SystemVerilog,
            "module box(input wire clk); ghost u (.c(clk)); endmodule",
            None,
        )
        .unwrap();
        p.top = Some("box".into());
        assert!(matches!(p.elaborate(&reg), Err(EdaError::UnknownModule(_))));
    }

    #[test]
    fn package_ordering_check() {
        let mut p = Project::new("t", k7());
        p.add_source(
            "m.sv",
            Language::SystemVerilog,
            "module m(input wire c); endmodule",
            None,
        )
        .unwrap();
        p.add_source(
            "pkg.sv",
            Language::SystemVerilog,
            "package late_pkg; endpackage",
            None,
        )
        .unwrap();
        assert_eq!(p.check_ordering(), vec!["pkg.sv".to_string()]);

        let mut good = Project::new("t", k7());
        good.add_source(
            "pkg.sv",
            Language::SystemVerilog,
            "package early_pkg; endpackage",
            None,
        )
        .unwrap();
        good.add_source(
            "m.sv",
            Language::SystemVerilog,
            "module m(input wire c); endmodule",
            None,
        )
        .unwrap();
        assert!(good.check_ordering().is_empty());
    }
}
