//! Distributed evaluation: the coordinator side of a worker fleet.
//!
//! [`RemoteBackend`] puts a fleet of stateless worker processes behind the
//! ordinary [`ToolBackend`] seam: every [`ToolSession`] it mints leases one
//! worker from a shared pool, forwards the session's file writes and TCL
//! scripts over a length-prefixed, versioned frame protocol ([`Frame`]),
//! and mirrors the worker's filesystem back so report scraping stays
//! coordinator-side. The pool is the work-stealing queue — an idle worker
//! is leased by whichever evaluation asks next, so one straggling
//! place-and-route run never blocks the rest of a batch.
//!
//! Determinism is preserved end to end:
//! - workers run *clean* backends (the fault stream and the persistent
//!   store live on the coordinator), so a worker's answers are a pure
//!   function of the write/eval sequence it received;
//! - a dead worker is recovered by replaying the session's operation log
//!   onto a fresh worker — a deterministic worker replays to bitwise the
//!   same answers, so a single death is invisible in the canonical trace;
//! - when the replay budget is exhausted the session reports
//!   [`EdaError::WorkerLost`] — a *transient* fault, so the retry layer
//!   above re-queues the point and the death penalty is charged to the
//!   time ledger like any other crash.
//!
//! The transport is pluggable via [`WorkerLink`]: [`ProcessWorker`] speaks
//! the protocol over a child process's stdio (the `dovado worker`
//! subcommand), and tests drive the same coordinator logic over in-memory
//! pipes. Worker lifecycle (spawn, steal, death, requeue) is surfaced
//! through [`RemoteBackend::set_lifecycle_hook`] so the observability
//! spine can record it without touching the canonical event stream.

use crate::backend::{ToolBackend, ToolSession};
use crate::error::{EdaError, EdaResult};
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Version stamped into the [`Frame::Hello`] handshake; a coordinator
/// refuses workers that answer with any other version.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a single frame's payload (a corrupt length prefix must not
/// make the coordinator try to allocate gigabytes).
const MAX_FRAME_LEN: u32 = 64 << 20;

/// Simulated seconds charged for a worker death when the fleet has no
/// fault plan of its own (mirrors [`FaultPlan`]'s default `crash_cost_s`).
const DEFAULT_DEATH_PENALTY_S: f64 = 30.0;

/// How many worker deaths one session absorbs transparently (by replaying
/// its operation log onto a fresh worker) before giving up with
/// [`EdaError::WorkerLost`].
const REPLAY_BUDGET: u32 = 2;

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

/// One message of the coordinator↔worker protocol.
///
/// On the wire every frame is a little-endian `u32` payload length
/// followed by the payload: a one-byte tag and the frame's fields
/// (integers little-endian, floats as IEEE-754 bits, strings as `u32`
/// length + UTF-8 bytes).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Version handshake; each side announces its protocol version.
    Hello {
        /// The sender's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Coordinator → worker: build a fresh backend from `spec` and open
    /// one session on it.
    OpenSession {
        /// Backend spec, e.g. `mock:7` (see the worker-side parser).
        spec: String,
    },
    /// Worker → coordinator: the session is ready.
    SessionOpened,
    /// Coordinator → worker: write a file into the session's filesystem.
    WriteFile {
        /// Path within the session's virtual filesystem.
        path: String,
        /// File contents.
        content: String,
    },
    /// Worker → coordinator: generic success acknowledgement.
    Ack,
    /// Coordinator → worker: run a TCL script in the open session.
    Eval {
        /// The script text.
        script: String,
    },
    /// Worker → coordinator: the result of one [`Frame::Eval`].
    EvalDone {
        /// The script's result text, or the flow error it raised.
        outcome: EdaResult<String>,
        /// Total simulated tool seconds the session has burned so far.
        elapsed_s: f64,
        /// Whether the session satisfied a stage from an exact checkpoint.
        used_exact_checkpoint: bool,
        /// Snapshot of the session's filesystem (sources and reports), so
        /// the coordinator can scrape reports locally.
        files: Vec<(String, String)>,
    },
    /// Coordinator → worker: drop the open session (the worker stays
    /// alive for the next lease).
    CloseSession,
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Worker → coordinator: the request was invalid in the worker's
    /// current state (protocol misuse, unknown spec).
    Refused {
        /// Human-readable reason.
        message: String,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Stable wire code for each [`EdaError`] variant.
fn error_code(e: &EdaError) -> u8 {
    match e {
        EdaError::Tcl(_) => 0,
        EdaError::FileNotFound(_) => 1,
        EdaError::Parse(_) => 2,
        EdaError::UnknownModule(_) => 3,
        EdaError::UnknownPart(_) => 4,
        EdaError::Parameter(_) => 5,
        EdaError::Elaboration(_) => 6,
        EdaError::ResourceOverflow(_) => 7,
        EdaError::FlowOrder(_) => 8,
        EdaError::Checkpoint(_) => 9,
        EdaError::ToolCrash(_) => 10,
        EdaError::Timeout(_) => 11,
        EdaError::WorkerLost(_) => 12,
    }
}

fn error_from_code(code: u8, msg: String) -> Option<EdaError> {
    Some(match code {
        0 => EdaError::Tcl(msg),
        1 => EdaError::FileNotFound(msg),
        2 => EdaError::Parse(msg),
        3 => EdaError::UnknownModule(msg),
        4 => EdaError::UnknownPart(msg),
        5 => EdaError::Parameter(msg),
        6 => EdaError::Elaboration(msg),
        7 => EdaError::ResourceOverflow(msg),
        8 => EdaError::FlowOrder(msg),
        9 => EdaError::Checkpoint(msg),
        10 => EdaError::ToolCrash(msg),
        11 => EdaError::Timeout(msg),
        12 => EdaError::WorkerLost(msg),
        _ => return None,
    })
}

fn error_message(e: &EdaError) -> &str {
    match e {
        EdaError::Tcl(m)
        | EdaError::FileNotFound(m)
        | EdaError::Parse(m)
        | EdaError::UnknownModule(m)
        | EdaError::UnknownPart(m)
        | EdaError::Parameter(m)
        | EdaError::Elaboration(m)
        | EdaError::ResourceOverflow(m)
        | EdaError::FlowOrder(m)
        | EdaError::Checkpoint(m)
        | EdaError::ToolCrash(m)
        | EdaError::Timeout(m)
        | EdaError::WorkerLost(m) => m,
    }
}

impl Frame {
    /// Serializes the frame payload (tag + fields, no length prefix).
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Frame::Hello { version } => {
                buf.push(0);
                put_u32(&mut buf, *version);
            }
            Frame::OpenSession { spec } => {
                buf.push(1);
                put_str(&mut buf, spec);
            }
            Frame::SessionOpened => buf.push(2),
            Frame::WriteFile { path, content } => {
                buf.push(3);
                put_str(&mut buf, path);
                put_str(&mut buf, content);
            }
            Frame::Ack => buf.push(4),
            Frame::Eval { script } => {
                buf.push(5);
                put_str(&mut buf, script);
            }
            Frame::EvalDone {
                outcome,
                elapsed_s,
                used_exact_checkpoint,
                files,
            } => {
                buf.push(6);
                match outcome {
                    Ok(text) => {
                        buf.push(1);
                        put_str(&mut buf, text);
                    }
                    Err(e) => {
                        buf.push(0);
                        buf.push(error_code(e));
                        put_str(&mut buf, error_message(e));
                    }
                }
                put_f64(&mut buf, *elapsed_s);
                buf.push(u8::from(*used_exact_checkpoint));
                put_u32(&mut buf, files.len() as u32);
                for (path, content) in files {
                    put_str(&mut buf, path);
                    put_str(&mut buf, content);
                }
            }
            Frame::CloseSession => buf.push(7),
            Frame::Shutdown => buf.push(8),
            Frame::Refused { message } => {
                buf.push(9);
                put_str(&mut buf, message);
            }
        }
        buf
    }

    /// Parses a frame payload (tag + fields, no length prefix).
    fn decode(payload: &[u8]) -> Option<Frame> {
        let mut d = Decoder { buf: payload };
        let tag = d.u8()?;
        let frame = match tag {
            0 => Frame::Hello { version: d.u32()? },
            1 => Frame::OpenSession { spec: d.str()? },
            2 => Frame::SessionOpened,
            3 => Frame::WriteFile {
                path: d.str()?,
                content: d.str()?,
            },
            4 => Frame::Ack,
            5 => Frame::Eval { script: d.str()? },
            6 => {
                let outcome = if d.u8()? == 1 {
                    Ok(d.str()?)
                } else {
                    let code = d.u8()?;
                    Err(error_from_code(code, d.str()?)?)
                };
                let elapsed_s = f64::from_bits(d.u64()?);
                let used_exact_checkpoint = d.u8()? == 1;
                let n = d.u32()?;
                let mut files = Vec::new();
                for _ in 0..n {
                    files.push((d.str()?, d.str()?));
                }
                Frame::EvalDone {
                    outcome,
                    elapsed_s,
                    used_exact_checkpoint,
                    files,
                }
            }
            7 => Frame::CloseSession,
            8 => Frame::Shutdown,
            9 => Frame::Refused { message: d.str()? },
            _ => return None,
        };
        d.buf.is_empty().then_some(frame)
    }
}

/// Cursor over a frame payload; every accessor returns `None` on
/// truncation instead of panicking.
struct Decoder<'a> {
    buf: &'a [u8],
}

impl Decoder<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// Writes one length-prefixed frame to `w` and flushes.
pub fn write_frame(w: &mut dyn Write, frame: &Frame) -> io::Result<()> {
    let payload = frame.encode();
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one length-prefixed frame from `r`.
///
/// A clean EOF before the length prefix surfaces as
/// [`io::ErrorKind::UnexpectedEof`]; a malformed payload as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut dyn Read) -> io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Frame::decode(&payload)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed frame payload"))
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// One bidirectional channel to a worker, whatever the transport.
///
/// [`ProcessWorker`] implements it over child-process stdio; tests
/// implement it over in-memory pipes. `kill` severs the link abruptly,
/// standing in for (or actually causing) a worker death.
pub trait WorkerLink: Send {
    /// Sends one frame to the worker.
    fn send(&mut self, frame: &Frame) -> io::Result<()>;

    /// Receives the worker's next frame.
    fn recv(&mut self) -> io::Result<Frame>;

    /// Forcibly severs the link; subsequent `send`/`recv` calls fail.
    fn kill(&mut self);
}

/// Builds fresh [`WorkerLink`]s on demand (initial fleet and respawns
/// after deaths).
pub type LinkFactory = dyn Fn() -> io::Result<Box<dyn WorkerLink + Send>> + Send + Sync;

/// A worker child process speaking the frame protocol over its stdio.
///
/// stderr is inherited so worker-side panics stay visible.
pub struct ProcessWorker {
    child: Child,
    stdin: ChildStdin,
    stdout: ChildStdout,
}

impl ProcessWorker {
    /// Spawns `command[0]` with arguments `command[1..]`, piping stdio.
    pub fn spawn(command: &[String]) -> io::Result<ProcessWorker> {
        let (program, args) = command.split_first().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "empty worker command line")
        })?;
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        Ok(ProcessWorker {
            child,
            stdin,
            stdout,
        })
    }
}

impl WorkerLink for ProcessWorker {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.stdin, frame)
    }

    fn recv(&mut self) -> io::Result<Frame> {
        read_frame(&mut self.stdout)
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        // Best-effort graceful exit, then make sure the child is reaped.
        let _ = write_frame(&mut self.stdin, &Frame::Shutdown);
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Worker lifecycle transitions reported through
/// [`RemoteBackend::set_lifecycle_hook`].
///
/// These are scheduling facts, not evaluation facts: the canonical trace
/// (attempts, store hits, time charged) is identical across serial,
/// rayon, and distributed schedules, so lifecycle is surfaced on a side
/// channel instead of the canonical event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerLifecycle {
    /// A worker joined the fleet (initial spawn or post-death respawn).
    Spawned {
        /// Fleet-unique worker id.
        worker: u64,
    },
    /// An idle worker was leased for the next pending evaluation.
    Stole {
        /// Fleet-unique worker id.
        worker: u64,
    },
    /// A worker died or hung (transport failure); its link is discarded.
    Died {
        /// Fleet-unique worker id.
        worker: u64,
        /// Transport-level detail (broken pipe, EOF, …).
        detail: String,
    },
    /// A dead worker's in-flight session was re-queued: its operation log
    /// replays onto a fresh worker (or, past the replay budget, the point
    /// re-enters the retry layer as a transient fault).
    Requeued {
        /// The dead worker whose work moved.
        worker: u64,
    },
}

/// Observer invoked on every [`WorkerLifecycle`] transition.
pub type LifecycleHook = Arc<dyn Fn(&WorkerLifecycle) + Send + Sync>;

struct Worker {
    id: u64,
    link: Box<dyn WorkerLink + Send>,
}

struct Fleet {
    backend_name: String,
    spec: String,
    factory: Box<LinkFactory>,
    idle: Mutex<Vec<Worker>>,
    available: Condvar,
    next_id: AtomicU64,
    evals_dispatched: AtomicU64,
    kill_before_eval: Mutex<BTreeSet<u64>>,
    hook: Mutex<Option<LifecycleHook>>,
    injector: Option<FaultInjector>,
}

impl Fleet {
    fn emit(&self, event: WorkerLifecycle) {
        let hook = self.hook.lock().unwrap().clone();
        if let Some(hook) = hook {
            hook(&event);
        }
    }

    /// Spawns and handshakes one fresh worker.
    fn spawn_worker(&self) -> io::Result<Worker> {
        let mut link = (self.factory)()?;
        link.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match link.recv()? {
            Frame::Hello { version } if version == PROTOCOL_VERSION => {}
            Frame::Hello { version } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker speaks protocol v{version}, coordinator v{PROTOCOL_VERSION}"),
                ));
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("handshake expected Hello, got {other:?}"),
                ));
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.emit(WorkerLifecycle::Spawned { worker: id });
        Ok(Worker { id, link })
    }

    /// Leases an idle worker; this pull is the work-stealing step. Falls
    /// back to spawning a replacement if the pool stays empty (all
    /// respawns failed) so a shrunken fleet degrades instead of hanging.
    fn lease(&self) -> Option<Worker> {
        let mut idle = self.idle.lock().unwrap();
        loop {
            if let Some(worker) = idle.pop() {
                self.emit(WorkerLifecycle::Stole { worker: worker.id });
                return Some(worker);
            }
            let (guard, timeout) = self
                .available
                .wait_timeout(idle, Duration::from_secs(5))
                .unwrap();
            idle = guard;
            if timeout.timed_out() && idle.is_empty() {
                drop(idle);
                let worker = self.spawn_worker().ok()?;
                self.emit(WorkerLifecycle::Stole { worker: worker.id });
                return Some(worker);
            }
        }
    }

    fn release(&self, worker: Worker) {
        self.idle.lock().unwrap().push(worker);
        self.available.notify_one();
    }

    fn death_penalty_s(&self) -> f64 {
        self.injector
            .as_ref()
            .map_or(DEFAULT_DEATH_PENALTY_S, |inj| inj.plan().crash_cost_s)
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Ask idle workers to exit before their links drop (process
        // transports also hard-kill in their own Drop).
        for worker in self.idle.lock().unwrap().iter_mut() {
            let _ = worker.link.send(&Frame::Shutdown);
        }
    }
}

/// A [`ToolBackend`] that dispatches sessions to a fleet of stateless
/// workers over the frame protocol.
///
/// `name()` reports the *inner* backend's name (`mock`, `vivado-sim`):
/// the fleet is a transport, not a different tool — its answers are
/// bitwise those of the inner backend, so it shares the inner backend's
/// store identity and journal fingerprints.
pub struct RemoteBackend {
    fleet: Arc<Fleet>,
}

impl RemoteBackend {
    /// Builds a fleet of `workers` links from `factory` (spawned eagerly,
    /// so configuration errors surface before any evaluation starts).
    ///
    /// `backend_name` must be the inner backend's `name()`; `spec` is the
    /// opaque session spec forwarded to workers in [`Frame::OpenSession`].
    pub fn new(
        backend_name: &str,
        spec: &str,
        workers: usize,
        factory: Box<LinkFactory>,
    ) -> io::Result<RemoteBackend> {
        let fleet = Arc::new(Fleet {
            backend_name: backend_name.to_string(),
            spec: spec.to_string(),
            factory,
            idle: Mutex::new(Vec::new()),
            available: Condvar::new(),
            next_id: AtomicU64::new(1),
            evals_dispatched: AtomicU64::new(0),
            kill_before_eval: Mutex::new(BTreeSet::new()),
            hook: Mutex::new(None),
            injector: None,
        });
        for _ in 0..workers.max(1) {
            let worker = fleet.spawn_worker()?;
            fleet.release(worker);
        }
        Ok(RemoteBackend { fleet })
    }

    /// Attaches a coordinator-side fault stream. Worker processes stay
    /// clean — the only plan field the fleet itself draws on is
    /// `worker_death` (plus `crash_cost_s` as the death penalty); the
    /// rest is exposed to the exploration loop via
    /// [`ToolBackend::injector`] exactly as the in-process backends do.
    pub fn with_fault_plan(self, plan: FaultPlan) -> RemoteBackend {
        let mut fleet = Arc::into_inner(self.fleet).expect("fleet not yet shared");
        fleet.injector = plan.is_active().then(|| FaultInjector::new(plan));
        RemoteBackend {
            fleet: Arc::new(fleet),
        }
    }

    /// Registers `hook` to observe every worker lifecycle transition.
    /// The fleet spawns eagerly, so spawn events for workers already
    /// alive are replayed into the hook on attachment — an observer
    /// always sees one `Spawned` per live worker.
    pub fn set_lifecycle_hook(&self, hook: LifecycleHook) {
        for id in 1..self.fleet.next_id.load(Ordering::Relaxed) {
            hook(&WorkerLifecycle::Spawned { worker: id });
        }
        *self.fleet.hook.lock().unwrap() = Some(hook);
    }

    /// Test/fault knob: sever the serving worker's link right before the
    /// `n`-th dispatched eval (1-based, counted across the whole fleet).
    /// The death is then recovered through the ordinary replay path.
    pub fn kill_worker_before_eval(&self, n: u64) {
        self.fleet.kill_before_eval.lock().unwrap().insert(n);
    }

    /// Number of workers currently idle (test introspection).
    pub fn idle_workers(&self) -> usize {
        self.fleet.idle.lock().unwrap().len()
    }
}

impl ToolBackend for RemoteBackend {
    fn name(&self) -> &str {
        &self.fleet.backend_name
    }

    fn open_session(&self) -> Box<dyn ToolSession + Send> {
        let mut session = RemoteSession {
            fleet: Arc::clone(&self.fleet),
            worker: None,
            log: Vec::new(),
            mirror: BTreeMap::new(),
            remote_elapsed_s: 0.0,
            penalty_s: 0.0,
            used_exact: false,
            deaths: 0,
            poisoned: None,
        };
        session.worker = self.fleet.lease();
        if session.worker.is_none() {
            session.poison("no worker could be leased or spawned");
        } else if let Err(detail) = session.exchange_expect(
            &Frame::OpenSession {
                spec: self.fleet.spec.clone(),
            },
            |f| matches!(f, Frame::SessionOpened),
        ) {
            session.poison(&detail);
        }
        Box::new(session)
    }

    fn injector(&self) -> Option<&FaultInjector> {
        self.fleet.injector.as_ref()
    }
}

/// The session's replayable operation log.
enum Op {
    Write { path: String, content: String },
    Eval { script: String },
}

struct RemoteSession {
    fleet: Arc<Fleet>,
    worker: Option<Worker>,
    log: Vec<Op>,
    /// Coordinator-side view of the worker's filesystem: everything we
    /// wrote plus the snapshot each [`Frame::EvalDone`] carries, so
    /// report scraping never crosses the wire.
    mirror: BTreeMap<String, String>,
    remote_elapsed_s: f64,
    /// Simulated seconds charged for deaths this session could not
    /// recover from (added on top of the worker-reported elapsed time).
    penalty_s: f64,
    used_exact: bool,
    deaths: u32,
    poisoned: Option<String>,
}

impl RemoteSession {
    fn poison(&mut self, detail: &str) {
        if self.poisoned.is_none() {
            self.penalty_s += self.fleet.death_penalty_s();
            self.poisoned = Some(detail.to_string());
        }
    }

    /// Sends `frame` and returns the reply, absorbing worker deaths by
    /// replaying the operation log onto fresh workers until the replay
    /// budget runs out (which poisons the session).
    fn exchange(&mut self, frame: &Frame) -> Result<Frame, String> {
        loop {
            if let Some(detail) = &self.poisoned {
                return Err(detail.clone());
            }
            let attempt = match self.worker.as_mut() {
                Some(w) => w.link.send(frame).and_then(|()| w.link.recv()),
                None => Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "no worker attached",
                )),
            };
            match attempt {
                Ok(reply) => return Ok(reply),
                Err(e) => self.recover(&e.to_string()),
            }
        }
    }

    /// [`RemoteSession::exchange`] plus a shape check on the reply.
    fn exchange_expect(
        &mut self,
        frame: &Frame,
        accept: impl Fn(&Frame) -> bool,
    ) -> Result<Frame, String> {
        let reply = self.exchange(frame)?;
        if accept(&reply) {
            Ok(reply)
        } else {
            Err(format!("protocol violation: unexpected reply {reply:?}"))
        }
    }

    /// Handles one worker death: retire the link, then (within budget)
    /// replay the session onto a fresh worker.
    fn recover(&mut self, detail: &str) {
        let dead_id = if let Some(mut worker) = self.worker.take() {
            self.fleet.emit(WorkerLifecycle::Died {
                worker: worker.id,
                detail: detail.to_string(),
            });
            worker.link.kill();
            worker.id
        } else {
            0
        };
        self.deaths += 1;
        if self.deaths > REPLAY_BUDGET {
            self.poison(&format!(
                "worker died {} times serving one session (last: {detail})",
                self.deaths
            ));
            return;
        }
        self.fleet
            .emit(WorkerLifecycle::Requeued { worker: dead_id });
        if let Ok(mut worker) = self.fleet.spawn_worker() {
            if self.replay_onto(&mut worker).is_ok() {
                self.worker = Some(worker);
            }
            // A death mid-replay leaves `worker` unset; the exchange loop
            // re-enters recover() and burns another unit of budget.
        }
    }

    /// Re-executes the whole operation log on `worker`. Workers are
    /// deterministic, so a successful replay leaves the fresh worker in
    /// bitwise the same state as the one that died.
    fn replay_onto(&mut self, worker: &mut Worker) -> io::Result<()> {
        let expect = |reply: Frame, ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("replay: unexpected reply {reply:?}"),
                ))
            }
        };
        worker.link.send(&Frame::OpenSession {
            spec: self.fleet.spec.clone(),
        })?;
        let reply = worker.link.recv()?;
        expect(reply.clone(), matches!(reply, Frame::SessionOpened))?;
        for op in &self.log {
            match op {
                Op::Write { path, content } => {
                    worker.link.send(&Frame::WriteFile {
                        path: path.clone(),
                        content: content.clone(),
                    })?;
                    let reply = worker.link.recv()?;
                    expect(reply.clone(), matches!(reply, Frame::Ack))?;
                }
                Op::Eval { script } => {
                    worker.link.send(&Frame::Eval {
                        script: script.clone(),
                    })?;
                    let reply = worker.link.recv()?;
                    match reply {
                        Frame::EvalDone {
                            elapsed_s,
                            used_exact_checkpoint,
                            files,
                            ..
                        } => {
                            self.remote_elapsed_s = elapsed_s;
                            self.used_exact = used_exact_checkpoint;
                            self.mirror.extend(files);
                        }
                        other => expect(other, false)?,
                    }
                }
            }
        }
        Ok(())
    }
}

impl ToolSession for RemoteSession {
    fn write_file(&mut self, path: &str, content: String) {
        self.mirror.insert(path.to_string(), content.clone());
        self.log.push(Op::Write {
            path: path.to_string(),
            content: content.clone(),
        });
        // A death here is absorbed (or poisons the session — surfaced by
        // the next eval, since write_file itself cannot fail).
        let _ = self.exchange_expect(
            &Frame::WriteFile {
                path: path.to_string(),
                content,
            },
            |f| matches!(f, Frame::Ack),
        );
    }

    fn read_file(&self, path: &str) -> Option<&str> {
        self.mirror.get(path).map(String::as_str)
    }

    fn eval(&mut self, script: &str) -> EdaResult<String> {
        // Injected deaths: the deterministic per-eval kill knob, plus the
        // coordinator-side fault stream's WorkerDeath draws.
        let n = self.fleet.evals_dispatched.fetch_add(1, Ordering::Relaxed) + 1;
        let mut kill = self.fleet.kill_before_eval.lock().unwrap().remove(&n);
        if let Some(inj) = &self.fleet.injector {
            kill |= inj.fires(FaultKind::WorkerDeath);
        }
        if kill {
            if let Some(worker) = self.worker.as_mut() {
                worker.link.kill();
            }
        }
        match self.exchange(&Frame::Eval {
            script: script.to_string(),
        }) {
            Ok(Frame::EvalDone {
                outcome,
                elapsed_s,
                used_exact_checkpoint,
                files,
            }) => {
                self.log.push(Op::Eval {
                    script: script.to_string(),
                });
                self.remote_elapsed_s = elapsed_s;
                self.used_exact = used_exact_checkpoint;
                self.mirror.extend(files);
                outcome
            }
            Ok(Frame::Refused { message }) => Err(EdaError::WorkerLost(message)),
            Ok(other) => Err(EdaError::WorkerLost(format!(
                "protocol violation: unexpected reply {other:?}"
            ))),
            Err(detail) => Err(EdaError::WorkerLost(detail)),
        }
    }

    fn elapsed_s(&self) -> f64 {
        self.remote_elapsed_s + self.penalty_s
    }

    fn used_exact_checkpoint(&self) -> bool {
        self.used_exact
    }

    fn files(&self) -> Vec<(String, String)> {
        self.mirror
            .iter()
            .map(|(p, c)| (p.clone(), c.clone()))
            .collect()
    }
}

impl Drop for RemoteSession {
    fn drop(&mut self) {
        let Some(mut worker) = self.worker.take() else {
            return;
        };
        let closed = worker
            .link
            .send(&Frame::CloseSession)
            .and_then(|()| worker.link.recv());
        match closed {
            Ok(Frame::Ack) => self.fleet.release(worker),
            _ => {
                // Died while idle-bound: replace it so the fleet keeps
                // its size.
                self.fleet.emit(WorkerLifecycle::Died {
                    worker: worker.id,
                    detail: "failed to close session".to_string(),
                });
                worker.link.kill();
                if let Ok(replacement) = self.fleet.spawn_worker() {
                    self.fleet.release(replacement);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_the_wire_format() {
        let frames = vec![
            Frame::Hello { version: 7 },
            Frame::OpenSession {
                spec: "mock:42".into(),
            },
            Frame::SessionOpened,
            Frame::WriteFile {
                path: "src/fifo.sv".into(),
                content: "module fifo; endmodule".into(),
            },
            Frame::Ack,
            Frame::Eval {
                script: "synth_design -top fifo".into(),
            },
            Frame::EvalDone {
                outcome: Ok("ok".into()),
                elapsed_s: 12.5,
                used_exact_checkpoint: true,
                files: vec![("util.rpt".into(), "| Slice LUTs | 4 |".into())],
            },
            Frame::EvalDone {
                outcome: Err(EdaError::Timeout("route_design hung".into())),
                elapsed_s: 300.0,
                used_exact_checkpoint: false,
                files: vec![],
            },
            Frame::CloseSession,
            Frame::Shutdown,
            Frame::Refused {
                message: "no open session".into(),
            },
        ];
        for frame in frames {
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            let back = read_frame(&mut wire.as_slice()).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn every_error_variant_survives_the_wire() {
        let errors = [
            EdaError::Tcl("a".into()),
            EdaError::FileNotFound("b".into()),
            EdaError::Parse("c".into()),
            EdaError::UnknownModule("d".into()),
            EdaError::UnknownPart("e".into()),
            EdaError::Parameter("f".into()),
            EdaError::Elaboration("g".into()),
            EdaError::ResourceOverflow("h".into()),
            EdaError::FlowOrder("i".into()),
            EdaError::Checkpoint("j".into()),
            EdaError::ToolCrash("k".into()),
            EdaError::Timeout("l".into()),
            EdaError::WorkerLost("m".into()),
        ];
        for e in errors {
            let decoded = error_from_code(error_code(&e), error_message(&e).to_string()).unwrap();
            assert_eq!(decoded, e);
            assert_eq!(decoded.is_transient(), e.is_transient());
        }
    }

    #[test]
    fn truncated_and_oversized_frames_are_invalid_data_not_panics() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ack).unwrap();
        for cut in 0..wire.len() {
            let err = read_frame(&mut &wire[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        }
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        let err = read_frame(&mut &huge[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let garbage = [3u8, 0, 0, 0, 99, 99, 99];
        let err = read_frame(&mut &garbage[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
