//! Simulated placement, routing and static timing analysis.
//!
//! Consumes a synthesized [`Netlist`] and the clock constraint, checks
//! device capacity, derives the routed critical-path delay from the part's
//! [`dovado_fpga::TimingModel`] (including congestion as a function of
//! utilization), and reports the worst negative slack Dovado extracts
//! (Eq. 1 of the paper: `Fmax = 1000 / (T − WNS)` with T and WNS in ns).

use crate::error::{EdaError, EdaResult};
use crate::hash::{combine, hash_str, unit_noise};
use crate::netlist::Netlist;
use dovado_fpga::Part;
use std::fmt;
use std::str::FromStr;

/// Implementation directive (Vivado `place_design`/`route_design`
/// directives, collapsed into one knob as Dovado's scripts do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ImplDirective {
    /// Balanced default.
    #[default]
    Default,
    /// Extra placement/routing effort.
    Explore,
    /// Pack for area.
    AreaExplore,
    /// Fastest turnaround, worst QoR.
    Quick,
}

impl ImplDirective {
    /// Multiplier on the routed critical-path delay.
    pub fn delay_factor(&self) -> f64 {
        match self {
            ImplDirective::Default => 1.0,
            ImplDirective::Explore => 0.94,
            ImplDirective::AreaExplore => 1.05,
            ImplDirective::Quick => 1.12,
        }
    }

    /// Multiplier on tool run time.
    pub fn runtime_factor(&self) -> f64 {
        match self {
            ImplDirective::Default => 1.0,
            ImplDirective::Explore => 1.9,
            ImplDirective::AreaExplore => 1.5,
            ImplDirective::Quick => 0.45,
        }
    }

    /// The Vivado spelling.
    pub fn as_vivado(&self) -> &'static str {
        match self {
            ImplDirective::Default => "Default",
            ImplDirective::Explore => "Explore",
            ImplDirective::AreaExplore => "AreaExplore",
            ImplDirective::Quick => "Quick",
        }
    }
}

impl FromStr for ImplDirective {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "default" => ImplDirective::Default,
            "explore" => ImplDirective::Explore,
            "areaexplore" => ImplDirective::AreaExplore,
            "quick" => ImplDirective::Quick,
            _ => return Err(format!("unknown implementation directive `{s}`")),
        })
    }
}

impl fmt::Display for ImplDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_vivado())
    }
}

/// Result of place + route + STA.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplResult {
    /// Final netlist (placement may re-pack a few LUTs).
    pub netlist: Netlist,
    /// Peak device utilization fraction.
    pub utilization: f64,
    /// Routed critical-path delay in ns.
    pub crit_delay_ns: f64,
    /// Worst negative slack against the constraint, in ns (negative when
    /// the constraint is violated).
    pub wns_ns: f64,
    /// Target clock period in ns.
    pub period_ns: f64,
    /// Simulated tool run time in seconds.
    pub runtime_s: f64,
    /// Short log excerpt.
    pub log: String,
}

impl ImplResult {
    /// Maximum achievable frequency in MHz, per the paper's Eq. 1
    /// (`1000 / (T − WNS)` — equivalently `1000 / crit_delay`).
    pub fn fmax_mhz(&self) -> f64 {
        1000.0 / (self.period_ns - self.wns_ns)
    }

    /// Whether timing closed at the constrained period.
    pub fn timing_met(&self) -> bool {
        self.wns_ns >= 0.0
    }
}

/// Simulated run time of a from-scratch implementation, in seconds.
pub fn impl_runtime_s(cells_total: u64, utilization: f64, directive: ImplDirective) -> f64 {
    (30.0 + 0.03 * cells_total as f64 * (1.0 + 2.0 * utilization)) * directive.runtime_factor()
}

/// Runs placement, routing, and timing analysis.
pub fn place_and_route(
    synthesized: &Netlist,
    part: &Part,
    period_ns: f64,
    directive: ImplDirective,
    seed: u64,
) -> EdaResult<ImplResult> {
    // Capacity check — the boxing step exists precisely so designs reach
    // this point without pin overflow, but oversized logic must still fail.
    let overflows = synthesized.cells.overflows(&part.capacity);
    if !overflows.is_empty() {
        let msg = overflows
            .iter()
            .map(|(k, by)| format!("{k} over by {by}"))
            .collect::<Vec<_>>()
            .join(", ");
        return Err(EdaError::ResourceOverflow(format!(
            "{} on {}: {msg}",
            synthesized.module, part.name
        )));
    }

    let utilization = synthesized.cells.peak_utilization(&part.capacity);
    let noise_seed = combine(combine(synthesized.design_hash, hash_str(&part.name)), seed);

    // Placement-dependent jitter on the routed delay (±4 %, the seed-to-
    // seed variance class real place & route shows on small designs).
    let jitter = 1.0 + 0.04 * unit_noise(combine(noise_seed, 11));

    let raw_delay = part.timing.path_delay(
        synthesized.logic_levels,
        synthesized.fanout_cost,
        synthesized.carry_bits,
        synthesized.crit_through_bram,
        synthesized.crit_through_dsp,
        utilization,
    );
    let crit_delay_ns = raw_delay * directive.delay_factor() * jitter;
    let wns_ns = period_ns - crit_delay_ns;

    // Placement re-packs a small number of LUTs into shared slices.
    let mut netlist = synthesized.clone();
    let repack = 1.0 - 0.015 * (1.0 + unit_noise(combine(noise_seed, 12))).abs();
    netlist.cells.set(
        dovado_fpga::ResourceKind::Lut,
        ((synthesized.luts() as f64) * repack).round().max(1.0) as u64,
    );

    let runtime_s = impl_runtime_s(synthesized.cells.total(), utilization, directive);
    let log = format!(
        "route_design: {} routed at {:.1} % peak utilization; WNS {:.3} ns @ {:.3} ns period \
         (directive {})",
        netlist.module,
        utilization * 100.0,
        wns_ns,
        period_ns,
        directive.as_vivado(),
    );

    Ok(ImplResult {
        netlist,
        utilization,
        crit_delay_ns,
        wns_ns,
        period_ns,
        runtime_s,
        log,
    })
}

/// Post-synthesis timing *estimate* (no placement yet): optimistic routing,
/// as Vivado's post-synth timing reports are.
pub fn estimate_timing(synthesized: &Netlist, part: &Part, period_ns: f64) -> ImplResult {
    let delay = part.timing.path_delay(
        synthesized.logic_levels,
        synthesized.fanout_cost,
        synthesized.carry_bits,
        synthesized.crit_through_bram,
        synthesized.crit_through_dsp,
        0.0,
    ) * 0.92;
    ImplResult {
        netlist: synthesized.clone(),
        utilization: synthesized.cells.peak_utilization(&part.capacity),
        crit_delay_ns: delay,
        wns_ns: period_ns - delay,
        period_ns,
        runtime_s: 0.0,
        log: format!("post-synthesis timing estimate for {}", synthesized.module),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dovado_fpga::{Catalog, ResourceKind, ResourceSet};

    fn netlist(luts: u64, levels: u32) -> Netlist {
        let mut n = Netlist::empty("dut");
        n.cells =
            ResourceSet::from_pairs(&[(ResourceKind::Lut, luts), (ResourceKind::Register, luts)]);
        n.logic_levels = levels;
        n.fanout_cost = 1.0;
        n.design_hash = 77;
        n
    }

    fn k7() -> Part {
        Catalog::builtin().resolve("xc7k70t").unwrap().clone()
    }

    fn zu3() -> Part {
        Catalog::builtin().resolve("xczu3eg").unwrap().clone()
    }

    #[test]
    fn wns_negative_when_period_aggressive() {
        // 1 ns target (the paper's 1 GHz probe) on a 6-level K7 path.
        let r = place_and_route(&netlist(1000, 6), &k7(), 1.0, ImplDirective::Default, 1).unwrap();
        assert!(r.wns_ns < 0.0);
        assert!(!r.timing_met());
        let fmax = r.fmax_mhz();
        assert!(fmax > 120.0 && fmax < 300.0, "fmax {fmax}");
    }

    #[test]
    fn fmax_matches_eq1() {
        let r = place_and_route(&netlist(1000, 6), &k7(), 1.0, ImplDirective::Default, 1).unwrap();
        let expect = 1000.0 / r.crit_delay_ns;
        assert!((r.fmax_mhz() - expect).abs() < 1e-9);
    }

    #[test]
    fn ultrascale_is_substantially_faster() {
        let nk = place_and_route(&netlist(1000, 6), &k7(), 1.0, ImplDirective::Default, 1).unwrap();
        let nz =
            place_and_route(&netlist(1000, 6), &zu3(), 1.0, ImplDirective::Default, 1).unwrap();
        let ratio = nz.fmax_mhz() / nk.fmax_mhz();
        assert!(ratio > 2.0 && ratio < 4.0, "16nm/28nm ratio {ratio}");
    }

    #[test]
    fn utilization_slows_the_design() {
        let light =
            place_and_route(&netlist(1_000, 6), &k7(), 1.0, ImplDirective::Default, 1).unwrap();
        let heavy =
            place_and_route(&netlist(35_000, 6), &k7(), 1.0, ImplDirective::Default, 1).unwrap();
        assert!(heavy.utilization > light.utilization);
        assert!(heavy.crit_delay_ns > light.crit_delay_ns);
    }

    #[test]
    fn overflow_is_an_error() {
        let r = place_and_route(&netlist(100_000, 6), &k7(), 1.0, ImplDirective::Default, 1);
        assert!(matches!(r, Err(EdaError::ResourceOverflow(_))));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = place_and_route(&netlist(1000, 6), &k7(), 2.0, ImplDirective::Default, 5).unwrap();
        let b = place_and_route(&netlist(1000, 6), &k7(), 2.0, ImplDirective::Default, 5).unwrap();
        assert_eq!(a, b);
        let c = place_and_route(&netlist(1000, 6), &k7(), 2.0, ImplDirective::Default, 6).unwrap();
        assert_ne!(a.crit_delay_ns, c.crit_delay_ns);
    }

    #[test]
    fn explore_directive_improves_timing() {
        let d = place_and_route(&netlist(1000, 8), &k7(), 1.0, ImplDirective::Default, 5).unwrap();
        let e = place_and_route(&netlist(1000, 8), &k7(), 1.0, ImplDirective::Explore, 5).unwrap();
        assert!(e.crit_delay_ns < d.crit_delay_ns);
        assert!(
            impl_runtime_s(2000, 0.1, ImplDirective::Explore)
                > impl_runtime_s(2000, 0.1, ImplDirective::Default)
        );
    }

    #[test]
    fn timing_met_with_relaxed_period() {
        let r = place_and_route(&netlist(1000, 4), &k7(), 20.0, ImplDirective::Default, 5).unwrap();
        assert!(r.timing_met());
        assert!(r.wns_ns > 0.0);
    }

    #[test]
    fn estimate_is_optimistic() {
        let n = netlist(30_000, 6);
        let est = estimate_timing(&n, &k7(), 1.0);
        let real = place_and_route(&n, &k7(), 1.0, ImplDirective::Default, 5).unwrap();
        assert!(est.crit_delay_ns < real.crit_delay_ns);
    }

    #[test]
    fn directive_roundtrip() {
        for d in [
            ImplDirective::Default,
            ImplDirective::Explore,
            ImplDirective::AreaExplore,
            ImplDirective::Quick,
        ] {
            assert_eq!(d.as_vivado().parse::<ImplDirective>().unwrap(), d);
        }
    }
}
