//! The TCL interpreter: substitution, builtins, and dispatch to the
//! embedding context's commands.

use crate::error::{EdaError, EdaResult};
use crate::tcl::expr::eval_expr;
use crate::tcl::parser::{parse_script, Part, Word};
use std::collections::HashMap;

/// The embedding context supplies non-builtin commands (the Vivado command
/// set, in this crate's case).
pub trait TclContext {
    /// Executes `name args…`, returning the command's string result.
    fn run_command(
        &mut self,
        interp: &mut Interp,
        name: &str,
        args: &[String],
    ) -> EdaResult<String>;
}

/// A context with no commands: every non-builtin is an error. Useful for
/// testing the interpreter itself.
pub struct NoContext;

impl TclContext for NoContext {
    fn run_command(
        &mut self,
        _interp: &mut Interp,
        name: &str,
        _args: &[String],
    ) -> EdaResult<String> {
        Err(EdaError::Tcl(format!("invalid command name \"{name}\"")))
    }
}

/// Non-error control flow raised by `break`/`continue` inside loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
}

/// A user-defined procedure (`proc name {params} {body}`).
#[derive(Debug, Clone)]
struct Proc {
    params: Vec<String>,
    body: String,
}

/// Interpreter state: variables and collected `puts` output.
#[derive(Debug, Default)]
pub struct Interp {
    vars: HashMap<String, String>,
    procs: HashMap<String, Proc>,
    /// Loop control raised inside an `if` body, consumed by the enclosing
    /// loop (or surfaced as an error at the top level).
    pending_flow: Option<Flow>,
    /// Everything printed via `puts`.
    pub output: String,
}

impl Interp {
    /// Creates a fresh interpreter.
    pub fn new() -> Interp {
        Interp::default()
    }

    /// Sets a variable (as `set name value` would).
    pub fn set_var(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.vars.insert(name.into(), value.into());
    }

    /// Reads a variable.
    pub fn get_var(&self, name: &str) -> Option<&str> {
        self.vars.get(name).map(String::as_str)
    }

    /// Evaluates a script, returning the result of its last command.
    pub fn eval<C: TclContext>(&mut self, ctx: &mut C, script: &str) -> EdaResult<String> {
        let (result, flow) = self.eval_flow(ctx, script)?;
        if flow != Flow::Normal || self.pending_flow.take().is_some() {
            return Err(EdaError::Tcl("`break`/`continue` outside a loop".into()));
        }
        Ok(result)
    }

    /// Evaluates a script, propagating loop control flow to the caller.
    fn eval_flow<C: TclContext>(&mut self, ctx: &mut C, script: &str) -> EdaResult<(String, Flow)> {
        let commands = parse_script(script)?;
        let mut last = String::new();
        for cmd in commands {
            let mut words = Vec::with_capacity(cmd.words.len());
            for w in &cmd.words {
                words.push(self.subst_word(ctx, w)?);
            }
            if words.is_empty() {
                continue;
            }
            let name = words[0].clone();
            let args = &words[1..];
            match name.as_str() {
                "break" => return Ok((last, Flow::Break)),
                "continue" => return Ok((last, Flow::Continue)),
                _ => {}
            }
            last = self.dispatch(ctx, &name, args)?;
            // `break`/`continue` raised inside an `if` body propagates out
            // of the surrounding script.
            if let Some(flow) = self.pending_flow.take() {
                return Ok((last, flow));
            }
        }
        Ok((last, Flow::Normal))
    }

    /// Substitutes `$vars` and `[commands]` inside a plain string (used by
    /// `expr` and `if` conditions that arrive as braced literals).
    pub fn subst_string<C: TclContext>(&mut self, ctx: &mut C, s: &str) -> EdaResult<String> {
        // Reuse the parser by wrapping the string in a fake quoted word.
        // Escape embedded quotes/backslashes first so the parse is exact.
        let escaped = s.replace('\\', "\\\\").replace('"', "\\\"");
        let cmds = parse_script(&format!("__subst \"{escaped}\""))?;
        let word = &cmds[0].words[1];
        self.subst_word(ctx, word)
    }

    fn subst_word<C: TclContext>(&mut self, ctx: &mut C, w: &Word) -> EdaResult<String> {
        match w {
            Word::Braced(s) => Ok(s.clone()),
            Word::Bare(parts) => {
                let mut out = String::new();
                for p in parts {
                    match p {
                        Part::Lit(s) => out.push_str(s),
                        Part::Var(name) => {
                            let v = self.vars.get(name).ok_or_else(|| {
                                EdaError::Tcl(format!("can't read \"{name}\": no such variable"))
                            })?;
                            out.push_str(v);
                        }
                        Part::Cmd(script) => {
                            let v = self.eval(ctx, script)?;
                            out.push_str(&v);
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    fn dispatch<C: TclContext>(
        &mut self,
        ctx: &mut C,
        name: &str,
        args: &[String],
    ) -> EdaResult<String> {
        match name {
            "set" => {
                match args {
                    [n] => self.vars.get(n).cloned().ok_or_else(|| {
                        EdaError::Tcl(format!("can't read \"{n}\": no such variable"))
                    }),
                    [n, v] => {
                        self.vars.insert(n.clone(), v.clone());
                        Ok(v.clone())
                    }
                    _ => Err(EdaError::Tcl("wrong # args: set varName ?value?".into())),
                }
            }
            "unset" => {
                for a in args {
                    self.vars.remove(a);
                }
                Ok(String::new())
            }
            "puts" => {
                let (nonewline, text) = match args {
                    [flag, t] if flag == "-nonewline" => (true, t.clone()),
                    [t] => (false, t.clone()),
                    [] => (false, String::new()),
                    _ => {
                        return Err(EdaError::Tcl(
                            "wrong # args: puts ?-nonewline? string".into(),
                        ))
                    }
                };
                self.output.push_str(&text);
                if !nonewline {
                    self.output.push('\n');
                }
                Ok(String::new())
            }
            "expr" => {
                let joined = args.join(" ");
                let substituted = self.subst_string(ctx, &joined)?;
                eval_expr(&substituted)
            }
            "incr" => match args {
                [n] | [n, _] => {
                    let by: i64 = if args.len() == 2 {
                        args[1]
                            .parse()
                            .map_err(|_| EdaError::Tcl(format!("bad increment `{}`", args[1])))?
                    } else {
                        1
                    };
                    let cur: i64 = self
                        .vars
                        .get(n)
                        .map(|v| v.parse().unwrap_or(0))
                        .unwrap_or(0);
                    let v = (cur + by).to_string();
                    self.vars.insert(n.clone(), v.clone());
                    Ok(v)
                }
                _ => Err(EdaError::Tcl(
                    "wrong # args: incr varName ?increment?".into(),
                )),
            },
            "if" => self.run_if(ctx, args),
            "foreach" => match args {
                [var, list, body] => {
                    let mut last = String::new();
                    for item in list.split_whitespace() {
                        self.vars.insert(var.clone(), item.to_string());
                        let (r, flow) = self.eval_flow(ctx, body)?;
                        last = r;
                        match flow {
                            Flow::Break => break,
                            Flow::Continue | Flow::Normal => {}
                        }
                    }
                    Ok(last)
                }
                _ => Err(EdaError::Tcl("wrong # args: foreach var list body".into())),
            },
            "while" => match args {
                [cond, body] => {
                    let mut last = String::new();
                    let mut guard = 0u64;
                    loop {
                        let c = self.subst_string(ctx, cond)?;
                        if eval_expr(&c)? == "0" {
                            break;
                        }
                        let (r, flow) = self.eval_flow(ctx, body)?;
                        last = r;
                        if flow == Flow::Break {
                            break;
                        }
                        guard += 1;
                        if guard > 100_000 {
                            return Err(EdaError::Tcl("while: iteration limit exceeded".into()));
                        }
                    }
                    Ok(last)
                }
                _ => Err(EdaError::Tcl("wrong # args: while cond body".into())),
            },
            "proc" => match args {
                [name, params, body] => {
                    self.procs.insert(
                        name.clone(),
                        Proc {
                            params: params.split_whitespace().map(str::to_string).collect(),
                            body: body.clone(),
                        },
                    );
                    Ok(String::new())
                }
                _ => Err(EdaError::Tcl("wrong # args: proc name params body".into())),
            },
            "list" => Ok(args.join(" ")),
            "string" => match args {
                [op, s] if op == "length" => Ok(s.chars().count().to_string()),
                [op, s] if op == "tolower" => Ok(s.to_lowercase()),
                [op, s] if op == "toupper" => Ok(s.to_uppercase()),
                _ => Err(EdaError::Tcl("unsupported `string` form".into())),
            },
            _ => {
                if let Some(p) = self.procs.get(name).cloned() {
                    if args.len() != p.params.len() {
                        return Err(EdaError::Tcl(format!(
                            "wrong # args for proc `{name}`: want {}, got {}",
                            p.params.len(),
                            args.len()
                        )));
                    }
                    // TCL procs have their own scope; this subset shares the
                    // global one but restores shadowed parameters afterward.
                    let saved: Vec<(String, Option<String>)> = p
                        .params
                        .iter()
                        .map(|k| (k.clone(), self.vars.get(k).cloned()))
                        .collect();
                    for (k, v) in p.params.iter().zip(args) {
                        self.vars.insert(k.clone(), v.clone());
                    }
                    let result = self.eval(ctx, &p.body);
                    for (k, old) in saved {
                        match old {
                            Some(v) => self.vars.insert(k, v),
                            None => self.vars.remove(&k),
                        };
                    }
                    return result;
                }
                ctx.run_command(self, name, args)
            }
        }
    }

    fn run_if<C: TclContext>(&mut self, ctx: &mut C, args: &[String]) -> EdaResult<String> {
        let mut i = 0usize;
        loop {
            if i + 1 >= args.len() {
                return Err(EdaError::Tcl("wrong # args: if cond body …".into()));
            }
            let cond = self.subst_string(ctx, &args[i])?;
            let truth = eval_expr(&cond)?;
            if truth != "0" {
                let (r, flow) = self.eval_flow(ctx, &args[i + 1])?;
                if flow != Flow::Normal {
                    self.pending_flow = Some(flow);
                }
                return Ok(r);
            }
            i += 2;
            match args.get(i).map(String::as_str) {
                Some("elseif") => {
                    i += 1;
                    continue;
                }
                Some("else") => {
                    let body = args
                        .get(i + 1)
                        .ok_or_else(|| EdaError::Tcl("missing else body".into()))?;
                    let (r, flow) = self.eval_flow(ctx, body)?;
                    if flow != Flow::Normal {
                        self.pending_flow = Some(flow);
                    }
                    return Ok(r);
                }
                None => return Ok(String::new()),
                Some(other) => {
                    return Err(EdaError::Tcl(format!(
                        "expected elseif/else, got `{other}`"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &str) -> (String, String) {
        let mut i = Interp::new();
        let r = i.eval(&mut NoContext, script).unwrap();
        (r, i.output)
    }

    #[test]
    fn set_and_substitute() {
        let (r, _) = run("set a 5\nset b $a");
        assert_eq!(r, "5");
    }

    #[test]
    fn puts_collects_output() {
        let (_, out) = run("puts hello\nputs \"a b\"");
        assert_eq!(out, "hello\na b\n");
    }

    #[test]
    fn puts_nonewline() {
        let (_, out) = run("puts -nonewline x\nputs y");
        assert_eq!(out, "xy\n");
    }

    #[test]
    fn expr_with_variables() {
        let (r, _) = run("set t 1.0\nset wns -4.0\nexpr {1000.0 / ($t - $wns)}");
        assert_eq!(r, "200");
    }

    #[test]
    fn bracket_substitution_runs_commands() {
        let (r, _) = run("set x [expr {2 + 3}]");
        assert_eq!(r, "5");
    }

    #[test]
    fn if_elseif_else() {
        let (r, _) = run("set x 5\nif {$x > 10} {set y big} elseif {$x > 3} {set y mid} else {set y small}\nset y");
        assert_eq!(r, "mid");
        let (r2, _) = run("set x 1\nif {$x > 10} {set y big} else {set y small}\nset y");
        assert_eq!(r2, "small");
        let (r3, _) = run("if {0} {set y never}");
        assert_eq!(r3, "");
    }

    #[test]
    fn foreach_iterates() {
        let (_, out) = run("foreach p {a b c} { puts $p }");
        assert_eq!(out, "a\nb\nc\n");
    }

    #[test]
    fn incr_counts() {
        let (r, _) = run("set i 0\nincr i\nincr i 10\nset i");
        assert_eq!(r, "11");
    }

    #[test]
    fn unset_removes() {
        let mut i = Interp::new();
        i.eval(&mut NoContext, "set a 1\nunset a").unwrap();
        assert!(i.eval(&mut NoContext, "set b $a").is_err());
    }

    #[test]
    fn unknown_command_reported_by_context() {
        let mut i = Interp::new();
        let e = i.eval(&mut NoContext, "synth_design -top foo").unwrap_err();
        assert!(e.to_string().contains("synth_design"));
    }

    #[test]
    fn undefined_variable_is_error() {
        let mut i = Interp::new();
        assert!(i.eval(&mut NoContext, "puts $nope").is_err());
    }

    #[test]
    fn string_ops() {
        let (r, _) = run("string toupper abc");
        assert_eq!(r, "ABC");
        let (r2, _) = run("string length hello");
        assert_eq!(r2, "5");
    }

    #[test]
    fn list_builds_space_joined() {
        let (r, _) = run("list a b c");
        assert_eq!(r, "a b c");
    }

    #[test]
    fn braced_body_not_substituted_until_needed() {
        // $y does not exist, but the false branch is never evaluated.
        let (r, _) = run("set x 1\nif {$x} {set z ok} else {puts $y}\nset z");
        assert_eq!(r, "ok");
    }

    #[test]
    fn while_loop_with_break_and_continue() {
        let (r, out) = run(
            "set i 0\nset acc 0\nwhile {$i < 10} {\n  incr i\n  if {$i == 3} { continue }\n  if {$i == 6} { break }\n  set acc [expr {$acc + $i}]\n}\nset acc",
        );
        // Sums 1+2+4+5 (3 skipped, loop broken at 6).
        assert_eq!(r, "12");
        assert_eq!(out, "");
    }

    #[test]
    fn while_false_never_runs() {
        let (r, _) = run("set x 1\nwhile {0} { set x 2 }\nset x");
        assert_eq!(r, "1");
    }

    #[test]
    fn foreach_break_stops_early() {
        let (_, out) = run("foreach n {1 2 3 4} { puts $n\nif {$n >= 2} { break } }");
        assert_eq!(out, "1\n2\n");
    }

    #[test]
    fn proc_definition_and_call() {
        let (r, out) = run(
            "proc fmax {period wns} { expr {1000.0 / ($period - $wns)} }\n\
             puts [fmax 1.0 -4.0]\n\
             fmax 2.0 -3.0",
        );
        assert_eq!(out, "200\n");
        assert_eq!(r, "200");
    }

    #[test]
    fn proc_restores_shadowed_variables() {
        let (r, _) = run("set x outer\nproc shadow {x} { set x inner }\nshadow bound\nset x");
        assert_eq!(r, "outer");
    }

    #[test]
    fn proc_wrong_arity_errors() {
        let mut i = Interp::new();
        i.eval(&mut NoContext, "proc two {a b} { set a }").unwrap();
        assert!(i.eval(&mut NoContext, "two 1").is_err());
    }

    #[test]
    fn break_outside_loop_is_error() {
        let mut i = Interp::new();
        assert!(i.eval(&mut NoContext, "break").is_err());
        assert!(i.eval(&mut NoContext, "continue").is_err());
    }

    #[test]
    fn while_iteration_limit_guards_infinite_loops() {
        let mut i = Interp::new();
        let e = i.eval(&mut NoContext, "while {1} { set x 1 }").unwrap_err();
        assert!(e.to_string().contains("iteration limit"));
    }

    #[test]
    fn context_commands_receive_interp() {
        struct Ctx;
        impl TclContext for Ctx {
            fn run_command(
                &mut self,
                interp: &mut Interp,
                name: &str,
                args: &[String],
            ) -> EdaResult<String> {
                interp.set_var("seen", format!("{name}:{}", args.join(",")));
                Ok("done".into())
            }
        }
        let mut i = Interp::new();
        let r = i.eval(&mut Ctx, "mycmd a b").unwrap();
        assert_eq!(r, "done");
        assert_eq!(i.get_var("seen"), Some("mycmd:a,b"));
    }
}
