//! `expr` evaluator for the TCL subset.
//!
//! Handles the arithmetic/comparison/logical operators that appear in flow
//! scripts (`if {$wns < 0} { … }`, `expr {1000.0 / $period}` …). Values are
//! doubles internally; results print as integers when integral, matching
//! TCL's behaviour closely enough for the flow scripts.

use crate::error::{EdaError, EdaResult};

/// A value with its TCL "intness": written-as-integer operands divide
/// integrally, anything float-tainted divides as doubles.
#[derive(Debug, Clone, Copy, PartialEq)]
struct V {
    v: f64,
    int: bool,
}

impl V {
    fn int(v: f64) -> V {
        V { v, int: true }
    }
    fn float(v: f64) -> V {
        V { v, int: false }
    }
    fn join(self, other: V, v: f64) -> V {
        V {
            v,
            int: self.int && other.int,
        }
    }
}

/// Evaluates an expression string (after variable substitution).
pub fn eval_expr(src: &str) -> EdaResult<String> {
    let toks = tokenize(src)?;
    let mut p = E {
        toks,
        pos: 0,
        src: src.to_string(),
    };
    let v = p.ternary()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing tokens"));
    }
    Ok(if v.int {
        format!("{}", v.v as i64)
    } else {
        format_num(v.v)
    })
}

/// Formats a double the TCL way: integral values print without a decimal
/// point.
pub fn format_num(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Numeric literal; the bool records whether it was written as an
    /// integer (drives TCL's integer-division rule).
    Num(f64, bool),
    Str(String),
    Op(String),
}

fn tokenize(src: &str) -> EdaResult<Vec<Tok>> {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            // Hex literal.
            if c == '0' && matches!(chars.get(i + 1), Some('x') | Some('X')) {
                i += 2;
                while i < chars.len() && chars[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let text: String = chars[start + 2..i].iter().collect();
                let v = i64::from_str_radix(&text, 16)
                    .map_err(|_| EdaError::Tcl(format!("bad hex literal in `{src}`")))?;
                out.push(Tok::Num(v as f64, true));
                continue;
            }
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || chars[i] == '.'
                    || chars[i] == 'e'
                    || chars[i] == 'E'
                    || ((chars[i] == '+' || chars[i] == '-')
                        && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let v: f64 = text
                .parse()
                .map_err(|_| EdaError::Tcl(format!("bad number `{text}` in `{src}`")))?;
            let is_int = !text.contains('.') && !text.contains('e') && !text.contains('E');
            out.push(Tok::Num(v, is_int));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            match word.as_str() {
                "true" => out.push(Tok::Num(1.0, true)),
                "false" => out.push(Tok::Num(0.0, true)),
                // Function names are passed through as operators.
                "abs" | "int" | "round" | "floor" | "ceil" | "min" | "max" | "pow" | "sqrt"
                | "log2" => out.push(Tok::Op(word)),
                _ => out.push(Tok::Str(word)),
            }
            continue;
        }
        if c == '"' {
            i += 1;
            let start = i;
            while i < chars.len() && chars[i] != '"' {
                i += 1;
            }
            if i >= chars.len() {
                return Err(EdaError::Tcl(format!(
                    "unterminated string in expr `{src}`"
                )));
            }
            out.push(Tok::Str(chars[start..i].iter().collect()));
            i += 1;
            continue;
        }
        // Operators, longest first.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if ["**", "==", "!=", "<=", ">=", "&&", "||", "eq", "ne"].contains(&two.as_str()) {
            out.push(Tok::Op(two));
            i += 2;
            continue;
        }
        if "+-*/%()<>!,?:".contains(c) {
            out.push(Tok::Op(c.to_string()));
            i += 1;
            continue;
        }
        return Err(EdaError::Tcl(format!(
            "unexpected character `{c}` in expr `{src}`"
        )));
    }
    Ok(out)
}

struct E {
    toks: Vec<Tok>,
    pos: usize,
    src: String,
}

impl E {
    fn err(&self, msg: &str) -> EdaError {
        EdaError::Tcl(format!("expr `{}`: {msg}", self.src))
    }

    fn peek_op(&self) -> Option<&str> {
        match self.toks.get(self.pos) {
            Some(Tok::Op(o)) => Some(o.as_str()),
            _ => None,
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.peek_op() == Some(op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ternary(&mut self) -> EdaResult<V> {
        let c = self.or()?;
        if self.eat_op("?") {
            let a = self.ternary()?;
            if !self.eat_op(":") {
                return Err(self.err("expected `:`"));
            }
            let b = self.ternary()?;
            return Ok(if c.v != 0.0 { a } else { b });
        }
        Ok(c)
    }

    fn or(&mut self) -> EdaResult<V> {
        let mut v = self.and()?;
        while self.eat_op("||") {
            let r = self.and()?;
            v = V::int((((v.v != 0.0) || (r.v != 0.0)) as i64) as f64);
        }
        Ok(v)
    }

    fn and(&mut self) -> EdaResult<V> {
        let mut v = self.cmp()?;
        while self.eat_op("&&") {
            let r = self.cmp()?;
            v = V::int((((v.v != 0.0) && (r.v != 0.0)) as i64) as f64);
        }
        Ok(v)
    }

    // `while let` can't hold the peeked &str across the mutating body.
    #[allow(clippy::while_let_loop)]
    fn cmp(&mut self) -> EdaResult<V> {
        let mut v = self.add()?;
        loop {
            let op = match self.peek_op() {
                Some(o @ ("==" | "!=" | "<" | ">" | "<=" | ">=")) => o.to_string(),
                _ => break,
            };
            self.pos += 1;
            let r = self.add()?;
            let b = match op.as_str() {
                "==" => v.v == r.v,
                "!=" => v.v != r.v,
                "<" => v.v < r.v,
                ">" => v.v > r.v,
                "<=" => v.v <= r.v,
                _ => v.v >= r.v,
            };
            v = V::int((b as i64) as f64);
        }
        Ok(v)
    }

    fn add(&mut self) -> EdaResult<V> {
        let mut v = self.mul()?;
        loop {
            if self.eat_op("+") {
                let r = self.mul()?;
                v = v.join(r, v.v + r.v);
            } else if self.eat_op("-") {
                let r = self.mul()?;
                v = v.join(r, v.v - r.v);
            } else {
                break;
            }
        }
        Ok(v)
    }

    fn mul(&mut self) -> EdaResult<V> {
        let mut v = self.pow()?;
        loop {
            if self.eat_op("*") {
                let r = self.pow()?;
                v = v.join(r, v.v * r.v);
            } else if self.eat_op("/") {
                let r = self.pow()?;
                if r.v == 0.0 {
                    return Err(self.err("division by zero"));
                }
                // Integer division only when both operands were written as
                // integers (TCL semantics).
                if v.int && r.int {
                    v = V::int(((v.v as i64).div_euclid(r.v as i64)) as f64);
                } else {
                    v = V::float(v.v / r.v);
                }
            } else if self.eat_op("%") {
                let r = self.pow()?;
                if r.v == 0.0 {
                    return Err(self.err("modulo by zero"));
                }
                v = V::int(((v.v as i64).rem_euclid(r.v as i64)) as f64);
            } else {
                break;
            }
        }
        Ok(v)
    }

    fn pow(&mut self) -> EdaResult<V> {
        let base = self.unary()?;
        if self.eat_op("**") {
            let e = self.pow()?;
            return Ok(base.join(e, base.v.powf(e.v)));
        }
        Ok(base)
    }

    fn unary(&mut self) -> EdaResult<V> {
        // Unary minus binds below `**` in TCL: -2**2 == -(2**2).
        if self.eat_op("-") {
            let v = self.pow()?;
            return Ok(V {
                v: -v.v,
                int: v.int,
            });
        }
        if self.eat_op("+") {
            return self.pow();
        }
        if self.eat_op("!") {
            let v = self.pow()?;
            return Ok(V::int(((v.v == 0.0) as i64) as f64));
        }
        self.primary()
    }

    fn primary(&mut self) -> EdaResult<V> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Num(v, int)) => {
                self.pos += 1;
                Ok(V { v, int })
            }
            Some(Tok::Str(s)) => {
                // Bare strings must be numeric in our numeric-only expr.
                self.pos += 1;
                let int = !s.contains('.') && !s.contains('e') && !s.contains('E');
                s.parse::<f64>()
                    .map(|v| V { v, int })
                    .map_err(|_| self.err(&format!("non-numeric operand `{s}`")))
            }
            Some(Tok::Op(o)) if o == "(" => {
                self.pos += 1;
                let v = self.ternary()?;
                if !self.eat_op(")") {
                    return Err(self.err("expected `)`"));
                }
                Ok(v)
            }
            Some(Tok::Op(f))
                if matches!(
                    f.as_str(),
                    "abs"
                        | "int"
                        | "round"
                        | "floor"
                        | "ceil"
                        | "min"
                        | "max"
                        | "pow"
                        | "sqrt"
                        | "log2"
                ) =>
            {
                self.pos += 1;
                if !self.eat_op("(") {
                    return Err(self.err(&format!("expected `(` after `{f}`")));
                }
                let mut args = vec![self.ternary()?];
                while self.eat_op(",") {
                    args.push(self.ternary()?);
                }
                if !self.eat_op(")") {
                    return Err(self.err("expected `)`"));
                }
                let vals: Vec<f64> = args.iter().map(|a| a.v).collect();
                let (v, int) = match (f.as_str(), vals.as_slice()) {
                    ("abs", [a]) => (a.abs(), args[0].int),
                    ("int", [a]) => (a.trunc(), true),
                    ("round", [a]) => (a.round(), true),
                    ("floor", [a]) => (a.floor(), true),
                    ("ceil", [a]) => (a.ceil(), true),
                    ("sqrt", [a]) => (a.sqrt(), false),
                    ("log2", [a]) => (a.log2(), false),
                    ("min", [a, b]) => (a.min(*b), args[0].int && args[1].int),
                    ("max", [a, b]) => (a.max(*b), args[0].int && args[1].int),
                    ("pow", [a, b]) => (a.powf(*b), args[0].int && args[1].int),
                    _ => return Err(self.err(&format!("wrong arity for `{f}`"))),
                };
                Ok(V { v, int })
            }
            _ => Err(self.err("expected operand")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: &str) -> String {
        eval_expr(s).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("1 + 2 * 3"), "7");
        assert_eq!(ev("(1 + 2) * 3"), "9");
        assert_eq!(ev("2 ** 10"), "1024");
        assert_eq!(ev("7 % 3"), "1");
        assert_eq!(ev("10 / 4"), "2"); // integer division
        assert_eq!(ev("10.0 / 4"), "2.5");
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("1 < 2"), "1");
        assert_eq!(ev("2 <= 1"), "0");
        assert_eq!(ev("1 == 1 && 2 != 3"), "1");
        assert_eq!(ev("0 || 1"), "1");
        assert_eq!(ev("!1"), "0");
    }

    #[test]
    fn ternary() {
        assert_eq!(ev("1 ? 10 : 20"), "10");
        assert_eq!(ev("0 ? 10 : 20"), "20");
    }

    #[test]
    fn unary_and_precedence() {
        assert_eq!(ev("-3 + 5"), "2");
        assert_eq!(ev("- 2 ** 2"), "-4");
    }

    #[test]
    fn functions() {
        assert_eq!(ev("max(3, 9)"), "9");
        assert_eq!(ev("min(3, 9)"), "3");
        assert_eq!(ev("abs(-4)"), "4");
        assert_eq!(ev("ceil(2.1)"), "3");
        assert_eq!(ev("floor(2.9)"), "2");
        assert_eq!(ev("pow(2, 8)"), "256");
        assert_eq!(ev("log2(1024)"), "10");
    }

    #[test]
    fn hex_and_floats() {
        assert_eq!(ev("0xFF"), "255");
        assert_eq!(ev("1.5e3"), "1500");
        assert_eq!(ev("1000.0 / (1.0 - -4.0)"), "200");
    }

    #[test]
    fn negative_wns_use_case() {
        // Eq. 1 with T = 1 ns, WNS = -4 ns.
        assert_eq!(ev("1000.0 / (1.0 - (-4.0))"), "200");
    }

    #[test]
    fn errors() {
        assert!(eval_expr("1 +").is_err());
        assert!(eval_expr("1 / 0").is_err());
        assert!(eval_expr("foo + 1").is_err());
        assert!(eval_expr("(1").is_err());
        assert!(eval_expr("1 2").is_err());
    }

    #[test]
    fn true_false_literals() {
        assert_eq!(ev("true && true"), "1");
        assert_eq!(ev("false || false"), "0");
    }

    #[test]
    fn format_num_integral() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(3.5), "3.5");
        assert_eq!(format_num(-0.0), "0");
    }
}
