//! A TCL-subset engine.
//!
//! Dovado "spawns Vivado as a subprocess and communicates with the physical
//! tool through the TCL interface" (§III-A3), customizing general script
//! frames at run time. The simulator therefore speaks TCL: scripts are
//! parsed ([`parser`]), substituted and executed ([`interp`]) with `expr`
//! support ([`expr`]); tool commands (`read_vhdl`, `synth_design`, …) are
//! provided by the embedding context (see [`crate::vivado`]).
//!
//! Supported subset: command/`;`/newline structure, `{}` braces, `"quotes"`,
//! `[command]` and `$variable` substitution, `\` escapes and line
//! continuation, comments, and the builtins `set`, `unset`, `puts`, `expr`,
//! `incr`, `if`/`elseif`/`else`, `foreach`, and `list`.

pub mod expr;
pub mod interp;
pub mod parser;

pub use interp::{Interp, TclContext};
pub use parser::{parse_script, Command, Word};
