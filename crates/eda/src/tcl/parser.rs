//! TCL script parsing: splits a script into commands and words, preserving
//! substitution structure for the interpreter.

use crate::error::{EdaError, EdaResult};

/// One substitutable fragment of a word.
#[derive(Debug, Clone, PartialEq)]
pub enum Part {
    /// Literal text.
    Lit(String),
    /// `$name` or `${name}` variable reference.
    Var(String),
    /// `[script]` command substitution (inner script, brackets stripped).
    Cmd(String),
}

/// One word of a command.
#[derive(Debug, Clone, PartialEq)]
pub enum Word {
    /// Bare or quoted word: a sequence of parts substituted at evaluation.
    Bare(Vec<Part>),
    /// `{braced}` word: literal, no substitution.
    Braced(String),
}

/// One command: a non-empty list of words.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// The words, in order; `words[0]` is the command name.
    pub words: Vec<Word>,
    /// 1-based line of the first word (for error messages).
    pub line: u32,
}

struct P<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    src: &'a str,
}

impl P<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, msg: &str) -> EdaError {
        EdaError::Tcl(format!(
            "line {}: {msg} (in script: {:.40}…)",
            self.line, self.src
        ))
    }
}

/// Parses a script into commands.
pub fn parse_script(src: &str) -> EdaResult<Vec<Command>> {
    let mut p = P {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        src,
    };
    let mut commands = Vec::new();

    loop {
        // Skip inter-command whitespace, command separators, comments.
        loop {
            match p.peek() {
                Some(c) if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';' => {
                    p.bump();
                }
                Some('#') => {
                    while let Some(c) = p.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        if p.peek().is_none() {
            break;
        }

        let line = p.line;
        let mut words = Vec::new();
        // Parse words until end of command.
        loop {
            // Intra-command whitespace (and line continuations).
            loop {
                match p.peek() {
                    Some(' ') | Some('\t') | Some('\r') => {
                        p.bump();
                    }
                    Some('\\') if p.chars.get(p.pos + 1) == Some(&'\n') => {
                        p.bump();
                        p.bump();
                    }
                    _ => break,
                }
            }
            match p.peek() {
                None | Some('\n') | Some(';') => {
                    p.bump();
                    break;
                }
                Some('{') => words.push(parse_braced(&mut p)?),
                Some('"') => words.push(parse_quoted(&mut p)?),
                _ => words.push(parse_bare(&mut p)?),
            }
        }
        if !words.is_empty() {
            commands.push(Command { words, line });
        }
    }
    Ok(commands)
}

fn parse_braced(p: &mut P<'_>) -> EdaResult<Word> {
    p.bump(); // {
    let mut depth = 1usize;
    let mut out = String::new();
    loop {
        match p.bump() {
            Some('{') => {
                depth += 1;
                out.push('{');
            }
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return Ok(Word::Braced(out));
                }
                out.push('}');
            }
            Some('\\') => {
                // Backslash inside braces is literal except before braces.
                match p.peek() {
                    Some('{') | Some('}') => {
                        out.push('\\');
                        out.push(p.bump().expect("peeked"));
                    }
                    _ => out.push('\\'),
                }
            }
            Some(c) => out.push(c),
            None => return Err(p.err("unterminated brace")),
        }
    }
}

fn parse_quoted(p: &mut P<'_>) -> EdaResult<Word> {
    p.bump(); // "
    let mut parts = Vec::new();
    let mut lit = String::new();
    loop {
        match p.peek() {
            Some('"') => {
                p.bump();
                if !lit.is_empty() {
                    parts.push(Part::Lit(lit));
                }
                return Ok(Word::Bare(parts));
            }
            Some('$') => {
                if !lit.is_empty() {
                    parts.push(Part::Lit(std::mem::take(&mut lit)));
                }
                parts.push(parse_var(p)?);
            }
            Some('[') => {
                if !lit.is_empty() {
                    parts.push(Part::Lit(std::mem::take(&mut lit)));
                }
                parts.push(parse_bracket(p)?);
            }
            Some('\\') => {
                p.bump();
                lit.push(unescape(
                    p.bump().ok_or_else(|| p.err("dangling backslash"))?,
                ));
            }
            Some(_) => lit.push(p.bump().expect("peeked")),
            None => return Err(p.err("unterminated quote")),
        }
    }
}

fn parse_bare(p: &mut P<'_>) -> EdaResult<Word> {
    let mut parts = Vec::new();
    let mut lit = String::new();
    loop {
        match p.peek() {
            None | Some(' ') | Some('\t') | Some('\r') | Some('\n') | Some(';') => break,
            Some('$') => {
                if !lit.is_empty() {
                    parts.push(Part::Lit(std::mem::take(&mut lit)));
                }
                parts.push(parse_var(p)?);
            }
            Some('[') => {
                if !lit.is_empty() {
                    parts.push(Part::Lit(std::mem::take(&mut lit)));
                }
                parts.push(parse_bracket(p)?);
            }
            Some('\\') => {
                p.bump();
                match p.peek() {
                    Some('\n') => break, // line continuation handled by caller
                    Some(_) => lit.push(unescape(p.bump().expect("peeked"))),
                    None => return Err(p.err("dangling backslash")),
                }
            }
            Some(_) => lit.push(p.bump().expect("peeked")),
        }
    }
    if !lit.is_empty() {
        parts.push(Part::Lit(lit));
    }
    Ok(Word::Bare(parts))
}

fn parse_var(p: &mut P<'_>) -> EdaResult<Part> {
    p.bump(); // $
    if p.peek() == Some('{') {
        p.bump();
        let mut name = String::new();
        loop {
            match p.bump() {
                Some('}') => return Ok(Part::Var(name)),
                Some(c) => name.push(c),
                None => return Err(p.err("unterminated ${…}")),
            }
        }
    }
    let mut name = String::new();
    while let Some(c) = p.peek() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            name.push(c);
            p.bump();
        } else {
            break;
        }
    }
    if name.is_empty() {
        return Err(p.err("`$` not followed by a variable name"));
    }
    Ok(Part::Var(name))
}

fn parse_bracket(p: &mut P<'_>) -> EdaResult<Part> {
    p.bump(); // [
    let mut depth = 1usize;
    let mut out = String::new();
    loop {
        match p.bump() {
            Some('[') => {
                depth += 1;
                out.push('[');
            }
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return Ok(Part::Cmd(out));
                }
                out.push(']');
            }
            Some(c) => out.push(c),
            None => return Err(p.err("unterminated bracket")),
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_commands_on_newline_and_semicolon() {
        let cmds = parse_script("set a 1\nset b 2; set c 3").unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[2].words.len(), 3);
    }

    #[test]
    fn comments_skipped() {
        let cmds = parse_script("# a comment\nset a 1").unwrap();
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].line, 2);
    }

    #[test]
    fn braced_word_is_literal() {
        let cmds = parse_script("if {$x > 1} {puts hi}").unwrap();
        assert_eq!(cmds[0].words.len(), 3);
        assert_eq!(cmds[0].words[1], Word::Braced("$x > 1".into()));
        assert_eq!(cmds[0].words[2], Word::Braced("puts hi".into()));
    }

    #[test]
    fn nested_braces() {
        let cmds = parse_script("proc x {} { if {1} { puts a } }").unwrap();
        assert_eq!(cmds[0].words[3], Word::Braced(" if {1} { puts a } ".into()));
    }

    #[test]
    fn variable_forms() {
        let cmds = parse_script("puts $abc-${d e}").unwrap();
        let Word::Bare(parts) = &cmds[0].words[1] else {
            panic!()
        };
        assert_eq!(
            parts,
            &vec![
                Part::Var("abc".into()),
                Part::Lit("-".into()),
                Part::Var("d e".into())
            ]
        );
    }

    #[test]
    fn bracket_substitution() {
        let cmds = parse_script("set f [report_utilization -file u.rpt]").unwrap();
        let Word::Bare(parts) = &cmds[0].words[2] else {
            panic!()
        };
        assert_eq!(
            parts,
            &vec![Part::Cmd("report_utilization -file u.rpt".into())]
        );
    }

    #[test]
    fn quoted_word_with_substitutions() {
        let cmds = parse_script(r#"puts "value: $x [get_it] end""#).unwrap();
        let Word::Bare(parts) = &cmds[0].words[1] else {
            panic!()
        };
        // Lit("value: "), Var(x), Lit(" "), Cmd(get_it), Lit(" end")
        assert_eq!(parts.len(), 5);
        assert!(matches!(&parts[1], Part::Var(v) if v == "x"));
        assert!(matches!(&parts[3], Part::Cmd(c) if c == "get_it"));
    }

    #[test]
    fn line_continuation_joins_commands() {
        let cmds = parse_script("synth_design -top box \\\n  -part xc7k70t").unwrap();
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].words.len(), 5);
    }

    #[test]
    fn escapes_in_bare_words() {
        let cmds = parse_script(r"puts a\ b").unwrap();
        let Word::Bare(parts) = &cmds[0].words[1] else {
            panic!()
        };
        assert_eq!(parts, &vec![Part::Lit("a b".into())]);
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(parse_script("set a {oops").is_err());
        assert!(parse_script("set a \"oops").is_err());
        assert!(parse_script("set a [oops").is_err());
        assert!(parse_script("set a ${oops").is_err());
    }

    #[test]
    fn empty_script_is_empty() {
        assert!(parse_script("").unwrap().is_empty());
        assert!(parse_script("\n\n  # just a comment\n").unwrap().is_empty());
    }
}
