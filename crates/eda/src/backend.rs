//! The backend seam: TCL and sources in, reports and checkpoints out.
//!
//! Dovado's core claim is that it never looks *inside* the EDA tool — it
//! writes TCL scripts, spawns a tool process, and scrapes text reports.
//! [`ToolBackend`] is that contract as a trait: a backend mints
//! [`ToolSession`]s (one per tool invocation, as Dovado spawns one Vivado
//! per evaluation), and a session exposes only the file-and-script surface
//! the real tool does, plus two observability hooks — a simulated-cost
//! ledger ([`ToolSession::elapsed_s`]) and the shared fault injector
//! ([`ToolBackend::injector`]).
//!
//! Two implementations ship in-tree:
//! - [`SimBackend`] adapts the full [`VivadoSim`] simulator (architecture
//!   models, directive trade-offs, incremental checkpoints) and is the
//!   default for every evaluator.
//! - [`MockBackend`] is a scripted interpreter over the same TCL frames:
//!   deterministic closed-form metrics, identical report shapes (it reuses
//!   the real report writers) and the identical error taxonomy, at a
//!   fraction of the cost. Tests use it to prove the engine above this
//!   seam is backend-agnostic.

use crate::error::{EdaError, EdaResult};
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::hash::{combine, fnv1a, hash_str, splitmix64};
use crate::netlist::Netlist;
use crate::place_route::ImplResult;
use crate::power::{write_power_report, PowerEstimate};
use crate::report::{write_timing_report, write_utilization_report};
use crate::{CheckpointStore, VivadoSim};
use dovado_fpga::{Catalog, Part, ResourceKind, ResourceSet};
use std::collections::BTreeMap;

/// One tool invocation: a private filesystem plus a TCL interpreter.
///
/// Sessions are single-use — the evaluation engine opens a fresh one per
/// attempt, exactly as Dovado spawns a fresh Vivado process per run.
pub trait ToolSession {
    /// Writes `content` at `path` in the session's filesystem (sources,
    /// checkpoint bases, …) before or between scripts.
    fn write_file(&mut self, path: &str, content: String);

    /// Reads a file the tool produced (reports, logs); `None` when the
    /// path does not exist.
    fn read_file(&self, path: &str) -> Option<&str>;

    /// Executes a TCL script against the session, returning the last
    /// command's result text.
    fn eval(&mut self, script: &str) -> EdaResult<String>;

    /// Cost hook: simulated tool seconds this session has burned so far,
    /// including work wasted by injected faults.
    fn elapsed_s(&self) -> f64;

    /// Whether the session satisfied a flow stage from an exact prior
    /// checkpoint (the tool-level cache, distinct from the persistent
    /// evaluation store).
    fn used_exact_checkpoint(&self) -> bool;

    /// Snapshot of the session's filesystem (path → content): sources
    /// the caller wrote plus artifacts the tool produced. Remote
    /// transports ship this across the wire so `read_file` stays local.
    fn files(&self) -> Vec<(String, String)>;
}

/// A tool installation Dovado can drive: mints sessions and carries the
/// cross-session state (checkpoint store, fault stream).
pub trait ToolBackend: Send + Sync {
    /// Stable backend identifier; folded into persistent-store keys so
    /// different backends never answer for each other.
    fn name(&self) -> &str;

    /// Opens a fresh single-use session.
    fn open_session(&self) -> Box<dyn ToolSession + Send>;

    /// Fault-injection hook: the deterministic fault stream shared by
    /// every session of this backend (and by the exploration loop for
    /// host-level faults). `None` = clean runs.
    fn injector(&self) -> Option<&FaultInjector>;
}

// ---------------------------------------------------------------------------
// Simulator adapter
// ---------------------------------------------------------------------------

/// The [`VivadoSim`] simulator behind the [`ToolBackend`] seam.
///
/// This adapter is the only place the evaluation stack names the concrete
/// simulator: sessions share one [`CheckpointStore`] (the incremental
/// flow works across parallel evaluations) and one [`FaultInjector`]
/// stream (retries consume fresh draws instead of replaying faults).
#[derive(Clone)]
pub struct SimBackend {
    seed: u64,
    checkpoints: CheckpointStore,
    injector: Option<FaultInjector>,
}

impl SimBackend {
    /// A clean simulator backend with the given tool-noise seed.
    pub fn new(seed: u64) -> SimBackend {
        SimBackend {
            seed,
            checkpoints: CheckpointStore::new(),
            injector: None,
        }
    }

    /// A simulator backend with fault injection; an inactive plan (all
    /// probabilities zero) behaves exactly like [`SimBackend::new`].
    pub fn with_faults(seed: u64, plan: FaultPlan) -> SimBackend {
        SimBackend {
            injector: plan.is_active().then(|| FaultInjector::new(plan)),
            ..SimBackend::new(seed)
        }
    }
}

impl ToolBackend for SimBackend {
    fn name(&self) -> &str {
        "vivado-sim"
    }

    fn open_session(&self) -> Box<dyn ToolSession + Send> {
        let mut sim = VivadoSim::new(self.seed);
        sim.set_checkpoint_store(self.checkpoints.clone());
        if let Some(injector) = &self.injector {
            sim.set_fault_injector(injector.clone());
        }
        Box::new(SimSession { sim })
    }

    fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }
}

struct SimSession {
    sim: VivadoSim,
}

impl ToolSession for SimSession {
    fn write_file(&mut self, path: &str, content: String) {
        self.sim.write_file(path, content);
    }

    fn read_file(&self, path: &str) -> Option<&str> {
        self.sim.read_file(path)
    }

    fn eval(&mut self, script: &str) -> EdaResult<String> {
        self.sim.eval(script)
    }

    fn elapsed_s(&self) -> f64 {
        self.sim.sim_time_s
    }

    fn used_exact_checkpoint(&self) -> bool {
        self.sim
            .journal
            .iter()
            .any(|l| l.contains("exact checkpoint reuse"))
    }

    fn files(&self) -> Vec<(String, String)> {
        self.sim.files()
    }
}

// ---------------------------------------------------------------------------
// Scripted mock
// ---------------------------------------------------------------------------

/// A scripted tool: same TCL surface, same report shapes, same error
/// taxonomy as the simulator, but metrics come from a closed-form model
/// of the loaded sources instead of architecture elaboration.
///
/// Every answer is a pure function of (sources, part, top, directives,
/// period, seed), so runs are bitwise reproducible — which is what lets
/// the crash/resume suite prove journal replay is backend-independent.
#[derive(Clone)]
pub struct MockBackend {
    seed: u64,
    injector: Option<FaultInjector>,
    spin_ms: u64,
}

impl MockBackend {
    /// A clean mock backend.
    pub fn new(seed: u64) -> MockBackend {
        MockBackend {
            seed,
            injector: None,
            spin_ms: 0,
        }
    }

    /// A mock backend with fault injection; an inactive plan behaves
    /// exactly like [`MockBackend::new`].
    pub fn with_faults(seed: u64, plan: FaultPlan) -> MockBackend {
        MockBackend {
            injector: plan.is_active().then(|| FaultInjector::new(plan)),
            ..MockBackend::new(seed)
        }
    }

    /// Makes `synth_design` and `route_design` sleep `ms` wall-clock
    /// milliseconds each, standing in for real tool runtime. Purely a
    /// benchmarking knob: simulated costs, metrics, and reports are
    /// bitwise unaffected.
    pub fn with_spin_ms(mut self, ms: u64) -> MockBackend {
        self.spin_ms = ms;
        self
    }
}

impl ToolBackend for MockBackend {
    fn name(&self) -> &str {
        "mock"
    }

    fn open_session(&self) -> Box<dyn ToolSession + Send> {
        Box::new(MockSession {
            seed: self.seed,
            injector: self.injector.clone(),
            spin_ms: self.spin_ms,
            fs: BTreeMap::new(),
            elapsed_s: 0.0,
            part: None,
            top: None,
            sources: Vec::new(),
            period_ns: 1.0,
            synth_directive: "Default".into(),
            synthesized: false,
            placed: false,
            routed: false,
            impl_directive: "Default".into(),
            incremental: false,
        })
    }

    fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }
}

struct MockSession {
    seed: u64,
    injector: Option<FaultInjector>,
    /// Wall-clock sleep per synth/route call (benchmarking only).
    spin_ms: u64,
    fs: BTreeMap<String, String>,
    elapsed_s: f64,
    part: Option<Part>,
    top: Option<String>,
    /// Content hashes of the sources read so far, in read order.
    sources: Vec<u64>,
    period_ns: f64,
    synth_directive: String,
    synthesized: bool,
    placed: bool,
    routed: bool,
    impl_directive: String,
    incremental: bool,
}

impl MockSession {
    /// The design identity every metric derives from: sources as read,
    /// part, top, directive, and the backend seed.
    fn design_id(&self, directive: &str) -> u64 {
        let mut h = splitmix64(self.seed ^ 0x4D4F_434B);
        for s in &self.sources {
            h = combine(h, *s);
        }
        if let Some(part) = &self.part {
            h = combine(h, hash_str(&part.name));
        }
        if let Some(top) = &self.top {
            h = combine(h, hash_str(top));
        }
        combine(h, hash_str(directive))
    }

    /// Sum of the integer literals in the loaded sources — the mock's
    /// stand-in for design size. Parameter values appear as literals in
    /// the generated box, so bigger configurations read as bigger designs.
    fn design_size(&self) -> u64 {
        let mut size = 0u64;
        for content in self.fs.values() {
            let mut current = 0u64;
            let mut in_number = false;
            for c in content.chars() {
                if let Some(d) = c.to_digit(10) {
                    current = current.saturating_mul(10).saturating_add(d as u64);
                    in_number = true;
                } else if in_number {
                    size = size.saturating_add(current);
                    current = 0;
                    in_number = false;
                }
            }
            size = size.saturating_add(current);
        }
        size
    }

    fn used_resources(&self, id: u64, size: u64) -> ResourceSet {
        ResourceSet::from_pairs(&[
            (ResourceKind::Lut, 64 + size / 3 + splitmix64(id) % 24),
            (
                ResourceKind::Register,
                128 + size / 2 + splitmix64(id ^ 1) % 48,
            ),
            (ResourceKind::Bram, size / 16_384),
            (ResourceKind::Dsp, size / 65_536),
        ])
    }

    /// Critical-path delay in ns after `stage` ("synth" estimates are
    /// optimistic; "route" adds routing pessimism), smooth in design size
    /// with a small deterministic directive-dependent ripple.
    fn delay_ns(&self, id: u64, size: u64, routed: bool) -> f64 {
        let base = 0.6 + 0.12 * ((1 + size) as f64).ln();
        let ripple = 1.0 + (splitmix64(id ^ 0xDE1A) % 1000) as f64 / 20_000.0;
        let stage = if routed { 1.3 } else { 1.0 };
        base * ripple * stage
    }

    fn roll_stage_fault(
        &mut self,
        stage: &str,
        timeout: FaultKind,
        crash: FaultKind,
    ) -> EdaResult<()> {
        let Some(inj) = self.injector.clone() else {
            return Ok(());
        };
        if inj.fires(timeout) {
            self.elapsed_s += inj.plan().timeout_cost_s;
            return Err(EdaError::Timeout(format!(
                "{stage} exceeded its time budget"
            )));
        }
        if inj.fires(crash) {
            self.elapsed_s += inj.plan().crash_cost_s;
            return Err(EdaError::ToolCrash(format!("{stage} died unexpectedly")));
        }
        Ok(())
    }

    /// Report-write fault surface, mirroring the simulator: each report
    /// rolls truncation then garbling.
    fn finish_report(&mut self, args: &[&str], text: String) -> EdaResult<String> {
        let text = match self.injector.clone() {
            Some(inj) if inj.fires(FaultKind::ReportTruncated) => {
                inj.mangle_report(FaultKind::ReportTruncated, &text)
            }
            Some(inj) if inj.fires(FaultKind::ReportGarbled) => {
                inj.mangle_report(FaultKind::ReportGarbled, &text)
            }
            _ => text,
        };
        self.elapsed_s += 0.1;
        if let Some(i) = args.iter().position(|a| *a == "-file") {
            let path = args
                .get(i + 1)
                .ok_or_else(|| EdaError::Tcl("-file needs a path".into()))?;
            self.fs.insert(path.to_string(), text);
            return Ok(String::new());
        }
        Ok(text)
    }

    /// Burns real wall-clock time when the spin knob is set.
    fn spin(&self) {
        if self.spin_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.spin_ms));
        }
    }

    fn require_synthesized(&self, cmd: &str) -> EdaResult<()> {
        if self.synthesized {
            Ok(())
        } else {
            Err(EdaError::FlowOrder(format!("{cmd}: no synthesized design")))
        }
    }

    fn flag_value<'a>(args: &[&'a str], flag: &str) -> Option<&'a str> {
        args.iter()
            .position(|a| *a == flag)
            .and_then(|i| args.get(i + 1))
            .copied()
    }

    fn run_command(&mut self, line: &str) -> EdaResult<String> {
        let tokens: Vec<&str> = line
            .split_whitespace()
            .map(|t| t.trim_matches(|c| c == '[' || c == ']'))
            .collect();
        let (cmd, args) = tokens.split_first().expect("blank lines filtered");
        match *cmd {
            "create_project" => {
                let name = Self::flag_value(args, "-part")
                    .ok_or_else(|| EdaError::Tcl("create_project: missing -part".into()))?;
                let part = Catalog::builtin()
                    .resolve(name)
                    .cloned()
                    .ok_or_else(|| EdaError::UnknownPart(name.to_string()))?;
                self.part = Some(part);
                self.elapsed_s += 1.0;
                Ok(String::new())
            }
            "read_vhdl" | "read_verilog" => {
                let path = args
                    .iter()
                    .rev()
                    .find(|a| !a.starts_with('-'))
                    .ok_or_else(|| EdaError::Tcl(format!("{cmd}: missing path")))?;
                let content = self
                    .fs
                    .get(*path)
                    .ok_or_else(|| EdaError::FileNotFound(path.to_string()))?;
                self.sources.push(fnv1a(content.as_bytes()));
                self.elapsed_s += 0.2;
                Ok(String::new())
            }
            "set_property" => {
                if args.first() == Some(&"top") {
                    self.top = args.get(1).map(|s| s.to_string());
                }
                Ok(String::new())
            }
            "read_checkpoint" => {
                let path = args
                    .iter()
                    .find(|a| !a.starts_with('-'))
                    .ok_or_else(|| EdaError::Tcl("read_checkpoint: missing path".into()))?
                    .to_string();
                if !self.fs.contains_key(&path) {
                    return Err(EdaError::Checkpoint(format!(
                        "checkpoint `{path}` does not exist"
                    )));
                }
                if let Some(inj) = self.injector.clone() {
                    if inj.fires(FaultKind::CheckpointCorrupt) {
                        self.fs.remove(&path);
                        return Err(EdaError::Checkpoint(format!(
                            "checkpoint `{path}` is corrupt"
                        )));
                    }
                }
                self.incremental = args.contains(&"-incremental");
                self.elapsed_s += 0.5;
                Ok(String::new())
            }
            "synth_design" => {
                self.roll_stage_fault(
                    "synth_design",
                    FaultKind::SynthTimeout,
                    FaultKind::SynthCrash,
                )?;
                let part = self
                    .part
                    .clone()
                    .ok_or_else(|| EdaError::FlowOrder("no project open".into()))?;
                if let Some(d) = Self::flag_value(args, "-directive") {
                    self.synth_directive = d.to_string();
                }
                if let Some(t) = Self::flag_value(args, "-top") {
                    self.top = Some(t.to_string());
                }
                let size = self.design_size();
                let used = self.used_resources(self.design_id(&self.synth_directive), size);
                if !used.fits_within(&part.capacity) {
                    let worst = used
                        .overflows(&part.capacity)
                        .into_iter()
                        .map(|(k, n)| format!("{} over by {n}", k.report_label()))
                        .collect::<Vec<_>>()
                        .join(", ");
                    return Err(EdaError::ResourceOverflow(worst));
                }
                let factor = if self.incremental { 0.6 } else { 1.0 };
                self.elapsed_s += (20.0 + size as f64 / 50.0) * factor;
                self.spin();
                self.synthesized = true;
                Ok(String::new())
            }
            "create_clock" => {
                let period: f64 = Self::flag_value(args, "-period")
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| EdaError::Tcl("create_clock: missing -period".into()))?;
                if period <= 0.0 {
                    return Err(EdaError::Tcl(format!("non-positive period {period}")));
                }
                self.period_ns = period;
                Ok(String::new())
            }
            "opt_design" => {
                self.require_synthesized(cmd)?;
                self.elapsed_s += 2.0;
                Ok(String::new())
            }
            "place_design" => {
                self.require_synthesized(cmd)?;
                self.placed = true;
                self.elapsed_s += 3.0;
                Ok(String::new())
            }
            "route_design" => {
                self.roll_stage_fault(
                    "route_design",
                    FaultKind::RouteTimeout,
                    FaultKind::RouteCrash,
                )?;
                self.require_synthesized(cmd)?;
                if let Some(d) = Self::flag_value(args, "-directive") {
                    self.impl_directive = d.to_string();
                }
                let size = self.design_size();
                self.elapsed_s += 10.0 + size as f64 / 80.0;
                self.spin();
                self.routed = true;
                Ok(String::new())
            }
            "report_utilization" => {
                self.require_synthesized(cmd)?;
                let part = self.part.clone().expect("synthesized implies project");
                let size = self.design_size();
                let used = self.used_resources(self.design_id(&self.synth_directive), size);
                let module = self.top.clone().unwrap_or_default();
                let text = write_utilization_report(&module, &used, &part);
                self.finish_report(args, text)
            }
            "report_timing_summary" => {
                self.require_synthesized(cmd)?;
                let text = self.timing_report();
                self.finish_report(args, text)
            }
            "report_power" => {
                self.require_synthesized(cmd)?;
                let size = self.design_size();
                let used = self.used_resources(self.design_id(&self.synth_directive), size);
                let clock_mhz = 1000.0 / self.period_ns;
                let est = PowerEstimate {
                    static_mw: 105.0,
                    dynamic_mw: (used.get(ResourceKind::Lut) + used.get(ResourceKind::Register))
                        as f64
                        * 0.002
                        * clock_mhz,
                };
                let module = self.top.clone().unwrap_or_default();
                let text = write_power_report(&module, &est, clock_mhz);
                self.finish_report(args, text)
            }
            "write_checkpoint" => {
                let path = args
                    .iter()
                    .find(|a| !a.starts_with('-'))
                    .ok_or_else(|| EdaError::Tcl("write_checkpoint: missing path".into()))?;
                self.fs.insert(path.to_string(), "mock-dcp".to_string());
                self.elapsed_s += 0.5;
                Ok(String::new())
            }
            other => Err(EdaError::Tcl(format!("invalid command name \"{other}\""))),
        }
    }

    fn timing_report(&self) -> String {
        let directive = if self.routed {
            &self.impl_directive
        } else {
            &self.synth_directive
        };
        let size = self.design_size();
        let id = self.design_id(directive);
        let delay = self.delay_ns(id, size, self.routed);
        let module = self.top.clone().unwrap_or_default();
        let mut netlist = Netlist::empty(&module);
        netlist.crit_path = format!("{module}/BOXED (mock path, {size} units)");
        let used = self.used_resources(id, size);
        let result = ImplResult {
            netlist,
            utilization: self
                .part
                .as_ref()
                .map(|p| used.peak_utilization(&p.capacity))
                .unwrap_or(0.0),
            crit_delay_ns: delay,
            wns_ns: self.period_ns - delay,
            period_ns: self.period_ns,
            runtime_s: self.elapsed_s,
            log: String::new(),
        };
        write_timing_report(&module, &result)
    }
}

impl ToolSession for MockSession {
    fn write_file(&mut self, path: &str, content: String) {
        self.fs.insert(path.to_string(), content);
    }

    fn read_file(&self, path: &str) -> Option<&str> {
        self.fs.get(path).map(String::as_str)
    }

    fn eval(&mut self, script: &str) -> EdaResult<String> {
        let mut last = String::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            last = self.run_command(line)?;
        }
        Ok(last)
    }

    fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    fn used_exact_checkpoint(&self) -> bool {
        false
    }

    fn files(&self) -> Vec<(String, String)> {
        self.fs
            .iter()
            .map(|(p, c)| (p.clone(), c.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
create_project dovado -part xc7k70tfbv676-1
read_verilog -sv src/fifo.sv
set_property top fifo [current_fileset]
synth_design -top fifo -part xc7k70tfbv676-1 -directive Default
create_clock -period 1.000 -name clk [get_ports clk_i]
report_utilization -file util.rpt
report_timing_summary -file timing.rpt
report_power -file power.rpt
";

    fn session_with_source(backend: &dyn ToolBackend, depth: u64) -> Box<dyn ToolSession + Send> {
        let mut s = backend.open_session();
        s.write_file(
            "src/fifo.sv",
            format!("module fifo #(parameter DEPTH = {depth})(input logic clk_i); endmodule"),
        );
        s
    }

    #[test]
    fn mock_runs_the_synth_frame_and_writes_parseable_reports() {
        let backend = MockBackend::new(7);
        let mut s = session_with_source(&backend, 64);
        s.eval(SCRIPT).unwrap();
        let util = crate::report::parse_utilization_report(s.read_file("util.rpt").unwrap());
        assert!(util.unwrap().get(ResourceKind::Lut) > 0);
        let timing = s.read_file("timing.rpt").unwrap();
        assert!(crate::report::parse_wns(timing).is_ok());
        assert!(crate::report::parse_period(timing).is_ok());
        let power = crate::power::parse_power_mw(s.read_file("power.rpt").unwrap());
        assert!(power.unwrap() > 0.0);
        assert!(s.elapsed_s() > 0.0);
    }

    #[test]
    fn mock_is_bitwise_deterministic() {
        let backend = MockBackend::new(7);
        let run = || {
            let mut s = session_with_source(&backend, 64);
            s.eval(SCRIPT).unwrap();
            s.read_file("timing.rpt").unwrap().to_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mock_size_model_is_monotone() {
        let backend = MockBackend::new(7);
        let wns_at = |depth: u64| {
            let mut s = session_with_source(&backend, depth);
            s.eval(SCRIPT).unwrap();
            crate::report::parse_wns(s.read_file("timing.rpt").unwrap()).unwrap()
        };
        assert!(wns_at(8) > wns_at(4096), "bigger designs must be slower");
    }

    #[test]
    fn mock_rejects_unknown_commands_and_parts() {
        let backend = MockBackend::new(7);
        let mut s = backend.open_session();
        assert!(matches!(
            s.eval("create_project x -part xc9unknown"),
            Err(EdaError::UnknownPart(_))
        ));
        assert!(matches!(s.eval("frobnicate"), Err(EdaError::Tcl(_))));
        assert!(matches!(
            s.eval("route_design"),
            Err(EdaError::FlowOrder(_))
        ));
    }

    #[test]
    fn synthesis_only_session_warms_a_subsequent_full_run() {
        // The multi-fidelity contract behind `--explorer auto`: a
        // synthesis-only probe leaves a synth checkpoint behind, and a
        // later full (synth + implementation) run on the same backend
        // resumes from it instead of re-synthesizing.
        let full_script = format!(
            "{SCRIPT}write_checkpoint -force post_synth.dcp\n\
             opt_design\nplace_design\nroute_design -directive Default\n"
        );
        let full_run = |backend: &SimBackend| {
            let mut s = session_with_source(backend, 64);
            s.eval(&full_script).unwrap();
            (s.elapsed_s(), s.used_exact_checkpoint())
        };
        let (cold_full, reused_cold) = full_run(&SimBackend::new(42));
        assert!(!reused_cold);

        let warmed = SimBackend::new(42);
        let mut probe = session_with_source(&warmed, 64);
        probe
            .eval(&format!("{SCRIPT}write_checkpoint -force post_synth.dcp\n"))
            .unwrap();
        assert!(!probe.used_exact_checkpoint(), "probe ran cold");
        let (warm_full, reused_warm) = full_run(&warmed);
        assert!(
            reused_warm,
            "full run must reuse the probe's synth checkpoint"
        );
        assert!(
            warm_full < cold_full,
            "warmed full run ({warm_full}s) must beat cold ({cold_full}s)"
        );
    }

    #[test]
    fn sim_backend_sessions_share_checkpoints() {
        let backend = SimBackend::new(42);
        let run = || {
            let mut s = session_with_source(&backend, 64);
            s.eval(&format!("{SCRIPT}write_checkpoint -force post_synth.dcp\n"))
                .unwrap();
            (s.elapsed_s(), s.used_exact_checkpoint())
        };
        let (cold, reused_cold) = run();
        let (warm, reused_warm) = run();
        assert!(!reused_cold);
        assert!(
            reused_warm,
            "second identical run must reuse the checkpoint"
        );
        assert!(warm < cold);
    }
}
