//! # dovado-eda
//!
//! A simulated EDA flow standing in for Xilinx Vivado in the Dovado
//! reproduction.
//!
//! The real Dovado never inspects Vivado internals: it writes TCL scripts,
//! spawns the tool, and scrapes text reports. This crate exposes exactly
//! that interface — [`VivadoSim::eval`] executes a TCL subset whose command
//! set covers Dovado's script frames (`read_vhdl`/`read_verilog`,
//! `synth_design -generic`, `create_clock`, `place_design`/`route_design`,
//! `report_utilization`/`report_timing_summary -file`, checkpoints and the
//! incremental flow) — while the physics behind it is synthetic:
//! architecture cost models ([`models`]) elaborate parsed modules into
//! [`Netlist`] summaries, and the synthesis/place-route engines apply
//! directive trade-offs, congestion-aware timing, and deterministic noise.
//!
//! ```
//! use dovado_eda::VivadoSim;
//!
//! let mut vivado = VivadoSim::new(42);
//! vivado.write_file("fifo.sv",
//!     "module fifo_v3 #(parameter DEPTH = 8, parameter DATA_WIDTH = 32)\
//!      (input logic clk_i); endmodule");
//! vivado.eval("
//!     create_project demo -part xc7k70tfbv676-1
//!     read_verilog -sv fifo.sv
//!     synth_design -top fifo_v3 -generic DEPTH=64
//!     create_clock -period 1.000 [get_ports clk_i]
//!     route_design
//! ").unwrap();
//! let fmax = vivado.impl_result().unwrap().fmax_mhz();
//! assert!(fmax > 100.0);
//! ```

#![warn(missing_docs)]

pub mod archmodel;
pub mod backend;
pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod hash;
pub mod models;
pub mod netlist;
pub mod place_route;
pub mod power;
pub mod project;
pub mod remote;
pub mod report;
pub mod store;
pub mod synth;
pub mod tcl;
pub mod vivado;

pub use archmodel::{bind_parameters, ArchModel, ElabContext, ModelRegistry};
pub use backend::{MockBackend, SimBackend, ToolBackend, ToolSession};
pub use checkpoint::{Checkpoint, CheckpointStore, FlowStep, Reuse};
pub use error::{EdaError, EdaResult};
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use netlist::Netlist;
pub use place_route::{ImplDirective, ImplResult};
pub use project::{ClockConstraint, Project, SourceUnit};
pub use remote::{RemoteBackend, WorkerLifecycle, PROTOCOL_VERSION};
pub use store::{
    CompactStats, EvalKey, EvalStore, EvictionHook, SHARD_COUNT, SHARD_PREFIX_LEN,
    STORE_FORMAT_VERSION,
};
pub use synth::{SynthDirective, SynthResult};
pub use vivado::{FlowState, VivadoSim};
