//! The simulated Vivado session.
//!
//! [`VivadoSim`] is what Dovado "spawns": it holds a virtual filesystem
//! (sources in, reports out), a [`Project`], the flow engines, a checkpoint
//! store, and a simulated wall clock. All interaction goes through
//! [`VivadoSim::eval`] — a TCL script, exactly as the real tool is driven —
//! though each command is also callable directly for tests.
//!
//! Implemented command set (the subset Dovado's script frames use):
//! `create_project`, `set_property`, `current_fileset`, `current_project`,
//! `read_vhdl`, `read_verilog`, `get_ports`, `create_clock`,
//! `synth_design`, `opt_design`, `place_design`, `route_design`,
//! `report_utilization`, `report_timing_summary`, `report_timing`,
//! `write_checkpoint`, `read_checkpoint`, `file`, `exit`/`quit`.

use crate::archmodel::ModelRegistry;
use crate::checkpoint::{Checkpoint, CheckpointStore, FlowStep, Reuse};
use crate::error::{EdaError, EdaResult};
use crate::fault::{FaultInjector, FaultKind};
use crate::hash::{combine, hash_str};
use crate::place_route::{
    estimate_timing, impl_runtime_s, place_and_route, ImplDirective, ImplResult,
};
use crate::project::{ClockConstraint, Project};
use crate::report;
use crate::synth::{synth_runtime_s, synthesize, SynthDirective, SynthResult};
use crate::tcl::{Interp, TclContext};
use dovado_fpga::Catalog;
use dovado_hdl::Language;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Flow progress of the open project.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// Sources loaded, nothing run.
    Fresh,
    /// `synth_design` done.
    Synthesized,
    /// `place_design` done.
    Placed,
    /// `route_design` done.
    Routed,
}

/// A simulated Vivado process.
pub struct VivadoSim {
    catalog: Catalog,
    registry: Arc<ModelRegistry>,
    checkpoints: CheckpointStore,
    /// Virtual filesystem: sources are written here before `read_*`,
    /// reports are written here by `report_* -file`.
    fs: BTreeMap<String, String>,
    project: Option<Project>,
    state: FlowState,
    synth_result: Option<SynthResult>,
    impl_result: Option<ImplResult>,
    /// Whether the next synth/impl step may use the incremental flow.
    incremental_requested: bool,
    /// Optional fault injector (see [`crate::fault`]); `None` = clean runs.
    faults: Option<FaultInjector>,
    /// Base seed for flow noise.
    seed: u64,
    /// Accumulated simulated tool time, in seconds.
    pub sim_time_s: f64,
    /// Per-command journal (what a real run's vivado.log would show).
    pub journal: Vec<String>,
}

impl VivadoSim {
    /// Creates a session with the built-in catalog and models.
    pub fn new(seed: u64) -> VivadoSim {
        VivadoSim::with_registry(seed, Arc::new(ModelRegistry::with_builtin_models()))
    }

    /// Creates a session with a custom model registry.
    pub fn with_registry(seed: u64, registry: Arc<ModelRegistry>) -> VivadoSim {
        VivadoSim {
            catalog: Catalog::builtin(),
            registry,
            checkpoints: CheckpointStore::new(),
            fs: BTreeMap::new(),
            project: None,
            state: FlowState::Fresh,
            synth_result: None,
            impl_result: None,
            incremental_requested: false,
            faults: None,
            seed,
            sim_time_s: 0.0,
            journal: Vec::new(),
        }
    }

    /// Attaches a fault injector. Sessions sharing a (cloned) injector
    /// draw from one deterministic fault stream.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Rolls for a crash/timeout fault pair at a flow stage; on a hit,
    /// charges the wasted simulated time and returns the error.
    fn roll_stage_fault(
        &mut self,
        stage: &str,
        timeout: FaultKind,
        crash: FaultKind,
    ) -> EdaResult<()> {
        let Some(inj) = self.faults.clone() else {
            return Ok(());
        };
        if inj.fires(timeout) {
            self.sim_time_s += inj.plan().timeout_cost_s;
            self.log(format!("{stage}: killed after exceeding time budget"));
            return Err(EdaError::Timeout(format!(
                "{stage} exceeded its time budget"
            )));
        }
        if inj.fires(crash) {
            self.sim_time_s += inj.plan().crash_cost_s;
            self.log(format!("{stage}: tool process died unexpectedly"));
            return Err(EdaError::ToolCrash(format!("{stage} died unexpectedly")));
        }
        Ok(())
    }

    /// Shares a checkpoint store across sessions (Dovado's incremental flow
    /// persists checkpoints between Vivado invocations).
    pub fn set_checkpoint_store(&mut self, store: CheckpointStore) {
        self.checkpoints = store;
    }

    /// The session's checkpoint store.
    pub fn checkpoint_store(&self) -> CheckpointStore {
        self.checkpoints.clone()
    }

    /// Writes a file into the virtual filesystem.
    pub fn write_file(&mut self, path: impl Into<String>, content: impl Into<String>) {
        self.fs.insert(path.into(), content.into());
    }

    /// Reads a file from the virtual filesystem.
    pub fn read_file(&self, path: &str) -> Option<&str> {
        self.fs.get(path).map(String::as_str)
    }

    /// Snapshot of the whole virtual filesystem (path → content), for
    /// transports that mirror session files across a process boundary.
    pub fn files(&self) -> Vec<(String, String)> {
        self.fs
            .iter()
            .map(|(p, c)| (p.clone(), c.clone()))
            .collect()
    }

    /// Evaluates a TCL script against this session.
    pub fn eval(&mut self, script: &str) -> EdaResult<String> {
        let mut interp = Interp::new();
        interp.eval(self, script)
    }

    /// Evaluates a TCL script, returning the collected `puts` output too.
    pub fn eval_with_output(&mut self, script: &str) -> EdaResult<(String, String)> {
        let mut interp = Interp::new();
        let result = interp.eval(self, script)?;
        Ok((result, interp.output))
    }

    /// Current flow state.
    pub fn state(&self) -> FlowState {
        self.state
    }

    /// Result of the last `synth_design`, if any.
    pub fn synth_result(&self) -> Option<&SynthResult> {
        self.synth_result.as_ref()
    }

    /// Result of the last `route_design`, if any.
    pub fn impl_result(&self) -> Option<&ImplResult> {
        self.impl_result.as_ref()
    }

    /// The open project.
    pub fn project(&self) -> Option<&Project> {
        self.project.as_ref()
    }

    fn project_mut(&mut self) -> EdaResult<&mut Project> {
        self.project
            .as_mut()
            .ok_or_else(|| EdaError::FlowOrder("no project open (run create_project)".into()))
    }

    fn log(&mut self, msg: String) {
        self.journal.push(msg);
    }

    // ---- command implementations -------------------------------------

    fn cmd_create_project(&mut self, args: &[String]) -> EdaResult<String> {
        let mut name = None;
        let mut part_name = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "-part" => {
                    part_name = Some(args.get(i + 1).cloned().ok_or_else(|| {
                        EdaError::Tcl("create_project: -part needs a value".into())
                    })?);
                    i += 2;
                }
                "-in_memory" | "-force" => i += 1,
                a if name.is_none() => {
                    name = Some(a.to_string());
                    i += 1;
                }
                _ => i += 1, // project directory — irrelevant in-memory
            }
        }
        let name = name.ok_or_else(|| EdaError::Tcl("create_project: missing name".into()))?;
        let part_name = part_name.unwrap_or_else(|| "xc7k70tfbv676-1".into());
        let part = self
            .catalog
            .resolve(&part_name)
            .ok_or_else(|| EdaError::UnknownPart(part_name.clone()))?
            .clone();
        self.project = Some(Project::new(&name, part));
        self.state = FlowState::Fresh;
        self.synth_result = None;
        self.impl_result = None;
        self.sim_time_s += 2.0;
        self.log(format!("create_project {name} (part {part_name})"));
        Ok(name)
    }

    fn cmd_read_hdl(&mut self, language: Language, args: &[String]) -> EdaResult<String> {
        let mut library: Option<String> = None;
        let mut lang = language;
        let mut paths = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "-library" | "-lib" => {
                    library =
                        Some(args.get(i + 1).cloned().ok_or_else(|| {
                            EdaError::Tcl("read_*: -library needs a value".into())
                        })?);
                    i += 2;
                }
                "-sv" => {
                    lang = Language::SystemVerilog;
                    i += 1;
                }
                "-vhdl2008" => i += 1,
                p => {
                    paths.push(p.to_string());
                    i += 1;
                }
            }
        }
        if paths.is_empty() {
            return Err(EdaError::Tcl("read_*: no files given".into()));
        }
        for p in paths {
            let text = self
                .fs
                .get(&p)
                .cloned()
                .ok_or_else(|| EdaError::FileNotFound(p.clone()))?;
            let lib = library.clone();
            self.project_mut()?
                .add_source(&p, lang, &text, lib.as_deref())?;
            self.sim_time_s += 0.5;
            self.log(format!("read {p} as {lang}"));
        }
        Ok(String::new())
    }

    fn cmd_set_property(&mut self, args: &[String]) -> EdaResult<String> {
        if args.len() < 3 {
            return Err(EdaError::Tcl("set_property name value object".into()));
        }
        let prop = args[0].to_ascii_lowercase();
        let value = args[1].clone();
        match prop.as_str() {
            "top" => {
                self.project_mut()?.top = Some(value.clone());
                self.log(format!("set top = {value}"));
            }
            "generic" => {
                // `set_property generic {A=1 B=2} [current_fileset]`
                let proj = self.project_mut()?;
                for pair in value.split_whitespace() {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| EdaError::Tcl(format!("bad generic assignment `{pair}`")))?;
                    let vi: i64 = parse_generic_value(v)?;
                    proj.generics.insert(k.to_string(), vi);
                }
                self.log(format!("set generics {value}"));
            }
            "part" => {
                let part = self
                    .catalog
                    .resolve(&value)
                    .ok_or_else(|| EdaError::UnknownPart(value.clone()))?
                    .clone();
                self.project_mut()?.part = part;
                self.log(format!("set part = {value}"));
            }
            other => {
                // Unknown properties are accepted silently, as Vivado does
                // for the many properties Dovado does not touch.
                self.log(format!("set_property {other} (ignored)"));
            }
        }
        Ok(String::new())
    }

    fn cmd_create_clock(&mut self, args: &[String]) -> EdaResult<String> {
        let mut period = None;
        let mut port = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "-period" => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| EdaError::Tcl("create_clock: -period needs value".into()))?;
                    period =
                        Some(v.parse::<f64>().map_err(|_| {
                            EdaError::Tcl(format!("create_clock: bad period `{v}`"))
                        })?);
                    i += 2;
                }
                "-name" => i += 2,
                p => {
                    // Target object: a `[get_ports …]` result, i.e. the name.
                    port = Some(p.to_string());
                    i += 1;
                }
            }
        }
        let period = period.ok_or_else(|| EdaError::Tcl("create_clock: missing -period".into()))?;
        if period <= 0.0 {
            return Err(EdaError::Tcl(format!(
                "create_clock: non-positive period {period}"
            )));
        }
        let port = port.unwrap_or_else(|| "clk".into());
        self.project_mut()?.clocks.push(ClockConstraint {
            port: port.clone(),
            period_ns: period,
        });
        self.log(format!("create_clock {period} ns on {port}"));
        Ok(String::new())
    }

    fn cmd_get_ports(&mut self, args: &[String]) -> EdaResult<String> {
        let pattern = args
            .first()
            .ok_or_else(|| EdaError::Tcl("get_ports: missing pattern".into()))?;
        // Validate against the top module when resolvable; glob `*` passes.
        if pattern != "*" {
            if let Some(proj) = &self.project {
                if let Ok(top) = proj.top_name() {
                    if let Some(m) = proj.find_module(&top) {
                        if m.port(pattern).is_none() {
                            return Err(EdaError::Tcl(format!(
                                "get_ports: no port `{pattern}` on `{top}`"
                            )));
                        }
                    }
                }
            }
        }
        Ok(pattern.clone())
    }

    fn cmd_synth_design(&mut self, args: &[String]) -> EdaResult<String> {
        let mut directive = SynthDirective::Default;
        let mut incremental = self.incremental_requested;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "-top" => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| EdaError::Tcl("synth_design: -top needs value".into()))?
                        .clone();
                    self.project_mut()?.top = Some(v);
                    i += 2;
                }
                "-part" => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| EdaError::Tcl("synth_design: -part needs value".into()))?
                        .clone();
                    let part = self
                        .catalog
                        .resolve(&v)
                        .ok_or_else(|| EdaError::UnknownPart(v.clone()))?
                        .clone();
                    self.project_mut()?.part = part;
                    i += 2;
                }
                "-directive" => {
                    let v = args.get(i + 1).ok_or_else(|| {
                        EdaError::Tcl("synth_design: -directive needs value".into())
                    })?;
                    directive = v.parse().map_err(EdaError::Tcl)?;
                    i += 2;
                }
                "-generic" => {
                    let v = args.get(i + 1).ok_or_else(|| {
                        EdaError::Tcl("synth_design: -generic needs value".into())
                    })?;
                    let (k, val) = v.split_once('=').ok_or_else(|| {
                        EdaError::Tcl(format!("bad -generic `{v}` (want NAME=VALUE)"))
                    })?;
                    let vi = parse_generic_value(val)?;
                    self.project_mut()?.generics.insert(k.to_string(), vi);
                    i += 2;
                }
                "-incremental" => {
                    incremental = true;
                    i += if args.get(i + 1).is_some_and(|a| !a.starts_with('-')) {
                        2
                    } else {
                        1
                    };
                }
                "-mode" | "-flatten_hierarchy" => i += 2,
                _ => i += 1,
            }
        }

        self.roll_stage_fault(
            "synth_design",
            FaultKind::SynthTimeout,
            FaultKind::SynthCrash,
        )?;

        let registry = Arc::clone(&self.registry);
        let proj = self
            .project
            .as_ref()
            .ok_or_else(|| EdaError::FlowOrder("no project open".into()))?;
        let netlist = proj.elaborate(&registry)?;
        let module = netlist.module.clone();
        let part = proj.part.clone();

        // Checkpoint identity includes the directive: a rerun with another
        // directive is a different synthesis.
        let synth_key = combine(netlist.design_hash, hash_str(directive.as_vivado()));

        let reuse = if incremental {
            self.checkpoints
                .classify(synth_key, &module, &part.name, FlowStep::Synthesis)
        } else if self
            .checkpoints
            .classify(synth_key, &module, &part.name, FlowStep::Synthesis)
            == Reuse::Exact
        {
            // Exact cache hits apply even without the incremental flow: the
            // paper's first control-model case ("Vivado … employs cached
            // results as the answer").
            Reuse::Exact
        } else {
            Reuse::None
        };

        let result = match (
            reuse,
            self.checkpoints.get_exact(synth_key, FlowStep::Synthesis),
        ) {
            (Reuse::Exact, Some(Checkpoint::Synth(prev))) => {
                self.sim_time_s += synth_runtime_s(netlist.cells.total(), directive)
                    * Reuse::Exact.runtime_factor();
                self.log(format!("synth_design {module}: exact checkpoint reuse"));
                prev
            }
            _ => {
                let mut r = synthesize(&netlist, &part, directive, self.seed);
                // Stamp the directive into the netlist identity so the
                // downstream implementation cache and PnR noise key on the
                // actual synthesized design.
                r.netlist.design_hash = synth_key;
                r.runtime_s *= reuse.runtime_factor();
                self.sim_time_s += r.runtime_s;
                self.log(r.log.clone());
                self.checkpoints.put(
                    synth_key,
                    &module,
                    &part.name,
                    FlowStep::Synthesis,
                    Checkpoint::Synth(r.clone()),
                );
                r
            }
        };

        self.synth_result = Some(result);
        self.impl_result = None;
        self.state = FlowState::Synthesized;
        // `incremental_requested` stays set: the reference checkpoint also
        // serves the implementation step (route_design clears it).
        Ok(module)
    }

    fn cmd_place_design(&mut self, _args: &[String]) -> EdaResult<String> {
        if self.state == FlowState::Fresh {
            return Err(EdaError::FlowOrder(
                "place_design before synth_design".into(),
            ));
        }
        self.state = FlowState::Placed;
        // Placement cost is folded into route_design; charge a token amount.
        self.sim_time_s += 5.0;
        self.log("place_design".into());
        Ok(String::new())
    }

    fn cmd_route_design(&mut self, args: &[String]) -> EdaResult<String> {
        if self.state == FlowState::Fresh {
            return Err(EdaError::FlowOrder(
                "route_design before synth_design".into(),
            ));
        }
        let mut directive = ImplDirective::Default;
        let mut i = 0;
        while i < args.len() {
            if args[i] == "-directive" {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| EdaError::Tcl("route_design: -directive needs value".into()))?;
                directive = v.parse().map_err(EdaError::Tcl)?;
                i += 2;
            } else {
                i += 1;
            }
        }

        self.roll_stage_fault(
            "route_design",
            FaultKind::RouteTimeout,
            FaultKind::RouteCrash,
        )?;

        let synth = self
            .synth_result
            .clone()
            .ok_or_else(|| EdaError::FlowOrder("route_design: no synthesized netlist".into()))?;
        let proj = self.project.as_ref().expect("state check passed");
        let part = proj.part.clone();
        let period = proj.clocks.first().map(|c| c.period_ns).unwrap_or(10.0);

        let impl_key = combine(
            combine(synth.netlist.design_hash, period.to_bits()),
            hash_str(directive.as_vivado()),
        );
        let module = synth.netlist.module.clone();
        let reuse = if self.incremental_requested {
            self.checkpoints
                .classify(impl_key, &module, &part.name, FlowStep::Implementation)
        } else if self
            .checkpoints
            .classify(impl_key, &module, &part.name, FlowStep::Implementation)
            == Reuse::Exact
        {
            Reuse::Exact
        } else {
            Reuse::None
        };

        let result = match (
            reuse,
            self.checkpoints
                .get_exact(impl_key, FlowStep::Implementation),
        ) {
            (Reuse::Exact, Some(Checkpoint::Impl(prev))) => {
                self.sim_time_s +=
                    impl_runtime_s(synth.netlist.cells.total(), prev.utilization, directive)
                        * Reuse::Exact.runtime_factor();
                self.log(format!("route_design {module}: exact checkpoint reuse"));
                prev
            }
            _ => {
                let mut r = place_and_route(&synth.netlist, &part, period, directive, self.seed)?;
                r.runtime_s *= reuse.runtime_factor();
                self.sim_time_s += r.runtime_s;
                self.log(r.log.clone());
                self.checkpoints.put(
                    impl_key,
                    &module,
                    &part.name,
                    FlowStep::Implementation,
                    Checkpoint::Impl(r.clone()),
                );
                r
            }
        };

        self.impl_result = Some(result);
        self.state = FlowState::Routed;
        self.incremental_requested = false;
        Ok(String::new())
    }

    fn current_timing(&self) -> EdaResult<ImplResult> {
        if let Some(r) = &self.impl_result {
            return Ok(r.clone());
        }
        let synth = self
            .synth_result
            .as_ref()
            .ok_or_else(|| EdaError::FlowOrder("report_timing before synth_design".into()))?;
        let proj = self.project.as_ref().expect("have synth result");
        let period = proj.clocks.first().map(|c| c.period_ns).unwrap_or(10.0);
        Ok(estimate_timing(&synth.netlist, &proj.part, period))
    }

    fn cmd_report_utilization(&mut self, args: &[String]) -> EdaResult<String> {
        let synth = self
            .synth_result
            .as_ref()
            .ok_or_else(|| EdaError::FlowOrder("report_utilization before synth_design".into()))?;
        let netlist = self
            .impl_result
            .as_ref()
            .map(|r| &r.netlist)
            .unwrap_or(&synth.netlist);
        let proj = self.project.as_ref().expect("have synth result");
        let text = report::write_utilization_report(&netlist.module, &netlist.cells, &proj.part);
        self.finish_report(args, text)
    }

    fn cmd_report_timing(&mut self, args: &[String]) -> EdaResult<String> {
        let timing = self.current_timing()?;
        let text = report::write_timing_report(&timing.netlist.module.clone(), &timing);
        self.finish_report(args, text)
    }

    /// `report_power [-file f]`: estimated at the *achievable* frequency
    /// (Eq. 1's Fmax), the operating point DSE cares about.
    fn cmd_report_power(&mut self, args: &[String]) -> EdaResult<String> {
        let timing = self.current_timing()?;
        let proj = self.project.as_ref().expect("timing implies a project");
        let clock_mhz = timing.fmax_mhz();
        let est = crate::power::estimate_power(
            &timing.netlist,
            &proj.part,
            clock_mhz,
            crate::power::DEFAULT_TOGGLE_RATE,
        );
        let text = crate::power::write_power_report(&timing.netlist.module, &est, clock_mhz);
        self.finish_report(args, text)
    }

    /// Honors `-file <path>`; otherwise returns the text as the command
    /// result.
    fn finish_report(&mut self, args: &[String], text: String) -> EdaResult<String> {
        let text = match self.faults.clone() {
            Some(inj) if inj.fires(FaultKind::ReportTruncated) => {
                self.log("report write cut off mid-file".into());
                inj.mangle_report(FaultKind::ReportTruncated, &text)
            }
            Some(inj) if inj.fires(FaultKind::ReportGarbled) => {
                self.log("report written with corrupted values".into());
                inj.mangle_report(FaultKind::ReportGarbled, &text)
            }
            _ => text,
        };
        let mut i = 0;
        while i < args.len() {
            if args[i] == "-file" {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| EdaError::Tcl("-file needs a path".into()))?
                    .clone();
                self.fs.insert(path, text);
                return Ok(String::new());
            }
            i += 1;
        }
        Ok(text)
    }

    fn cmd_write_checkpoint(&mut self, args: &[String]) -> EdaResult<String> {
        let path = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .ok_or_else(|| EdaError::Tcl("write_checkpoint: missing path".into()))?
            .clone();
        let hash = match (&self.impl_result, &self.synth_result) {
            (Some(r), _) => combine(r.netlist.design_hash, 2),
            (None, Some(s)) => combine(s.netlist.design_hash, 1),
            _ => {
                return Err(EdaError::FlowOrder(
                    "write_checkpoint before synth_design".into(),
                ))
            }
        };
        self.fs.insert(path.clone(), format!("dcp:{hash:016x}"));
        self.sim_time_s += 3.0;
        self.log(format!("write_checkpoint {path}"));
        Ok(String::new())
    }

    fn cmd_read_checkpoint(&mut self, args: &[String]) -> EdaResult<String> {
        let mut incremental = false;
        let mut path = None;
        for a in args {
            if a == "-incremental" {
                incremental = true;
            } else if !a.starts_with('-') {
                path = Some(a.clone());
            }
        }
        let path = path.ok_or_else(|| EdaError::Tcl("read_checkpoint: missing path".into()))?;
        if !self.fs.contains_key(&path) {
            return Err(EdaError::Checkpoint(format!(
                "checkpoint `{path}` does not exist"
            )));
        }
        if let Some(inj) = self.faults.clone() {
            if inj.fires(FaultKind::CheckpointCorrupt) {
                // The on-disk artifact is gone for good: drop it so a
                // retry that still references it fails fast instead of
                // re-reading garbage.
                self.fs.remove(&path);
                self.log(format!("read_checkpoint {path}: integrity check FAILED"));
                return Err(EdaError::Checkpoint(format!(
                    "checkpoint `{path}` is corrupt"
                )));
            }
        }
        if incremental {
            self.incremental_requested = true;
        }
        self.log(format!(
            "read_checkpoint {path} (incremental={incremental})"
        ));
        Ok(String::new())
    }
}

fn parse_generic_value(v: &str) -> EdaResult<i64> {
    let t = v.trim();
    // Booleans per the paper's integer formulation.
    if t.eq_ignore_ascii_case("true") {
        return Ok(1);
    }
    if t.eq_ignore_ascii_case("false") {
        return Ok(0);
    }
    t.parse::<i64>()
        .map_err(|_| EdaError::Parameter(format!("non-integer generic value `{v}`")))
}

impl TclContext for VivadoSim {
    fn run_command(
        &mut self,
        _interp: &mut Interp,
        name: &str,
        args: &[String],
    ) -> EdaResult<String> {
        match name {
            "create_project" => self.cmd_create_project(args),
            "read_vhdl" => self.cmd_read_hdl(Language::Vhdl, args),
            "read_verilog" => self.cmd_read_hdl(Language::Verilog, args),
            "set_property" => self.cmd_set_property(args),
            "create_clock" => self.cmd_create_clock(args),
            "get_ports" => self.cmd_get_ports(args),
            "synth_design" => self.cmd_synth_design(args),
            "opt_design" => {
                self.sim_time_s += 4.0;
                self.log("opt_design".into());
                Ok(String::new())
            }
            "place_design" => self.cmd_place_design(args),
            "route_design" => self.cmd_route_design(args),
            "phys_opt_design" => {
                self.sim_time_s += 6.0;
                Ok(String::new())
            }
            "report_utilization" => self.cmd_report_utilization(args),
            "report_timing_summary" | "report_timing" => self.cmd_report_timing(args),
            "report_power" => self.cmd_report_power(args),
            "write_checkpoint" => self.cmd_write_checkpoint(args),
            "read_checkpoint" => self.cmd_read_checkpoint(args),
            "version" => Ok("Vivado v2019.2 (simulated by dovado-eda)".into()),
            "get_parts" => {
                let pattern = args.first().map(String::as_str).unwrap_or("*");
                let parts: Vec<String> = self
                    .catalog
                    .parts()
                    .iter()
                    .map(|p| p.name.clone())
                    .filter(|n| {
                        pattern == "*"
                            || n.contains(&pattern.trim_matches('*').to_ascii_lowercase())
                    })
                    .collect();
                Ok(parts.join(" "))
            }
            "current_fileset" => Ok("sources_1".into()),
            "current_project" => Ok(self
                .project
                .as_ref()
                .map(|p| p.name.clone())
                .unwrap_or_default()),
            "file" => Ok(String::new()), // `file mkdir …` — no-op in memory
            "exit" | "quit" => Ok(String::new()),
            other => Err(EdaError::Tcl(format!("invalid command name \"{other}\""))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

    fn session_with_fifo() -> VivadoSim {
        let mut v = VivadoSim::new(7);
        v.write_file("src/fifo.sv", FIFO_SV);
        v.eval(
            "create_project dov -part xc7k70tfbv676-1\n\
             read_verilog -sv src/fifo.sv\n\
             set_property top fifo_v3 [current_fileset]",
        )
        .unwrap();
        v
    }

    #[test]
    fn full_flow_via_tcl() {
        let mut v = session_with_fifo();
        v.eval(
            "synth_design -top fifo_v3 -generic DEPTH=64\n\
             create_clock -period 1.000 -name clk [get_ports clk_i]\n\
             place_design\n\
             route_design\n\
             report_utilization -file util.rpt\n\
             report_timing_summary -file timing.rpt",
        )
        .unwrap();
        assert_eq!(v.state(), FlowState::Routed);
        let util = v.read_file("util.rpt").unwrap();
        let cells = report::parse_utilization_report(util).unwrap();
        assert!(cells.get(dovado_fpga::ResourceKind::Lut) > 100);
        let wns = report::parse_wns(v.read_file("timing.rpt").unwrap()).unwrap();
        assert!(wns < 0.0, "1 ns target must fail on K7: wns={wns}");
    }

    #[test]
    fn fmax_in_plausible_band() {
        let mut v = session_with_fifo();
        v.eval(
            "synth_design -top fifo_v3 -generic DEPTH=64\n\
             create_clock -period 1.000 [get_ports clk_i]\n\
             route_design",
        )
        .unwrap();
        let fmax = v.impl_result().unwrap().fmax_mhz();
        assert!(fmax > 150.0 && fmax < 500.0, "fifo fmax {fmax}");
    }

    #[test]
    fn missing_file_errors() {
        let mut v = VivadoSim::new(0);
        v.eval("create_project p -part xc7k70t").unwrap();
        assert!(matches!(
            v.eval("read_verilog ghost.v"),
            Err(EdaError::FileNotFound(_))
        ));
    }

    #[test]
    fn unknown_part_errors() {
        let mut v = VivadoSim::new(0);
        assert!(matches!(
            v.eval("create_project p -part xc99nothing"),
            Err(EdaError::UnknownPart(_))
        ));
    }

    #[test]
    fn flow_order_enforced() {
        let mut v = session_with_fifo();
        assert!(matches!(
            v.eval("route_design"),
            Err(EdaError::FlowOrder(_))
        ));
        assert!(matches!(
            v.eval("report_utilization"),
            Err(EdaError::FlowOrder(_))
        ));
    }

    #[test]
    fn get_ports_validates() {
        let mut v = session_with_fifo();
        assert!(v.eval("get_ports clk_i").is_ok());
        assert!(v.eval("get_ports bogus_port").is_err());
    }

    #[test]
    fn generic_changes_results() {
        let run = |depth: u32| {
            let mut v = session_with_fifo();
            v.eval(&format!(
                "synth_design -top fifo_v3 -generic DEPTH={depth}\nreport_utilization"
            ))
            .unwrap();
            v.synth_result().unwrap().netlist.registers()
        };
        assert!(run(256) > run(8));
    }

    #[test]
    fn exact_rerun_uses_cache_and_matches() {
        let mut v = session_with_fifo();
        v.eval("synth_design -top fifo_v3 -generic DEPTH=64")
            .unwrap();
        let first = v.synth_result().unwrap().netlist.clone();
        let t_after_first = v.sim_time_s;
        v.eval("synth_design -top fifo_v3 -generic DEPTH=64")
            .unwrap();
        let second = v.synth_result().unwrap().netlist.clone();
        let t_second = v.sim_time_s - t_after_first;
        assert_eq!(first, second);
        assert!(
            t_second < t_after_first * 0.2,
            "cached rerun should be cheap: {t_second} vs {t_after_first}"
        );
    }

    #[test]
    fn incremental_flow_cuts_runtime_for_new_params() {
        // Session A: cold run at DEPTH=64 leaves a checkpoint in the store.
        let store = {
            let mut v = session_with_fifo();
            v.eval("synth_design -top fifo_v3 -generic DEPTH=64")
                .unwrap();
            v.eval("write_checkpoint post_synth.dcp").unwrap();
            v.checkpoint_store()
        };
        // Session B, same store: DEPTH=65 with the incremental flow.
        let mut vb = session_with_fifo();
        vb.set_checkpoint_store(store.clone());
        vb.write_file("post_synth.dcp", "dcp:basis");
        let t0 = vb.sim_time_s;
        vb.eval("read_checkpoint -incremental post_synth.dcp")
            .unwrap();
        vb.eval("synth_design -top fifo_v3 -generic DEPTH=65")
            .unwrap();
        let t_incr = vb.sim_time_s - t0;

        // Session C, fresh store: DEPTH=65 from scratch.
        let mut vc = session_with_fifo();
        let t1 = vc.sim_time_s;
        vc.eval("synth_design -top fifo_v3 -generic DEPTH=65")
            .unwrap();
        let t_full = vc.sim_time_s - t1;

        assert!(
            t_incr < 0.6 * t_full,
            "incremental {t_incr} not cheaper than full {t_full}"
        );
        // QoR identical: the checkpoint only buys time.
        assert_eq!(
            vb.synth_result().unwrap().netlist,
            vc.synth_result().unwrap().netlist
        );
    }

    #[test]
    fn vhdl_flow_through_box() {
        let mut v = VivadoSim::new(3);
        v.write_file(
            "src/neorv32.vhd",
            r#"
entity neorv32_top is
  generic (
    MEM_INT_IMEM_SIZE : natural := 16384;
    MEM_INT_DMEM_SIZE : natural := 8192
  );
  port ( clk_i : in std_logic );
end entity neorv32_top;
"#,
        );
        v.write_file(
            "src/box.vhd",
            r#"
library ieee;
use ieee.std_logic_1164.all;
entity box is
  port ( clk : in std_logic );
end entity box;
architecture box_arch of box is
begin
  BOXED: entity work.neorv32_top
    generic map ( MEM_INT_IMEM_SIZE => 32768, MEM_INT_DMEM_SIZE => 16384 )
    port map ( clk_i => clk );
end architecture box_arch;
"#,
        );
        v.eval(
            "create_project p -part xc7k70tfbv676-1\n\
             read_vhdl src/neorv32.vhd\n\
             read_vhdl src/box.vhd\n\
             synth_design -top box\n\
             create_clock -period 1.0 [get_ports clk]\n\
             route_design\n\
             report_utilization -file u.rpt",
        )
        .unwrap();
        let cells = report::parse_utilization_report(v.read_file("u.rpt").unwrap()).unwrap();
        assert_eq!(cells.get(dovado_fpga::ResourceKind::Bram), 8 + 4);
    }

    #[test]
    fn timing_report_before_route_is_estimate() {
        let mut v = session_with_fifo();
        v.eval(
            "synth_design -top fifo_v3\n\
             create_clock -period 1.0 [get_ports clk_i]\n",
        )
        .unwrap();
        let est = v.eval("report_timing_summary").unwrap();
        let est_wns = report::parse_wns(&est).unwrap();
        v.eval("route_design").unwrap();
        let real = v.eval("report_timing_summary").unwrap();
        let real_wns = report::parse_wns(&real).unwrap();
        assert!(est_wns > real_wns, "estimate must be optimistic");
    }

    #[test]
    fn sim_time_accumulates() {
        let mut v = session_with_fifo();
        let t0 = v.sim_time_s;
        v.eval("synth_design -top fifo_v3").unwrap();
        assert!(v.sim_time_s > t0 + 5.0);
    }

    #[test]
    fn tcl_can_compute_fmax_from_reports() {
        // The whole loop in pure TCL — variables, expr, command subst.
        let mut v = session_with_fifo();
        let (result, _out) = v
            .eval_with_output(
                "synth_design -top fifo_v3 -generic DEPTH=32\n\
                 create_clock -period 1.0 [get_ports clk_i]\n\
                 route_design\n\
                 set t 1.0\n\
                 puts \"done\"",
            )
            .unwrap();
        assert_eq!(result, "");
        let wns = v.impl_result().unwrap().wns_ns;
        let fmax = 1000.0 / (1.0 - wns);
        assert!((fmax - v.impl_result().unwrap().fmax_mhz()).abs() < 1e-9);
    }

    #[test]
    fn read_checkpoint_requires_file() {
        let mut v = session_with_fifo();
        assert!(matches!(
            v.eval("read_checkpoint -incremental missing.dcp"),
            Err(EdaError::Checkpoint(_))
        ));
    }

    #[test]
    fn version_and_get_parts() {
        let mut v = VivadoSim::new(0);
        assert!(v.eval("version").unwrap().contains("2019.2"));
        let all = v.eval("get_parts").unwrap();
        assert!(all.contains("xc7k70tfbv676-1"));
        let filtered = v.eval("get_parts *zu3eg*").unwrap();
        assert!(filtered.contains("xczu3eg"));
        assert!(!filtered.contains("xc7k70t"));
        // Usable from scripts: pick a part with command substitution.
        let (_, out) = v
            .eval_with_output("foreach p [get_parts *xc7k70t*] { puts $p }")
            .unwrap();
        assert!(out.lines().count() >= 2);
    }

    #[test]
    fn bool_generics_accepted() {
        let mut v = session_with_fifo();
        v.eval("set_property generic {DEPTH=16 FALL_THROUGH=true} [current_fileset]")
            .unwrap();
        assert_eq!(v.project().unwrap().generics["FALL_THROUGH"], 1);
    }
}
