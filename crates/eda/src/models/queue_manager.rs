//! Cost model for Corundum's completion-queue manager (§IV-B).
//!
//! Architecture sketch (from the Corundum NIC): per-queue state lives in a
//! RAM indexed by `QUEUE_INDEX_WIDTH` bits; in-flight operations are tracked
//! in an `OP_TABLE_SIZE`-entry table with associative matching; the request
//! path is cut by `PIPELINE` register stages.
//!
//! Paper-calibrated behaviour (Fig. 4 / Table I):
//! * BRAM count is *constant* across the explored configurations (the
//!   queue-state RAM fits one/two 36 Kb blocks for 2^2 … 2^10 queues),
//! * LUTs and registers move with all three parameters,
//! * achievable frequency sits near 200 MHz on the Kintex-7, with pipeline
//!   stages buying back logic depth.

use crate::archmodel::{ArchModel, ElabContext};
use crate::error::EdaResult;
use crate::netlist::Netlist;
use dovado_fpga::{ResourceKind, ResourceSet};
use dovado_hdl::clog2;

/// Bits of queue state per queue (command + head/tail pointers + flags).
const QUEUE_STATE_BITS: u64 = 128;
/// Capacity of one BRAM tile in bits.
const BRAM_BITS: u64 = 36 * 1024;

/// Completion-queue-manager architecture model.
#[derive(Debug, Default)]
pub struct QueueManagerModel;

impl ArchModel for QueueManagerModel {
    fn name(&self) -> &str {
        "corundum-cpl-queue-manager"
    }

    fn matches(&self, module_name: &str) -> bool {
        let n = module_name.to_ascii_lowercase();
        n.contains("queue_manager")
    }

    fn elaborate(&self, ctx: &ElabContext<'_>) -> EdaResult<Netlist> {
        let op_table = ctx.positive_param("OP_TABLE_SIZE")? as u64;
        let qi_width = ctx.positive_param("QUEUE_INDEX_WIDTH")? as u64;
        let pipeline = ctx.positive_param("PIPELINE")? as u64;

        let queues = 1u64 << qi_width.min(20);

        // Queue state RAM: always at least one BRAM; the explored range
        // (2^2..2^10 queues × 128 b) stays within 4 tiles, and within the
        // paper's 2^4..2^7 slice it is constant.
        let brams = (queues * QUEUE_STATE_BITS).div_ceil(BRAM_BITS).max(2);

        // Op table: each entry holds a queue index, commit/done flags and a
        // completion record (~40 flops + queue index).
        let op_entry_bits = 40 + qi_width;
        let op_regs = op_table * op_entry_bits;
        // Pipeline registers across the datapath (~90 b of request state per
        // stage) and output skid buffers.
        let pipe_regs = pipeline * 92 + 180;
        let regs = op_regs + pipe_regs;

        // Associative match of the incoming queue index against every op
        // table entry, plus per-entry control, plus RAM addressing and AXI
        // stream plumbing.
        let match_luts = op_table * (qi_width + 6) / 2;
        let entry_luts = op_table * 9;
        let ctrl_luts = qi_width * 28 + pipeline * 24 + 240;
        let luts = match_luts + entry_luts + ctrl_luts;

        // Critical path: with at least one pipeline register the op-table
        // match is cut out of the path and timing is set by the queue-RAM
        // access + control logic (so the op-table size only buys the NIC
        // throughput the paper does not optimize for — its effect on Fmax
        // is down in the placement-noise floor, which is what lets larger
        // tables survive on the measured non-dominated front, Table I).
        // Unpipelined, the combinational match reduction dominates.
        let levels = if pipeline == 1 {
            clog2(op_table.max(2)) + 6
        } else {
            (9u32).saturating_sub(pipeline as u32).max(4)
        };

        let mut nl = Netlist::empty(&ctx.module.name);
        nl.cells = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Bram, brams),
            (ResourceKind::Carry, (qi_width + 8).div_ceil(4)),
        ]);
        nl.logic_levels = levels;
        nl.carry_bits = qi_width as u32 + 8;
        // Weak residual coupling: reset/enable fanout into the op table —
        // deliberately below the placement-noise floor.
        nl.fanout_cost = 0.6 + (op_table as f64 / 256.0).min(0.4);
        nl.crit_through_bram = pipeline >= 2;
        nl.crit_path = format!(
            "op_table match ({op_table} entries) -> priority encode -> queue RAM addr \
             [{pipeline} pipeline stage(s)]"
        );
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archmodel::bind_parameters;
    use crate::models::testutil::module_from;
    use dovado_fpga::Catalog;
    use dovado_hdl::Language;
    use std::collections::BTreeMap;

    const SRC: &str = r#"
module cpl_queue_manager #(
    parameter OP_TABLE_SIZE = 16,
    parameter QUEUE_INDEX_WIDTH = 8,
    parameter PIPELINE = 2
)(input wire clk);
endmodule"#;

    fn elab(op: i64, qi: i64, pipe: i64) -> Netlist {
        let m = module_from(Language::Verilog, SRC);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let mut ov = BTreeMap::new();
        ov.insert("OP_TABLE_SIZE".to_string(), op);
        ov.insert("QUEUE_INDEX_WIDTH".to_string(), qi);
        ov.insert("PIPELINE".to_string(), pipe);
        let params = bind_parameters(&m, &ov).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        QueueManagerModel.elaborate(&ctx).unwrap()
    }

    #[test]
    fn bram_constant_over_paper_range() {
        // Table I explores ops 8..35, queues 2^4..2^7, pipeline 2..5 —
        // BRAM must not move (Fig. 4: "the module is constant in the number
        // of BRAMs needed").
        let base = elab(8, 4, 2).brams();
        for &(o, q, p) in &[(8, 5, 2), (35, 4, 2), (10, 7, 3), (19, 4, 5), (15, 4, 4)] {
            assert_eq!(elab(o, q, p).brams(), base, "BRAM moved at ({o},{q},{p})");
        }
    }

    #[test]
    fn luts_grow_with_op_table_and_queues() {
        assert!(elab(32, 4, 2).luts() > elab(8, 4, 2).luts());
        assert!(elab(8, 8, 2).luts() > elab(8, 4, 2).luts());
    }

    #[test]
    fn registers_grow_with_pipeline_and_ops() {
        assert!(elab(8, 4, 5).registers() > elab(8, 4, 2).registers());
        assert!(elab(32, 4, 2).registers() > elab(8, 4, 2).registers());
    }

    #[test]
    fn pipeline_reduces_logic_depth_to_floor() {
        let shallow = elab(16, 4, 1).logic_levels;
        let deep = elab(16, 4, 5).logic_levels;
        assert!(deep < shallow);
        assert!(elab(16, 4, 20).logic_levels >= 4, "floor must hold");
    }

    #[test]
    fn requires_all_three_parameters() {
        let m = module_from(Language::Verilog, SRC);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        // Interface defaults cover everything, so defaults-only works…
        let params = bind_parameters(&m, &BTreeMap::new()).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        assert!(QueueManagerModel.elaborate(&ctx).is_ok());
        // …but a zero parameter is rejected.
        let mut bad = params.clone();
        bad.insert("PIPELINE".to_string(), 0);
        let ctx = ElabContext {
            module: &m,
            params: &bad,
            part: &part,
        };
        assert!(QueueManagerModel.elaborate(&ctx).is_err());
    }

    #[test]
    fn matches_corundum_name() {
        assert!(QueueManagerModel.matches("cpl_queue_manager"));
        assert!(QueueManagerModel.matches("queue_manager"));
        assert!(!QueueManagerModel.matches("fifo_v3"));
    }
}
