//! Cost model for TiReX, the tiled regular-expression matching
//! architecture (§IV-D, Figs. 6–7, Table II).
//!
//! Explored parameters: `NCLUSTER` (internal core parallelism — the paper
//! merges the two datapath parameters into this one), `STACK_SIZE` (the
//! control unit's context-switch stack), `IMEM_SIZE` and `DMEM_SIZE`
//! (instruction/data memories). All sizes are explored as powers of two.
//!
//! Calibration targets from the paper: similar configurations reach
//! ~550 MHz on the 16 nm ZU3EG but only ~190 MHz on the 28 nm XC7K70T —
//! that gap comes from the per-device [`dovado_fpga::TimingModel`], not
//! from anything TiReX-specific here.

use crate::archmodel::{ArchModel, ElabContext};
use crate::error::EdaResult;
use crate::netlist::Netlist;
use dovado_fpga::{ResourceKind, ResourceSet};
use dovado_hdl::clog2;

/// TiReX architecture model.
#[derive(Debug, Default)]
pub struct TirexModel;

impl ArchModel for TirexModel {
    fn name(&self) -> &str {
        "tirex"
    }

    fn matches(&self, module_name: &str) -> bool {
        module_name.to_ascii_lowercase().starts_with("tirex")
    }

    fn elaborate(&self, ctx: &ElabContext<'_>) -> EdaResult<Netlist> {
        let nclusters = ctx.positive_param("NCLUSTER")? as u64;
        let stack = ctx.positive_param("STACK_SIZE")? as u64;
        let imem = ctx.positive_param("IMEM_SIZE")? as u64;
        let dmem = ctx.positive_param("DMEM_SIZE")? as u64;

        // Each cluster is a matching engine: character comparators, an
        // active-state scoreboard and instruction decode.
        let cluster_luts = 1_650u64;
        let cluster_regs = 980u64;

        // The stack is small and maps to distributed RAM (LUTRAM -> LUTs).
        let stack_luts = stack * 3 + 12;
        let stack_regs = 2 * clog2(stack.max(2)) as u64;

        // Memories in "instruction/data units" of 512 entries × 64 bit
        // (so IMEM_SIZE = 2^3 units -> 8 × 32 Kb ≈ 8 BRAM tiles on the
        // ZU3EG plot's scale).
        let unit_bits = 512 * 64u64;
        let brams = (imem * unit_bits).div_ceil(36 * 1024) + (dmem * unit_bits).div_ceil(36 * 1024);

        let ctrl_luts = 420 + 16 * clog2(imem.max(2)) as u64 + 16 * clog2(dmem.max(2)) as u64;

        let luts = nclusters * cluster_luts + stack_luts + ctrl_luts;
        let regs = nclusters * cluster_regs + stack_regs + 260;

        // Critical path: instruction dispatch across clusters; the dispatch
        // crossbar deepens logarithmically with cluster count. The stack
        // and the memories sit behind registered interfaces, so their sizes
        // do not move the path systematically — measured Fmax differences
        // between stack/memory configurations come from placement jitter,
        // which is exactly what lets Table II's mixed configurations
        // coexist on the measured non-dominated front.
        let levels = 6 + clog2(nclusters.max(2));

        let mut nl = Netlist::empty(&ctx.module.name);
        nl.cells = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Bram, brams),
            (ResourceKind::Carry, 8 * nclusters),
        ]);
        nl.logic_levels = levels;
        nl.carry_bits = 16;
        nl.fanout_cost = 0.8 + nclusters as f64 * 0.25;
        nl.crit_through_bram = false;
        nl.crit_path =
            format!("dispatch xbar ({nclusters} cluster(s)) -> match engine -> scoreboard we");
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archmodel::bind_parameters;
    use crate::models::testutil::module_from;
    use dovado_fpga::Catalog;
    use dovado_hdl::Language;
    use std::collections::BTreeMap;

    const SRC: &str = r#"
entity tirex_top is
  generic (
    NCLUSTER   : natural := 1;
    STACK_SIZE : natural := 16;
    IMEM_SIZE  : natural := 8;
    DMEM_SIZE  : natural := 8
  );
  port ( clk : in std_logic );
end entity tirex_top;
"#;

    fn elab(n: i64, s: i64, i: i64, d: i64) -> Netlist {
        let m = module_from(Language::Vhdl, SRC);
        let part = Catalog::builtin().resolve("xczu3eg").unwrap().clone();
        let mut ov = BTreeMap::new();
        ov.insert("NCLUSTER".to_string(), n);
        ov.insert("STACK_SIZE".to_string(), s);
        ov.insert("IMEM_SIZE".to_string(), i);
        ov.insert("DMEM_SIZE".to_string(), d);
        let params = bind_parameters(&m, &ov).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        TirexModel.elaborate(&ctx).unwrap()
    }

    #[test]
    fn luts_scale_with_clusters() {
        let one = elab(1, 16, 8, 8);
        let four = elab(4, 16, 8, 8);
        assert!(four.luts() > 3 * one.luts() / 2);
        assert!(four.registers() > one.registers());
    }

    #[test]
    fn stack_contributes_lutram_not_bram() {
        let small = elab(1, 1, 8, 8);
        let big = elab(1, 256, 8, 8);
        assert!(big.luts() > small.luts());
        assert_eq!(big.brams(), small.brams());
    }

    #[test]
    fn memories_drive_bram() {
        assert!(elab(1, 16, 16, 8).brams() > elab(1, 16, 8, 8).brams());
        assert!(elab(1, 16, 8, 16).brams() > elab(1, 16, 8, 8).brams());
    }

    #[test]
    fn depth_grows_with_clusters_only() {
        assert!(elab(8, 16, 8, 8).logic_levels > elab(1, 16, 8, 8).logic_levels);
        // Stack and memory sizes are behind registered interfaces.
        assert_eq!(
            elab(1, 256, 8, 8).logic_levels,
            elab(1, 1, 8, 8).logic_levels
        );
        assert_eq!(
            elab(1, 16, 16, 16).logic_levels,
            elab(1, 16, 8, 8).logic_levels
        );
    }

    #[test]
    fn rejects_missing_parameters() {
        let src = "entity tirex_top is generic (NCLUSTER : natural := 0); port (clk : in std_logic); end entity;";
        let m = module_from(Language::Vhdl, src);
        let part = Catalog::builtin().resolve("xczu3eg").unwrap().clone();
        let params = bind_parameters(&m, &BTreeMap::new()).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        assert!(TirexModel.elaborate(&ctx).is_err());
    }

    #[test]
    fn name_matching() {
        assert!(TirexModel.matches("tirex_top"));
        assert!(TirexModel.matches("TiReX"));
        assert!(!TirexModel.matches("neorv32_top"));
    }
}
