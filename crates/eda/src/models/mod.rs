//! Built-in architecture models for the paper's four case studies plus a
//! generic interface-driven fallback.
//!
//! Each model is an analytic resource/timing estimator calibrated so the
//! paper's qualitative results reproduce:
//!
//! * [`fifo`] — the cv32e40p SystemVerilog FIFO (Fig. 3: smooth metric
//!   surfaces over `DEPTH` for the surrogate-accuracy experiment).
//! * [`queue_manager`] — Corundum's completion-queue manager (Fig. 4 /
//!   Table I: BRAM-constant, LUT/FF trade-offs, ~200 MHz on Kintex-7).
//! * [`riscv`] — the Neorv32 VHDL core (Fig. 5: BRAM steps with memory
//!   sizes, other metrics nearly flat).
//! * [`regex_engine`] — the TiReX regex DSA (Figs. 6–7 / Table II:
//!   ~550 MHz on 16 nm ZU3EG vs ~190 MHz on 28 nm XC7K70T).
//! * [`generic`] — interface-driven estimates for any other module.

pub mod fifo;
pub mod generic;
pub mod queue_manager;
pub mod regex_engine;
pub mod riscv;

use crate::archmodel::ArchModel;

/// All built-in models, in registration order (the registry reverses this,
/// so earlier entries here are *lower* priority).
pub fn builtin_models() -> Vec<Box<dyn ArchModel>> {
    vec![
        Box::new(fifo::FifoModel),
        Box::new(queue_manager::QueueManagerModel),
        Box::new(riscv::Neorv32Model),
        Box::new(riscv::Cv32e40pModel),
        Box::new(regex_engine::TirexModel),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    use dovado_hdl::{parse_source, Language, ModuleInterface};

    /// Parses a single-module source and returns the interface.
    pub fn module_from(lang: Language, src: &str) -> ModuleInterface {
        let (f, d) = parse_source(lang, src).unwrap();
        assert!(!d.has_errors());
        f.modules[0].clone()
    }
}
