//! Cost models for the two RISC-V cores used in the evaluation.
//!
//! * [`Neorv32Model`] — the VHDL Neorv32 (§IV-C, Fig. 5). The explored
//!   parameters are the internal instruction/data memory sizes in **bytes**;
//!   the core logic itself is unaffected, so LUT/FF/frequency stay nearly
//!   flat while BRAM steps with `ceil(size / 36 Kb)` — reproducing the
//!   figure's "sensible change in BRAM occupation while leaving almost
//!   unchanged the other metrics" between 2^14 and 2^15.
//! * [`Cv32e40pModel`] — the cv32e40p core top (§IV-A names the project;
//!   the experiment itself targets its FIFO submodule, handled by
//!   [`crate::models::fifo`]). Included so whole-core evaluations complete.

use crate::archmodel::{ArchModel, ElabContext};
use crate::error::EdaResult;
use crate::netlist::Netlist;
use dovado_fpga::{ResourceKind, ResourceSet};
/// Bits per 36 Kb BRAM tile.
const BRAM_BITS: u64 = 36 * 1024;

/// Neorv32 core + internal memories.
#[derive(Debug, Default)]
pub struct Neorv32Model;

impl ArchModel for Neorv32Model {
    fn name(&self) -> &str {
        "neorv32"
    }

    fn matches(&self, module_name: &str) -> bool {
        module_name.to_ascii_lowercase().starts_with("neorv32")
    }

    fn elaborate(&self, ctx: &ElabContext<'_>) -> EdaResult<Netlist> {
        let imem_bytes = ctx.positive_param("MEM_INT_IMEM_SIZE")? as u64;
        let dmem_bytes = ctx.positive_param("MEM_INT_DMEM_SIZE")? as u64;
        // Optional feature switches (booleans as 0/1 integers).
        let with_mul = ctx.param_or("CPU_EXTENSION_RISCV_M", 1) != 0;
        let with_c = ctx.param_or("CPU_EXTENSION_RISCV_C", 1) != 0;

        // Memory inference is device-aware: on URAM-bearing UltraScale+
        // parts, memories of 64 KiB and up map to 288 Kb UltraRAM blocks
        // (the resource the paper notes is "device-dependent and reported
        // only if present", §III-A4); everything else lands in 36 Kb BRAM.
        const URAM_BITS: u64 = 288 * 1024;
        const URAM_MIN_BYTES: u64 = 64 * 1024;
        let mut urams = 0u64;
        let mut mem_brams = |bytes: u64| -> u64 {
            if ctx.part.has_uram() && bytes >= URAM_MIN_BYTES {
                urams += (bytes * 8).div_ceil(URAM_BITS);
                0
            } else {
                (bytes * 8).div_ceil(BRAM_BITS)
            }
        };
        let imem_brams = mem_brams(imem_bytes);
        let dmem_brams = mem_brams(dmem_bytes);

        // 4-stage in-order core: datapath + CSR file + bus switch. Memory
        // sizing does not touch the core logic at all — the address buses
        // are full-width regardless (this is what makes Fig. 5's LUT/FF
        // series flat while BRAM steps).
        let mut luts: u64 = 2350;
        let mut regs: u64 = 1680;
        if with_mul {
            luts += 320;
            regs += 96;
        }
        if with_c {
            luts += 190;
            regs += 24;
        }

        let mut nl = Netlist::empty(&ctx.module.name);
        nl.cells = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Bram, imem_brams + dmem_brams),
            (ResourceKind::Uram, urams),
            (ResourceKind::Dsp, if with_mul { 4 } else { 0 }),
            (ResourceKind::Carry, 24),
        ]);
        // ALU + forwarding is the critical loop; memory size does not touch
        // it (placement jitter alone differentiates the measured Fmax of
        // different memory configurations, as in the paper's Fig. 5).
        nl.logic_levels = 8;
        nl.carry_bits = 32;
        nl.fanout_cost = 1.2;
        nl.crit_through_bram = true;
        nl.crit_path = "imem BRAM dout -> decode -> ALU -> regfile we".into();
        Ok(nl)
    }
}

/// cv32e40p core (whole-core evaluations).
#[derive(Debug, Default)]
pub struct Cv32e40pModel;

impl ArchModel for Cv32e40pModel {
    fn name(&self) -> &str {
        "cv32e40p-core"
    }

    fn matches(&self, module_name: &str) -> bool {
        let n = module_name.to_ascii_lowercase();
        n.starts_with("cv32e40p") && !n.contains("fifo")
    }

    fn elaborate(&self, ctx: &ElabContext<'_>) -> EdaResult<Netlist> {
        let fpu = ctx.param_or("FPU", 0) != 0;
        let pulp = ctx.param_or("PULP_XPULP", 0) != 0;

        let mut luts: u64 = 7_900;
        let mut regs: u64 = 3_400;
        let mut dsps: u64 = 6;
        if fpu {
            luts += 6_200;
            regs += 2_100;
            dsps += 8;
        }
        if pulp {
            luts += 2_400;
            regs += 700;
        }

        let mut nl = Netlist::empty(&ctx.module.name);
        nl.cells = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Dsp, dsps),
            (ResourceKind::Carry, 40),
        ]);
        nl.logic_levels = if fpu { 11 } else { 9 };
        nl.carry_bits = 32;
        nl.fanout_cost = 1.6;
        nl.crit_through_dsp = true;
        nl.crit_path = "operand fwd mux -> mult partial product -> writeback".into();
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archmodel::bind_parameters;
    use crate::models::testutil::module_from;
    use dovado_fpga::Catalog;
    use dovado_hdl::Language;
    use std::collections::BTreeMap;

    const NEORV_SRC: &str = r#"
entity neorv32_top is
  generic (
    MEM_INT_IMEM_SIZE : natural := 16384;
    MEM_INT_DMEM_SIZE : natural := 8192
  );
  port ( clk_i : in std_logic );
end entity neorv32_top;
"#;

    fn elab_neorv(imem: i64, dmem: i64) -> Netlist {
        let m = module_from(Language::Vhdl, NEORV_SRC);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let mut ov = BTreeMap::new();
        ov.insert("MEM_INT_IMEM_SIZE".to_string(), imem);
        ov.insert("MEM_INT_DMEM_SIZE".to_string(), dmem);
        let params = bind_parameters(&m, &ov).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        Neorv32Model.elaborate(&ctx).unwrap()
    }

    #[test]
    fn bram_steps_at_power_of_two_sizes() {
        // The paper's headline observation: 2^14 -> 2^15 imem doubles BRAM.
        let small = elab_neorv(1 << 14, 1 << 13);
        let big = elab_neorv(1 << 15, 1 << 15);
        assert!(big.brams() > small.brams());
        assert_eq!(small.brams(), 4 + 2);
        assert_eq!(big.brams(), 8 + 8);
    }

    #[test]
    fn luts_nearly_flat_across_memory_sizes() {
        let a = elab_neorv(1 << 13, 1 << 13);
        let b = elab_neorv(1 << 16, 1 << 16);
        let rel = (b.luts() as f64 - a.luts() as f64) / a.luts() as f64;
        assert!(rel.abs() < 0.02, "LUTs moved {rel} with memory size");
    }

    #[test]
    fn registers_flat_across_memory_sizes() {
        assert_eq!(
            elab_neorv(1 << 13, 1 << 13).registers(),
            elab_neorv(1 << 16, 1 << 16).registers()
        );
    }

    #[test]
    fn uram_inferred_only_on_uram_devices() {
        let m = module_from(Language::Vhdl, NEORV_SRC);
        let mut ov = BTreeMap::new();
        ov.insert("MEM_INT_IMEM_SIZE".to_string(), 1i64 << 17); // 128 KiB
        ov.insert("MEM_INT_DMEM_SIZE".to_string(), 8192i64);
        let params = bind_parameters(&m, &ov).unwrap();
        // URAM-bearing Kintex UltraScale+ part: big imem goes to URAM.
        let ku5p = Catalog::builtin().resolve("xcku5p").unwrap().clone();
        let nl = Neorv32Model
            .elaborate(&ElabContext {
                module: &m,
                params: &params,
                part: &ku5p,
            })
            .unwrap();
        assert!(nl.cells.get(dovado_fpga::ResourceKind::Uram) > 0);
        // dmem (8 KiB) still lands in BRAM.
        assert!(nl.brams() > 0);
        // On the 7-series part (no URAM) everything is BRAM.
        let k7 = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let nl7 = Neorv32Model
            .elaborate(&ElabContext {
                module: &m,
                params: &params,
                part: &k7,
            })
            .unwrap();
        assert_eq!(nl7.cells.get(dovado_fpga::ResourceKind::Uram), 0);
        assert!(nl7.brams() > nl.brams());
    }

    #[test]
    fn extensions_cost_resources() {
        let m = module_from(Language::Vhdl, NEORV_SRC);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let mut with = BTreeMap::new();
        with.insert("MEM_INT_IMEM_SIZE".to_string(), 16384i64);
        with.insert("MEM_INT_DMEM_SIZE".to_string(), 8192i64);
        with.insert("CPU_EXTENSION_RISCV_M".to_string(), 1i64);
        let mut without = with.clone();
        without.insert("CPU_EXTENSION_RISCV_M".to_string(), 0i64);
        let e = |ov: &BTreeMap<String, i64>| {
            let params = bind_parameters(&m, ov).unwrap();
            Neorv32Model
                .elaborate(&ElabContext {
                    module: &m,
                    params: &params,
                    part: &part,
                })
                .unwrap()
        };
        assert!(e(&with).luts() > e(&without).luts());
        assert!(e(&with).dsps() > e(&without).dsps());
    }

    #[test]
    fn cv32e40p_fpu_costs() {
        let src = "module cv32e40p_core #(parameter FPU = 0, parameter PULP_XPULP = 0)(input logic clk_i); endmodule";
        let m = module_from(Language::Verilog, src);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let e = |fpu: i64| {
            let mut ov = BTreeMap::new();
            ov.insert("FPU".to_string(), fpu);
            let params = bind_parameters(&m, &ov).unwrap();
            Cv32e40pModel
                .elaborate(&ElabContext {
                    module: &m,
                    params: &params,
                    part: &part,
                })
                .unwrap()
        };
        assert!(e(1).luts() > e(0).luts());
        assert!(e(1).logic_levels > e(0).logic_levels);
    }

    #[test]
    fn model_name_matching() {
        assert!(Neorv32Model.matches("neorv32_top"));
        assert!(Neorv32Model.matches("NEORV32"));
        assert!(!Neorv32Model.matches("cv32e40p_core"));
        assert!(Cv32e40pModel.matches("cv32e40p_core"));
        assert!(!Cv32e40pModel.matches("cv32e40p_fifo"));
    }
}
