//! Interface-driven fallback model.
//!
//! When no architecture-specific model matches, the simulator still has to
//! complete the flow (Dovado is "generally valid for hardware development",
//! §III-A). This model estimates resources from what the parser extracted:
//! total port bit width and the magnitudes of the bound parameters. The
//! estimates are crude but deterministic, smooth, and monotone in each
//! parameter — enough for exploration machinery to behave sensibly on
//! arbitrary modules.

use crate::archmodel::{ArchModel, ElabContext};
use crate::error::EdaResult;
use crate::netlist::Netlist;
use dovado_fpga::{ResourceKind, ResourceSet};
use dovado_hdl::clog2;

/// Generic interface-driven estimator.
#[derive(Debug, Default)]
pub struct GenericInterfaceModel;

impl ArchModel for GenericInterfaceModel {
    fn name(&self) -> &str {
        "generic-interface"
    }

    fn matches(&self, _module_name: &str) -> bool {
        true
    }

    fn elaborate(&self, ctx: &ElabContext<'_>) -> EdaResult<Netlist> {
        // Total interface width under the bound parameters; ports whose
        // widths cannot be evaluated count as 8 bits.
        let mut port_bits: u64 = 0;
        for p in &ctx.module.ports {
            let w = p.ty.bit_width(ctx.params).unwrap_or(8).max(1) as u64;
            port_bits += w;
        }
        port_bits = port_bits.max(1);

        // Each free parameter contributes logic proportional to its
        // magnitude's bit width (a parameter of 1024 presumably sizes a
        // structure 10 "levels" deep/wide somewhere).
        let mut param_weight: u64 = 0;
        for p in ctx.module.free_parameters() {
            if let Some(v) = ctx.param(&p.name) {
                param_weight += clog2(v.unsigned_abs().max(2)) as u64;
            }
        }

        let luts = 3 * port_bits + 24 * param_weight + 16;
        let regs = 2 * port_bits + 12 * param_weight + 8;

        let mut nl = Netlist::empty(&ctx.module.name);
        nl.cells = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Carry, port_bits / 16),
        ]);
        nl.logic_levels = 4 + (param_weight / 24) as u32;
        nl.carry_bits = (port_bits / 8).min(64) as u32;
        nl.fanout_cost = 0.8;
        nl.crit_path = format!("generic estimate over {port_bits} interface bits");
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archmodel::bind_parameters;
    use crate::models::testutil::module_from;
    use dovado_fpga::Catalog;
    use dovado_hdl::Language;
    use std::collections::BTreeMap;

    const SRC: &str = r#"
module mystery #(
    parameter WIDTH = 8,
    parameter DEPTH = 64
)(
    input  wire clk,
    input  wire [WIDTH-1:0] din,
    output wire [WIDTH-1:0] dout
);
endmodule"#;

    fn elab(width: i64, depth: i64) -> Netlist {
        let m = module_from(Language::Verilog, SRC);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let mut ov = BTreeMap::new();
        ov.insert("WIDTH".to_string(), width);
        ov.insert("DEPTH".to_string(), depth);
        let params = bind_parameters(&m, &ov).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        GenericInterfaceModel.elaborate(&ctx).unwrap()
    }

    #[test]
    fn matches_everything() {
        assert!(GenericInterfaceModel.matches("anything_at_all"));
    }

    #[test]
    fn monotone_in_parameters() {
        assert!(elab(32, 64).luts() > elab(8, 64).luts());
        assert!(elab(8, 4096).luts() > elab(8, 64).luts());
    }

    #[test]
    fn port_widths_feed_estimate() {
        // Widening the data ports (via WIDTH) grows both LUTs and registers.
        let narrow = elab(4, 64);
        let wide = elab(64, 64);
        assert!(wide.registers() > narrow.registers());
    }

    #[test]
    fn handles_module_without_parameters() {
        let m = module_from(
            Language::Verilog,
            "module leaf(input wire a, output wire b); endmodule",
        );
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let params = bind_parameters(&m, &BTreeMap::new()).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        let nl = GenericInterfaceModel.elaborate(&ctx).unwrap();
        assert!(nl.luts() > 0);
        assert_eq!(nl.logic_levels, 4);
    }
}
