//! Cost model for register-based synchronous FIFOs (cv32e40p `fifo_v3`).
//!
//! The cv32e40p FIFO stores entries in flip-flops with a read-side
//! multiplexer, so:
//!
//! * registers grow linearly in `DEPTH × DATA_WIDTH` (plus pointers),
//! * LUTs are dominated by the `DEPTH`-to-1 read mux (≈ one LUT6 per
//!   3 mux inputs per data bit) plus pointer compare/increment logic,
//! * the critical path is the mux tree, whose depth grows with
//!   `log2(DEPTH)`.
//!
//! All three metric surfaces are smooth in `DEPTH`, which is exactly what
//! the paper's Fig. 3 experiment needs: "a module that provides enough
//! samples for accuracy assessment".

use crate::archmodel::{ArchModel, ElabContext};
use crate::error::EdaResult;
use crate::netlist::Netlist;
use dovado_fpga::{ResourceKind, ResourceSet};
use dovado_hdl::clog2;

/// FIFO architecture model.
#[derive(Debug, Default)]
pub struct FifoModel;

impl ArchModel for FifoModel {
    fn name(&self) -> &str {
        "cv32e40p-fifo"
    }

    fn matches(&self, module_name: &str) -> bool {
        let n = module_name.to_ascii_lowercase();
        n == "fifo" || n == "fifo_v3" || n == "cv32e40p_fifo" || n.ends_with("_fifo")
    }

    fn elaborate(&self, ctx: &ElabContext<'_>) -> EdaResult<Netlist> {
        let depth = ctx.positive_param("DEPTH")? as u64;
        let width = ctx.param_or("DATA_WIDTH", 32).max(1) as u64;
        let fall_through = ctx.param_or("FALL_THROUGH", 0) != 0;

        let addr_w = clog2(depth.max(2)) as u64;

        // Storage flops + read/write pointers + status counter.
        let regs = width * depth + 2 * addr_w + (addr_w + 1) + 4;

        // Read mux: one LUT6 covers ~3 mux legs (data + 2 selects amortized);
        // pointer increment/compare logic; fall-through adds a bypass mux.
        let mux_luts = width * depth.div_ceil(3);
        let ctrl_luts = 6 * addr_w + 14;
        let bypass_luts = if fall_through { width / 2 + 4 } else { 0 };
        let luts = mux_luts + ctrl_luts + bypass_luts;

        // Mux tree depth: a LUT6 resolves ~2.5 select bits per level.
        let mux_levels = (addr_w as f64 / 2.5).ceil() as u32 + 2;
        let levels = if fall_through {
            mux_levels + 1
        } else {
            mux_levels
        };

        let mut nl = Netlist::empty(&ctx.module.name);
        nl.cells = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Carry, addr_w.div_ceil(4) + 1),
        ]);
        nl.logic_levels = levels.max(2);
        nl.carry_bits = addr_w as u32 + 1;
        // The write-enable fans out to every storage flop.
        nl.fanout_cost = (depth as f64 / 64.0).min(3.0);
        nl.crit_path =
            format!("rd_ptr_q[{addr_w}] -> read mux ({depth}:1, {width} bit) -> data_o reg");
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archmodel::bind_parameters;
    use crate::models::testutil::module_from;
    use dovado_fpga::Catalog;
    use dovado_hdl::Language;
    use std::collections::BTreeMap;

    const SRC: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32,
    parameter FALL_THROUGH = 1'b0
)(input logic clk_i);
endmodule"#;

    fn elab(depth: i64) -> Netlist {
        let m = module_from(Language::Verilog, SRC);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let mut ov = BTreeMap::new();
        ov.insert("DEPTH".to_string(), depth);
        let params = bind_parameters(&m, &ov).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        FifoModel.elaborate(&ctx).unwrap()
    }

    #[test]
    fn registers_scale_linearly_with_depth() {
        let a = elab(8);
        let b = elab(16);
        let delta = b.registers() as i64 - a.registers() as i64;
        // 8 extra entries × 32 bits plus pointer growth.
        assert!((256..=280).contains(&delta), "delta {delta}");
    }

    #[test]
    fn luts_grow_with_depth() {
        assert!(elab(64).luts() > elab(8).luts());
        assert!(elab(500).luts() > elab(64).luts());
    }

    #[test]
    fn no_bram_in_flop_fifo() {
        assert_eq!(elab(256).brams(), 0);
    }

    #[test]
    fn logic_levels_grow_logarithmically() {
        let l8 = elab(8).logic_levels;
        let l512 = elab(512).logic_levels;
        assert!(l512 > l8);
        assert!(l512 - l8 <= 4, "log growth expected, got {l8} -> {l512}");
    }

    #[test]
    fn fall_through_adds_bypass() {
        let m = module_from(Language::Verilog, SRC);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let mut ov = BTreeMap::new();
        ov.insert("DEPTH".to_string(), 32i64);
        ov.insert("FALL_THROUGH".to_string(), 1i64);
        let params = bind_parameters(&m, &ov).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        let ft = FifoModel.elaborate(&ctx).unwrap();
        let plain = elab(32);
        assert!(ft.luts() > plain.luts());
        assert_eq!(ft.logic_levels, plain.logic_levels + 1);
    }

    #[test]
    fn invalid_depth_rejected() {
        let m = module_from(Language::Verilog, SRC);
        let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
        let mut ov = BTreeMap::new();
        ov.insert("DEPTH".to_string(), 0i64);
        let params = bind_parameters(&m, &ov).unwrap();
        let ctx = ElabContext {
            module: &m,
            params: &params,
            part: &part,
        };
        assert!(FifoModel.elaborate(&ctx).is_err());
    }

    #[test]
    fn matches_cv32e40p_names() {
        assert!(FifoModel.matches("fifo_v3"));
        assert!(FifoModel.matches("FIFO"));
        assert!(FifoModel.matches("prefetch_fifo"));
        assert!(!FifoModel.matches("queue_manager"));
    }

    #[test]
    fn surfaces_are_smooth_over_depth() {
        // Adjacent depths must produce nearby metric values — the surrogate
        // experiment depends on local continuity.
        let mut prev = elab(100);
        for d in (102..140).step_by(2) {
            let cur = elab(d);
            let lut_jump = (cur.luts() as f64 - prev.luts() as f64).abs() / prev.luts() as f64;
            assert!(lut_jump < 0.05, "LUT jump {lut_jump} at depth {d}");
            prev = cur;
        }
    }
}
