//! Architecture models: how the simulator "synthesizes" a module.
//!
//! A real synthesis tool derives cell counts from the RTL body. This
//! simulator instead dispatches on the module name to a registered
//! [`ArchModel`], an analytic cost model calibrated to that architecture's
//! published behaviour; unknown modules fall back to a generic
//! interface-driven estimator so every parsed module can complete the flow.
//!
//! Models receive the *bound* parameter environment (defaults merged with
//! generic-map overrides and tool `-generic` options) and the target part,
//! so their estimates can be device-aware (e.g. URAM inference only on
//! UltraScale+).

use crate::error::{EdaError, EdaResult};
use crate::hash;
use crate::netlist::Netlist;
use dovado_fpga::Part;
use dovado_hdl::ModuleInterface;
use std::collections::BTreeMap;

/// Everything a model may consult while elaborating one module.
pub struct ElabContext<'a> {
    /// The parsed interface of the module being elaborated.
    pub module: &'a ModuleInterface,
    /// Fully-resolved integer parameter bindings (defaults + overrides).
    pub params: &'a BTreeMap<String, i64>,
    /// Target device.
    pub part: &'a Part,
}

impl ElabContext<'_> {
    /// Looks up a bound parameter case-insensitively.
    pub fn param(&self, name: &str) -> Option<i64> {
        self.params.get(name).copied().or_else(|| {
            self.params
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| *v)
        })
    }

    /// Looks up a parameter or returns `default`.
    pub fn param_or(&self, name: &str, default: i64) -> i64 {
        self.param(name).unwrap_or(default)
    }

    /// Requires a strictly positive parameter.
    pub fn positive_param(&self, name: &str) -> EdaResult<i64> {
        match self.param(name) {
            Some(v) if v > 0 => Ok(v),
            Some(v) => Err(EdaError::Parameter(format!(
                "parameter `{name}` must be positive, got {v}"
            ))),
            None => Err(EdaError::Parameter(format!(
                "parameter `{name}` is not bound"
            ))),
        }
    }

    /// Stable identity hash for the (module, params, part) triple.
    pub fn design_hash(&self) -> u64 {
        let mut h = hash::hash_str(&self.module.name);
        for (k, v) in self.params {
            h = hash::combine(h, hash::hash_str(k));
            h = hash::combine(h, *v as u64);
        }
        hash::combine(h, hash::hash_str(&self.part.name))
    }
}

/// A registered architecture cost model.
pub trait ArchModel: Send + Sync {
    /// Model name (for reports and debugging).
    fn name(&self) -> &str;

    /// Whether this model handles the given module name.
    fn matches(&self, module_name: &str) -> bool;

    /// Produces the synthetic netlist for the module under the binding.
    fn elaborate(&self, ctx: &ElabContext<'_>) -> EdaResult<Netlist>;
}

/// Ordered model registry with a generic fallback.
pub struct ModelRegistry {
    models: Vec<Box<dyn ArchModel>>,
    fallback: Box<dyn ArchModel>,
}

impl ModelRegistry {
    /// Creates a registry with the standard built-in models (see
    /// [`crate::models`]).
    pub fn with_builtin_models() -> ModelRegistry {
        let mut r = ModelRegistry {
            models: Vec::new(),
            fallback: Box::new(crate::models::generic::GenericInterfaceModel),
        };
        for m in crate::models::builtin_models() {
            r.register(m);
        }
        r
    }

    /// Creates an empty registry (generic fallback only).
    pub fn empty() -> ModelRegistry {
        ModelRegistry {
            models: Vec::new(),
            fallback: Box::new(crate::models::generic::GenericInterfaceModel),
        }
    }

    /// Registers a model; later registrations take precedence.
    pub fn register(&mut self, model: Box<dyn ArchModel>) {
        self.models.insert(0, model);
    }

    /// The model that will handle `module_name`.
    pub fn model_for(&self, module_name: &str) -> &dyn ArchModel {
        self.models
            .iter()
            .find(|m| m.matches(module_name))
            .map(|b| b.as_ref())
            .unwrap_or(self.fallback.as_ref())
    }

    /// Elaborates a module, stamping the design hash.
    pub fn elaborate(&self, ctx: &ElabContext<'_>) -> EdaResult<Netlist> {
        let model = self.model_for(&ctx.module.name);
        let mut nl = model.elaborate(ctx)?;
        nl.design_hash = ctx.design_hash();
        Ok(nl)
    }

    /// Names of registered models, highest priority first.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.name()).collect()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::with_builtin_models()
    }
}

/// Resolves the full parameter environment for a module: constant defaults
/// first, then `overrides` (names matched case-insensitively against the
/// declared parameters).
///
/// Locals (`localparam`) are re-derived from their default expressions
/// under the final binding where possible, so models can consult them.
pub fn bind_parameters(
    module: &ModuleInterface,
    overrides: &BTreeMap<String, i64>,
) -> EdaResult<BTreeMap<String, i64>> {
    let mut env: BTreeMap<String, i64> = BTreeMap::new();
    // Pass 1: closed-form defaults in declaration order (later defaults may
    // reference earlier parameters).
    for p in &module.parameters {
        if let Some(d) = &p.default {
            if let Ok(v) = d.eval(&env) {
                env.insert(p.name.clone(), v);
            }
        }
    }
    // Pass 2: apply overrides.
    for (k, v) in overrides {
        let declared = module.parameter(k);
        match declared {
            Some(p) if p.local => {
                return Err(EdaError::Parameter(format!(
                    "cannot override localparam `{}`",
                    p.name
                )))
            }
            Some(p) => {
                env.insert(p.name.clone(), *v);
            }
            None => {
                // Tolerate unknown overrides with the tool's behaviour:
                // Vivado warns and ignores. We keep it in the environment so
                // width expressions referencing it still evaluate.
                env.insert(k.clone(), *v);
            }
        }
    }
    // Pass 3: recompute locals under the final binding.
    for p in &module.parameters {
        if p.local {
            if let Some(d) = &p.default {
                if let Ok(v) = d.eval(&env) {
                    env.insert(p.name.clone(), v);
                }
            }
        }
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dovado_hdl::{parse_source, Language};

    fn fifo_module() -> ModuleInterface {
        let src = r#"
module fifo #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32,
    localparam ADDR_W = $clog2(DEPTH)
)(input wire clk_i);
endmodule"#;
        let (f, _) = parse_source(Language::Verilog, src).unwrap();
        f.modules[0].clone()
    }

    #[test]
    fn bind_defaults_then_overrides() {
        let m = fifo_module();
        let mut ov = BTreeMap::new();
        ov.insert("DEPTH".to_string(), 512i64);
        let env = bind_parameters(&m, &ov).unwrap();
        assert_eq!(env["DEPTH"], 512);
        assert_eq!(env["DATA_WIDTH"], 32);
        // localparam recomputed under the override
        assert_eq!(env["ADDR_W"], 9);
    }

    #[test]
    fn bind_rejects_localparam_override() {
        let m = fifo_module();
        let mut ov = BTreeMap::new();
        ov.insert("ADDR_W".to_string(), 3i64);
        assert!(matches!(
            bind_parameters(&m, &ov),
            Err(EdaError::Parameter(_))
        ));
    }

    #[test]
    fn bind_case_insensitive_override() {
        let m = fifo_module();
        let mut ov = BTreeMap::new();
        ov.insert("depth".to_string(), 64i64);
        let env = bind_parameters(&m, &ov).unwrap();
        assert_eq!(env["DEPTH"], 64);
    }

    #[test]
    fn bind_tolerates_unknown_override() {
        let m = fifo_module();
        let mut ov = BTreeMap::new();
        ov.insert("NOT_A_PARAM".to_string(), 1i64);
        let env = bind_parameters(&m, &ov).unwrap();
        assert_eq!(env["NOT_A_PARAM"], 1);
    }

    #[test]
    fn bind_evaluates_ternary_localparams() {
        let src = r#"
module m #(
    parameter DEPTH = 8,
    localparam ADDR = (DEPTH > 1) ? $clog2(DEPTH) : 1
)(input wire clk);
endmodule"#;
        let (f, _) = parse_source(Language::Verilog, src).unwrap();
        let m = f.modules[0].clone();
        let mut ov = BTreeMap::new();
        ov.insert("DEPTH".to_string(), 500i64);
        let env = bind_parameters(&m, &ov).unwrap();
        assert_eq!(env["ADDR"], 9);
        ov.insert("DEPTH".to_string(), 1i64);
        let env = bind_parameters(&m, &ov).unwrap();
        assert_eq!(env["ADDR"], 1);
    }

    #[test]
    fn registry_dispatches_and_falls_back() {
        let reg = ModelRegistry::with_builtin_models();
        // Known case-study model.
        assert_ne!(reg.model_for("fifo_v3").name(), "generic-interface");
        // Unknown module → generic.
        assert_eq!(
            reg.model_for("totally_unknown_xyz").name(),
            "generic-interface"
        );
    }

    #[test]
    fn design_hash_changes_with_params_and_part() {
        let m = fifo_module();
        let part_a = dovado_fpga::Catalog::builtin()
            .resolve("xc7k70t")
            .unwrap()
            .clone();
        let part_b = dovado_fpga::Catalog::builtin()
            .resolve("xczu3eg")
            .unwrap()
            .clone();
        let mut p1 = BTreeMap::new();
        p1.insert("DEPTH".to_string(), 8i64);
        let mut p2 = BTreeMap::new();
        p2.insert("DEPTH".to_string(), 9i64);
        let h = |params: &BTreeMap<String, i64>, part: &Part| {
            ElabContext {
                module: &m,
                params,
                part,
            }
            .design_hash()
        };
        assert_ne!(h(&p1, &part_a), h(&p2, &part_a));
        assert_ne!(h(&p1, &part_a), h(&p1, &part_b));
        assert_eq!(h(&p1, &part_a), h(&p1, &part_a));
    }
}
