//! Design checkpoints and the incremental flow.
//!
//! Vivado's incremental design flow "writes some archives, called
//! checkpoints" per run; reusing them "avoids repeating the exploration of
//! design parts not affected by parametrization" (§III-B2). The simulator
//! models that as a store keyed by the exact design hash (full reuse — the
//! paper's "Vivado employs cached results" case) with a secondary index by
//! (module, part, step) for *incremental* reuse: a prior run of the same
//! module with different parameters cuts the simulated run time by a reuse
//! factor.

use crate::place_route::ImplResult;
use crate::synth::SynthResult;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Which flow step a checkpoint captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowStep {
    /// After `synth_design`.
    Synthesis,
    /// After `route_design`.
    Implementation,
}

/// A stored checkpoint.
#[derive(Debug, Clone)]
pub enum Checkpoint {
    /// Synthesis result.
    Synth(SynthResult),
    /// Implementation result.
    Impl(ImplResult),
}

/// How much of a fresh run's cost a reuse class still pays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reuse {
    /// No prior checkpoint: pay the full run time.
    None,
    /// Same module, different parameters: incremental flow applies.
    Incremental,
    /// Identical design hash: the tool answers from cache.
    Exact,
}

impl Reuse {
    /// Run-time multiplier for this reuse class.
    pub fn runtime_factor(&self) -> f64 {
        match self {
            Reuse::None => 1.0,
            Reuse::Incremental => 0.42,
            Reuse::Exact => 0.04,
        }
    }
}

#[derive(Default)]
struct Inner {
    /// Exact results by (design_hash, step).
    exact: HashMap<(u64, FlowStep), Checkpoint>,
    /// Incremental basis by (module, part, step) → most recent design hash.
    by_module: HashMap<(String, String, FlowStep), u64>,
}

/// A shareable, thread-safe checkpoint store.
#[derive(Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Inner>>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a checkpoint.
    pub fn put(&self, design_hash: u64, module: &str, part: &str, step: FlowStep, cp: Checkpoint) {
        let mut g = self.inner.lock();
        g.exact.insert((design_hash, step), cp);
        g.by_module.insert(
            (module.to_ascii_lowercase(), part.to_ascii_lowercase(), step),
            design_hash,
        );
    }

    /// Exact lookup.
    pub fn get_exact(&self, design_hash: u64, step: FlowStep) -> Option<Checkpoint> {
        self.inner.lock().exact.get(&(design_hash, step)).cloned()
    }

    /// Classifies the reuse available for a run.
    pub fn classify(&self, design_hash: u64, module: &str, part: &str, step: FlowStep) -> Reuse {
        let g = self.inner.lock();
        if g.exact.contains_key(&(design_hash, step)) {
            return Reuse::Exact;
        }
        if g.by_module
            .contains_key(&(module.to_ascii_lowercase(), part.to_ascii_lowercase(), step))
        {
            return Reuse::Incremental;
        }
        Reuse::None
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.inner.lock().exact.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.exact.clear();
        g.by_module.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::synth::SynthDirective;

    fn synth_cp() -> Checkpoint {
        Checkpoint::Synth(SynthResult {
            netlist: Netlist::empty("m"),
            runtime_s: 1.0,
            directive: SynthDirective::Default,
            log: String::new(),
        })
    }

    #[test]
    fn exact_reuse_after_put() {
        let store = CheckpointStore::new();
        assert_eq!(
            store.classify(42, "m", "p", FlowStep::Synthesis),
            Reuse::None
        );
        store.put(42, "m", "p", FlowStep::Synthesis, synth_cp());
        assert_eq!(
            store.classify(42, "m", "p", FlowStep::Synthesis),
            Reuse::Exact
        );
        assert!(store.get_exact(42, FlowStep::Synthesis).is_some());
    }

    #[test]
    fn incremental_reuse_for_same_module_other_params() {
        let store = CheckpointStore::new();
        store.put(42, "fifo", "xc7k70t", FlowStep::Synthesis, synth_cp());
        // Different design hash (other params), same module/part/step.
        assert_eq!(
            store.classify(43, "fifo", "xc7k70t", FlowStep::Synthesis),
            Reuse::Incremental
        );
        // Different part → no basis.
        assert_eq!(
            store.classify(43, "fifo", "xczu3eg", FlowStep::Synthesis),
            Reuse::None
        );
        // Different step → no basis.
        assert_eq!(
            store.classify(43, "fifo", "xc7k70t", FlowStep::Implementation),
            Reuse::None
        );
    }

    #[test]
    fn case_insensitive_module_and_part() {
        let store = CheckpointStore::new();
        store.put(1, "FIFO", "XC7K70T", FlowStep::Synthesis, synth_cp());
        assert_eq!(
            store.classify(2, "fifo", "xc7k70t", FlowStep::Synthesis),
            Reuse::Incremental
        );
    }

    #[test]
    fn runtime_factors_ordered() {
        assert!(Reuse::Exact.runtime_factor() < Reuse::Incremental.runtime_factor());
        assert!(Reuse::Incremental.runtime_factor() < Reuse::None.runtime_factor());
    }

    #[test]
    fn clear_empties_store() {
        let store = CheckpointStore::new();
        store.put(1, "m", "p", FlowStep::Synthesis, synth_cp());
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(
            store.classify(1, "m", "p", FlowStep::Synthesis),
            Reuse::None
        );
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = CheckpointStore::new();
        let s2 = store.clone();
        std::thread::spawn(move || {
            s2.put(9, "m", "p", FlowStep::Implementation, synth_cp());
        })
        .join()
        .unwrap();
        assert_eq!(store.len(), 1);
    }
}
