//! Deterministic fault injection for the simulated EDA flow.
//!
//! Real Vivado runs fail for reasons that have nothing to do with the
//! design point: license hiccups, OOM kills, NFS glitches, truncated
//! reports from a dying process. A DSE framework has to survive those
//! without treating them as properties of the design. This module lets a
//! [`crate::VivadoSim`] session reproduce that failure surface on demand:
//! a [`FaultPlan`] gives each fault kind a per-occurrence probability, and
//! a [`FaultInjector`] draws from a deterministic, seedable stream, so a
//! given (plan, seed) pair always injects the same faults at the same
//! points in the flow — tests replay exactly.

use parking_lot::Mutex;
use std::sync::Arc;

/// The faults the simulator can inject, by flow stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Tool process dies during `synth_design`.
    SynthCrash,
    /// `synth_design` exceeds its time budget and is killed.
    SynthTimeout,
    /// Tool process dies during `route_design`.
    RouteCrash,
    /// `route_design` exceeds its time budget and is killed.
    RouteTimeout,
    /// A report file is cut off mid-write.
    ReportTruncated,
    /// A report file has garbage where its numbers should be.
    ReportGarbled,
    /// A checkpoint on disk fails its integrity check when read back.
    CheckpointCorrupt,
    /// The *host* process driving the exploration dies between
    /// generations — the whole DSE run is interrupted, not one tool call.
    /// Drawn by the journaled exploration loop, never by the flow itself,
    /// so enabling it leaves every tool answer bitwise unchanged.
    HostCrash,
    /// A remote worker process dies mid-dispatch. Drawn only by the
    /// distributed coordinator ([`crate::remote::RemoteBackend`]), once
    /// per dispatched eval; in-process backends never roll it.
    WorkerDeath,
}

/// Per-occurrence fault probabilities plus the injector seed.
///
/// All probabilities default to zero (no faults); [`FaultPlan::none`] is
/// the explicit spelling of that. Probabilities are evaluated
/// independently each time the flow passes the corresponding point.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's deterministic draw stream.
    pub seed: u64,
    /// P(crash) per `synth_design` invocation.
    pub synth_crash: f64,
    /// P(timeout) per `synth_design` invocation.
    pub synth_timeout: f64,
    /// P(crash) per `route_design` invocation.
    pub route_crash: f64,
    /// P(timeout) per `route_design` invocation.
    pub route_timeout: f64,
    /// P(truncation) per report written.
    pub report_truncated: f64,
    /// P(garbling) per report written.
    pub report_garbled: f64,
    /// P(corruption) per checkpoint read.
    pub checkpoint_corrupt: f64,
    /// P(host crash) per completed generation of a journaled exploration.
    pub host_crash: f64,
    /// P(worker death) per eval dispatched to a remote worker. Like
    /// `host_crash`, this is a scheduling-level fault: tool answers stay
    /// bitwise unchanged because the dead worker's session replays onto a
    /// fresh one.
    pub worker_death: f64,
    /// Simulated seconds wasted by a crash before the process died.
    pub crash_cost_s: f64,
    /// Simulated seconds burned before a hung tool was killed.
    pub timeout_cost_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            synth_crash: 0.0,
            synth_timeout: 0.0,
            route_crash: 0.0,
            route_timeout: 0.0,
            report_truncated: 0.0,
            report_garbled: 0.0,
            checkpoint_corrupt: 0.0,
            host_crash: 0.0,
            worker_death: 0.0,
            crash_cost_s: 30.0,
            timeout_cost_s: 300.0,
        }
    }
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Every fault kind at the same per-occurrence probability `p`.
    pub fn uniform(seed: u64, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        FaultPlan {
            seed,
            synth_crash: p,
            synth_timeout: p,
            route_crash: p,
            route_timeout: p,
            report_truncated: p,
            report_garbled: p,
            checkpoint_corrupt: p,
            ..FaultPlan::default()
        }
    }

    /// Whether any fault can ever fire under this plan.
    pub fn is_active(&self) -> bool {
        [
            self.synth_crash,
            self.synth_timeout,
            self.route_crash,
            self.route_timeout,
            self.report_truncated,
            self.report_garbled,
            self.checkpoint_corrupt,
            self.host_crash,
            self.worker_death,
        ]
        .iter()
        .any(|&p| p > 0.0)
    }

    /// The probability configured for `kind`.
    pub fn probability(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::SynthCrash => self.synth_crash,
            FaultKind::SynthTimeout => self.synth_timeout,
            FaultKind::RouteCrash => self.route_crash,
            FaultKind::RouteTimeout => self.route_timeout,
            FaultKind::ReportTruncated => self.report_truncated,
            FaultKind::ReportGarbled => self.report_garbled,
            FaultKind::CheckpointCorrupt => self.checkpoint_corrupt,
            FaultKind::HostCrash => self.host_crash,
            FaultKind::WorkerDeath => self.worker_death,
        }
    }
}

/// Draws faults from a deterministic stream shared across sessions.
///
/// Clones share the underlying stream, so an evaluator that spins up a
/// fresh `VivadoSim` per attempt still sees one global fault sequence —
/// retries consume new draws instead of replaying the fault that killed
/// the previous attempt.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: Arc<Mutex<u64>>,
}

impl FaultInjector {
    /// Creates an injector seeded from the plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let state = Arc::new(Mutex::new(plan.seed ^ 0x6A09_E667_F3BC_C908));
        FaultInjector { plan, state }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `kind` fires at this point in the flow (consumes one draw
    /// whenever the kind has a nonzero probability).
    pub fn fires(&self, kind: FaultKind) -> bool {
        let p = self.plan.probability(kind);
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// SplitMix64 step shared by all clones.
    fn next_f64(&self) -> f64 {
        let mut state = self.state.lock();
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Corrupts report text the way a dying tool does: either cut off
    /// mid-file or with its numerals overwritten by filler.
    pub fn mangle_report(&self, kind: FaultKind, text: &str) -> String {
        match kind {
            FaultKind::ReportTruncated => {
                let cut = text.len() / 3;
                // Cut on a char boundary (reports are ASCII, but be safe).
                let mut cut = cut.min(text.len());
                while cut > 0 && !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                text[..cut].to_string()
            }
            FaultKind::ReportGarbled => text
                .chars()
                .map(|c| if c.is_ascii_digit() { '?' } else { c })
                .collect(),
            _ => text.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..100 {
            assert!(!inj.fires(FaultKind::SynthCrash));
            assert!(!inj.fires(FaultKind::CheckpointCorrupt));
        }
        assert!(!FaultPlan::none().is_active());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FaultInjector::new(FaultPlan::uniform(7, 0.5));
        let b = FaultInjector::new(FaultPlan::uniform(7, 0.5));
        let seq_a: Vec<bool> = (0..64).map(|_| a.fires(FaultKind::SynthCrash)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.fires(FaultKind::SynthCrash)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f) && seq_a.iter().any(|&f| !f));
    }

    #[test]
    fn clones_share_the_stream() {
        let a = FaultInjector::new(FaultPlan::uniform(3, 0.5));
        let b = a.clone();
        // Interleaved draws across clones must not repeat each other.
        let seq: Vec<bool> = (0..64)
            .map(|i| if i % 2 == 0 { &a } else { &b }.fires(FaultKind::RouteCrash))
            .collect();
        let fresh = FaultInjector::new(FaultPlan::uniform(3, 0.5));
        let solo: Vec<bool> = (0..64)
            .map(|_| fresh.fires(FaultKind::RouteCrash))
            .collect();
        assert_eq!(seq, solo);
    }

    #[test]
    fn rate_tracks_probability() {
        let inj = FaultInjector::new(FaultPlan::uniform(11, 0.25));
        let hits = (0..4000)
            .filter(|_| inj.fires(FaultKind::SynthTimeout))
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn mangling_breaks_numbers_or_length() {
        let inj = FaultInjector::new(FaultPlan::none());
        let text = "| Slice LUTs | 1234 |\n| Registers | 567 |\n";
        let truncated = inj.mangle_report(FaultKind::ReportTruncated, text);
        assert!(truncated.len() < text.len());
        let garbled = inj.mangle_report(FaultKind::ReportGarbled, text);
        assert_eq!(garbled.len(), text.len());
        assert!(!garbled.chars().any(|c| c.is_ascii_digit()));
    }
}
