//! Synthetic netlists.
//!
//! The simulator does not build gate-level netlists; it elaborates a design
//! into a [`Netlist`] summary — resource counts plus a critical-path
//! skeleton — which is everything the synthesis/place/route/timing engines
//! need to produce Vivado-shaped results.

use dovado_fpga::{ResourceKind, ResourceSet};
use std::fmt;

/// The elaborated summary of one design (top module plus its hierarchy).
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// Top module name.
    pub module: String,
    /// Resource usage before synthesis optimizations.
    pub cells: ResourceSet,
    /// LUT levels on the critical register-to-register path.
    pub logic_levels: u32,
    /// Carry-chain bits on the critical path.
    pub carry_bits: u32,
    /// Extra net hops on the critical path due to high-fanout nets
    /// (fractional: average over the worst paths).
    pub fanout_cost: f64,
    /// Whether the critical path passes through a block RAM.
    pub crit_through_bram: bool,
    /// Whether the critical path passes through a DSP slice.
    pub crit_through_dsp: bool,
    /// Human-readable description of the critical path (appears in timing
    /// reports).
    pub crit_path: String,
    /// Stable identity of the elaborated design: hash of module name,
    /// bound parameters and sources. Used for checkpoint keys and noise
    /// seeding.
    pub design_hash: u64,
}

impl Netlist {
    /// Creates an empty netlist for the named module.
    pub fn empty(module: impl Into<String>) -> Netlist {
        Netlist {
            module: module.into(),
            cells: ResourceSet::zero(),
            logic_levels: 1,
            carry_bits: 0,
            fanout_cost: 0.0,
            crit_through_bram: false,
            crit_through_dsp: false,
            crit_path: String::new(),
            design_hash: 0,
        }
    }

    /// Shorthand accessors used throughout the flow engines.
    pub fn luts(&self) -> u64 {
        self.cells.get(ResourceKind::Lut)
    }

    /// Register count.
    pub fn registers(&self) -> u64 {
        self.cells.get(ResourceKind::Register)
    }

    /// BRAM tile count.
    pub fn brams(&self) -> u64 {
        self.cells.get(ResourceKind::Bram)
    }

    /// DSP slice count.
    pub fn dsps(&self) -> u64 {
        self.cells.get(ResourceKind::Dsp)
    }

    /// Merges a submodule netlist into this one (cells add; the critical
    /// path is the deeper of the two).
    pub fn absorb(&mut self, other: &Netlist) {
        self.cells += other.cells;
        if other.logic_levels > self.logic_levels {
            self.logic_levels = other.logic_levels;
            self.carry_bits = other.carry_bits;
            self.crit_through_bram = other.crit_through_bram;
            self.crit_through_dsp = other.crit_through_dsp;
            self.crit_path = other.crit_path.clone();
        }
        self.fanout_cost = self.fanout_cost.max(other.fanout_cost);
        self.design_hash = crate::hash::combine(self.design_hash, other.design_hash);
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cells [{}], {} logic levels",
            self.module,
            self.cells.total(),
            self.cells,
            self.logic_levels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_minimal() {
        let n = Netlist::empty("m");
        assert_eq!(n.luts(), 0);
        assert_eq!(n.logic_levels, 1);
        assert!(!n.crit_through_bram);
    }

    #[test]
    fn absorb_adds_cells_and_takes_deeper_path() {
        let mut a = Netlist::empty("a");
        a.cells.set(ResourceKind::Lut, 100);
        a.logic_levels = 3;
        a.crit_path = "a path".into();

        let mut b = Netlist::empty("b");
        b.cells.set(ResourceKind::Lut, 50);
        b.cells.set(ResourceKind::Bram, 2);
        b.logic_levels = 7;
        b.crit_through_bram = true;
        b.crit_path = "b path".into();

        a.absorb(&b);
        assert_eq!(a.luts(), 150);
        assert_eq!(a.brams(), 2);
        assert_eq!(a.logic_levels, 7);
        assert!(a.crit_through_bram);
        assert_eq!(a.crit_path, "b path");
    }

    #[test]
    fn absorb_keeps_own_path_when_deeper() {
        let mut a = Netlist::empty("a");
        a.logic_levels = 9;
        a.crit_path = "a path".into();
        let mut b = Netlist::empty("b");
        b.logic_levels = 2;
        b.crit_path = "b path".into();
        a.absorb(&b);
        assert_eq!(a.crit_path, "a path");
        assert_eq!(a.logic_levels, 9);
    }

    #[test]
    fn display_mentions_module() {
        let n = Netlist::empty("fifo");
        assert!(n.to_string().contains("fifo"));
    }
}
