//! FPGA resource kinds and counted resource sets.
//!
//! The paper's utilization metric "divides into the different available
//! resources for a given board/parts, e.g. BRAMs, CLBs, DSPs", with some
//! resources (URAMs) being device-dependent. [`ResourceKind`] enumerates the
//! kinds Dovado reports and [`ResourceSet`] is a dense counter over them.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub};

/// A countable FPGA resource class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// Look-up tables (LUT6 equivalents).
    Lut,
    /// Flip-flops / registers.
    Register,
    /// 36 Kb block RAMs.
    Bram,
    /// UltraRAM blocks (UltraScale+ only; device-dependent).
    Uram,
    /// DSP slices.
    Dsp,
    /// Carry-chain segments (CARRY4/CARRY8).
    Carry,
    /// Bonded I/O pads.
    Io,
    /// Global clock buffers.
    Bufg,
}

impl ResourceKind {
    /// All kinds, in report order.
    pub const ALL: [ResourceKind; 8] = [
        ResourceKind::Lut,
        ResourceKind::Register,
        ResourceKind::Bram,
        ResourceKind::Uram,
        ResourceKind::Dsp,
        ResourceKind::Carry,
        ResourceKind::Io,
        ResourceKind::Bufg,
    ];

    /// Dense index used by [`ResourceSet`].
    pub fn index(&self) -> usize {
        match self {
            ResourceKind::Lut => 0,
            ResourceKind::Register => 1,
            ResourceKind::Bram => 2,
            ResourceKind::Uram => 3,
            ResourceKind::Dsp => 4,
            ResourceKind::Carry => 5,
            ResourceKind::Io => 6,
            ResourceKind::Bufg => 7,
        }
    }

    /// The label used in Vivado-style utilization reports.
    pub fn report_label(&self) -> &'static str {
        match self {
            ResourceKind::Lut => "CLB LUTs",
            ResourceKind::Register => "CLB Registers",
            ResourceKind::Bram => "Block RAM Tile",
            ResourceKind::Uram => "URAM",
            ResourceKind::Dsp => "DSPs",
            ResourceKind::Carry => "CARRY",
            ResourceKind::Io => "Bonded IOB",
            ResourceKind::Bufg => "BUFGCE",
        }
    }

    /// Parses a report label back into a kind (inverse of
    /// [`ResourceKind::report_label`], tolerant of common variants).
    pub fn from_report_label(label: &str) -> Option<ResourceKind> {
        let l = label.trim().to_ascii_lowercase();
        if l.contains("lut") {
            Some(ResourceKind::Lut)
        } else if l.contains("register") || l.contains("flip") || l == "ff" {
            Some(ResourceKind::Register)
        } else if l.contains("block ram") || l.contains("bram") || l.contains("ramb") {
            Some(ResourceKind::Bram)
        } else if l.contains("uram") {
            Some(ResourceKind::Uram)
        } else if l.contains("dsp") {
            Some(ResourceKind::Dsp)
        } else if l.contains("carry") {
            Some(ResourceKind::Carry)
        } else if l.contains("iob") || l.contains("bonded") {
            Some(ResourceKind::Io)
        } else if l.contains("bufg") {
            Some(ResourceKind::Bufg)
        } else {
            None
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Lut => "LUT",
            ResourceKind::Register => "FF",
            ResourceKind::Bram => "BRAM",
            ResourceKind::Uram => "URAM",
            ResourceKind::Dsp => "DSP",
            ResourceKind::Carry => "CARRY",
            ResourceKind::Io => "IO",
            ResourceKind::Bufg => "BUFG",
        };
        write!(f, "{s}")
    }
}

/// A dense counter over all [`ResourceKind`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ResourceSet {
    counts: [u64; 8],
}

impl ResourceSet {
    /// An all-zero set.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a set from `(kind, count)` pairs.
    pub fn from_pairs(pairs: &[(ResourceKind, u64)]) -> Self {
        let mut s = Self::zero();
        for (k, v) in pairs {
            s[*k] += v;
        }
        s
    }

    /// The count for one kind.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Sets the count for one kind.
    pub fn set(&mut self, kind: ResourceKind, value: u64) {
        self.counts[kind.index()] = value;
    }

    /// Adds `value` to one kind.
    pub fn add(&mut self, kind: ResourceKind, value: u64) {
        self.counts[kind.index()] += value;
    }

    /// True when every count is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Iterator over non-zero `(kind, count)` pairs.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ResourceKind, u64)> + '_ {
        ResourceKind::ALL
            .iter()
            .map(move |k| (*k, self.get(*k)))
            .filter(|(_, c)| *c > 0)
    }

    /// Element-wise saturating subtraction.
    pub fn saturating_sub(&self, rhs: &ResourceSet) -> ResourceSet {
        let mut out = *self;
        for i in 0..out.counts.len() {
            out.counts[i] = out.counts[i].saturating_sub(rhs.counts[i]);
        }
        out
    }

    /// Whether this set fits within `capacity` on every kind.
    pub fn fits_within(&self, capacity: &ResourceSet) -> bool {
        self.counts
            .iter()
            .zip(capacity.counts.iter())
            .all(|(u, c)| u <= c)
    }

    /// Kinds where this set exceeds `capacity`, with the overflow amount.
    pub fn overflows(&self, capacity: &ResourceSet) -> Vec<(ResourceKind, u64)> {
        ResourceKind::ALL
            .iter()
            .filter_map(|k| {
                let used = self.get(*k);
                let cap = capacity.get(*k);
                (used > cap).then(|| (*k, used - cap))
            })
            .collect()
    }

    /// Utilization fraction (0.0–…) of one kind against `capacity`;
    /// `None` when the device has none of that resource.
    pub fn utilization(&self, kind: ResourceKind, capacity: &ResourceSet) -> Option<f64> {
        let cap = capacity.get(kind);
        if cap == 0 {
            return None;
        }
        Some(self.get(kind) as f64 / cap as f64)
    }

    /// The worst (highest) utilization fraction across available kinds.
    pub fn peak_utilization(&self, capacity: &ResourceSet) -> f64 {
        ResourceKind::ALL
            .iter()
            .filter_map(|k| self.utilization(*k, capacity))
            .fold(0.0, f64::max)
    }

    /// Multiplies every count by `factor`, rounding to nearest.
    pub fn scaled(&self, factor: f64) -> ResourceSet {
        let mut out = ResourceSet::zero();
        for (i, c) in self.counts.iter().enumerate() {
            out.counts[i] = ((*c as f64) * factor).round().max(0.0) as u64;
        }
        out
    }

    /// Total of all counts (coarse "size" measure).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Index<ResourceKind> for ResourceSet {
    type Output = u64;
    fn index(&self, kind: ResourceKind) -> &u64 {
        &self.counts[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceSet {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut u64 {
        &mut self.counts[kind.index()]
    }
}

impl Add for ResourceSet {
    type Output = ResourceSet;
    fn add(mut self, rhs: ResourceSet) -> ResourceSet {
        for i in 0..self.counts.len() {
            self.counts[i] += rhs.counts[i];
        }
        self
    }
}

impl AddAssign for ResourceSet {
    fn add_assign(&mut self, rhs: ResourceSet) {
        for i in 0..self.counts.len() {
            self.counts[i] += rhs.counts[i];
        }
    }
}

impl Sub for ResourceSet {
    type Output = ResourceSet;
    fn sub(self, rhs: ResourceSet) -> ResourceSet {
        self.saturating_sub(&rhs)
    }
}

impl fmt::Display for ResourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, c) in self.iter_nonzero() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}={c}")?;
            first = false;
        }
        if first {
            write!(f, "∅")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ResourceKind::*;

    #[test]
    fn indexing_roundtrip() {
        for k in ResourceKind::ALL {
            let mut s = ResourceSet::zero();
            s[k] = 7;
            assert_eq!(s.get(k), 7);
            for other in ResourceKind::ALL {
                if other != k {
                    assert_eq!(s.get(other), 0);
                }
            }
        }
    }

    #[test]
    fn add_and_sub() {
        let a = ResourceSet::from_pairs(&[(Lut, 100), (Register, 200)]);
        let b = ResourceSet::from_pairs(&[(Lut, 50), (Bram, 4)]);
        let sum = a + b;
        assert_eq!(sum.get(Lut), 150);
        assert_eq!(sum.get(Register), 200);
        assert_eq!(sum.get(Bram), 4);
        let diff = sum - a;
        assert_eq!(diff.get(Lut), 50);
        assert_eq!(diff.get(Register), 0);
    }

    #[test]
    fn saturating_sub_no_underflow() {
        let a = ResourceSet::from_pairs(&[(Lut, 10)]);
        let b = ResourceSet::from_pairs(&[(Lut, 100)]);
        assert_eq!(a.saturating_sub(&b).get(Lut), 0);
    }

    #[test]
    fn fits_and_overflows() {
        let cap = ResourceSet::from_pairs(&[(Lut, 1000), (Register, 2000), (Io, 10)]);
        let ok = ResourceSet::from_pairs(&[(Lut, 999), (Io, 10)]);
        assert!(ok.fits_within(&cap));
        let bad = ResourceSet::from_pairs(&[(Lut, 1001), (Io, 12)]);
        assert!(!bad.fits_within(&cap));
        let of = bad.overflows(&cap);
        assert_eq!(of, vec![(Lut, 1), (Io, 2)]);
    }

    #[test]
    fn utilization_handles_missing_resource() {
        let cap = ResourceSet::from_pairs(&[(Lut, 100)]);
        let used = ResourceSet::from_pairs(&[(Lut, 25), (Uram, 3)]);
        assert_eq!(used.utilization(Lut, &cap), Some(0.25));
        assert_eq!(used.utilization(Uram, &cap), None);
    }

    #[test]
    fn peak_utilization_picks_max() {
        let cap = ResourceSet::from_pairs(&[(Lut, 100), (Bram, 10)]);
        let used = ResourceSet::from_pairs(&[(Lut, 10), (Bram, 9)]);
        assert!((used.peak_utilization(&cap) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn scaled_rounds() {
        let s = ResourceSet::from_pairs(&[(Lut, 10)]);
        assert_eq!(s.scaled(1.26).get(Lut), 13);
        assert_eq!(s.scaled(0.0).get(Lut), 0);
    }

    #[test]
    fn report_label_roundtrip() {
        for k in ResourceKind::ALL {
            assert_eq!(
                ResourceKind::from_report_label(k.report_label()),
                Some(k),
                "{k}"
            );
        }
        assert_eq!(ResourceKind::from_report_label("Slice LUTs"), Some(Lut));
        assert_eq!(ResourceKind::from_report_label("RAMB36"), Some(Bram));
        assert_eq!(ResourceKind::from_report_label("nothing"), None);
    }

    #[test]
    fn display_nonzero_only() {
        let s = ResourceSet::from_pairs(&[(Lut, 5), (Dsp, 2)]);
        assert_eq!(s.to_string(), "LUT=5, DSP=2");
        assert_eq!(ResourceSet::zero().to_string(), "∅");
    }

    #[test]
    fn total_and_is_zero() {
        assert!(ResourceSet::zero().is_zero());
        let s = ResourceSet::from_pairs(&[(Lut, 5), (Dsp, 2)]);
        assert_eq!(s.total(), 7);
        assert!(!s.is_zero());
    }
}
