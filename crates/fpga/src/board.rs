//! Development boards mapping to parts.
//!
//! Dovado lets the user "specify target board, top module, search space
//! parameters" (§IV) — boards are a convenience layer resolving to a part
//! plus a default reference clock.

use crate::catalog::Catalog;
use crate::part::Part;

/// A development board.
#[derive(Debug, Clone, PartialEq)]
pub struct Board {
    /// Board name, e.g. `ultra96v2`.
    pub name: String,
    /// The part mounted on the board.
    pub part_name: String,
    /// Reference clock frequency available on the board, in MHz.
    pub ref_clock_mhz: f64,
}

impl Board {
    /// Resolves the board's part against a catalog.
    pub fn part<'a>(&self, catalog: &'a Catalog) -> Option<&'a Part> {
        catalog.resolve(&self.part_name)
    }
}

/// Built-in board list.
pub fn builtin_boards() -> Vec<Board> {
    vec![
        Board {
            name: "kc705".into(),
            part_name: "xc7k70tfbv676-1".into(),
            ref_clock_mhz: 200.0,
        },
        Board {
            name: "genesys2".into(),
            part_name: "xc7k325tffg900-2".into(),
            ref_clock_mhz: 200.0,
        },
        Board {
            name: "arty-a7-35".into(),
            part_name: "xc7a35ticsg324-1l".into(),
            ref_clock_mhz: 100.0,
        },
        Board {
            name: "arty-a7-100".into(),
            part_name: "xc7a100tcsg324-1".into(),
            ref_clock_mhz: 100.0,
        },
        Board {
            name: "ultra96v2".into(),
            part_name: "xczu3eg-sbva484-1-e".into(),
            ref_clock_mhz: 300.0,
        },
        Board {
            name: "zcu102".into(),
            part_name: "xczu9eg-ffvb1156-2-e".into(),
            ref_clock_mhz: 300.0,
        },
    ]
}

/// Finds a board by case-insensitive name.
pub fn find_board(name: &str) -> Option<Board> {
    builtin_boards()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boards_resolve_to_parts() {
        let catalog = Catalog::builtin();
        for b in builtin_boards() {
            assert!(b.part(&catalog).is_some(), "board {} has no part", b.name);
        }
    }

    #[test]
    fn find_board_case_insensitive() {
        assert!(find_board("Ultra96V2").is_some());
        assert!(find_board("nope").is_none());
    }

    #[test]
    fn ultra96_is_zu3eg() {
        let catalog = Catalog::builtin();
        let b = find_board("ultra96v2").unwrap();
        let p = b.part(&catalog).unwrap();
        assert!(p.name.starts_with("xczu3eg"));
    }
}
