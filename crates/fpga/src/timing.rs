//! Device timing parameters used by the simulated place & route engine.
//!
//! The constants are synthetic but ordered like real silicon: newer process
//! nodes and faster speed grades yield proportionally smaller delays, so the
//! paper's headline technology comparison (TiReX at ~550 MHz on a 16 nm
//! ZU3EG vs ~190 MHz on a 28 nm XC7K70T, §IV-D) emerges from the model
//! rather than being hard-coded per experiment.

/// Per-device timing model (all delays in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Process node in nanometres (28 for 7-series, 16 for UltraScale+).
    pub process_nm: u32,
    /// Combinational delay through one LUT6.
    pub t_lut: f64,
    /// Flip-flop setup time.
    pub t_setup: f64,
    /// Flip-flop clock-to-output delay.
    pub t_cko: f64,
    /// Base routing delay per net hop at low congestion.
    pub t_net: f64,
    /// Incremental delay per bit of carry chain.
    pub t_carry: f64,
    /// Block RAM clock-to-output delay (synchronous read).
    pub t_bram: f64,
    /// DSP slice combinational delay (unpipelined).
    pub t_dsp: f64,
    /// Routing-delay inflation exponent vs device utilization: effective
    /// net delay is `t_net * (1 + congestion_alpha * u^2)` where `u` is the
    /// peak resource utilization fraction.
    pub congestion_alpha: f64,
    /// Clock network skew/jitter added once per path.
    pub t_clock_unc: f64,
}

impl TimingModel {
    /// 28 nm 7-series model for the given speed grade (-1 slowest … -3
    /// fastest).
    pub fn series7(speed_grade: i8) -> TimingModel {
        let base = TimingModel {
            process_nm: 28,
            t_lut: 0.124,
            t_setup: 0.040,
            t_cko: 0.340,
            t_net: 0.480,
            t_carry: 0.025,
            t_bram: 1.050,
            t_dsp: 1.450,
            congestion_alpha: 2.2,
            t_clock_unc: 0.035,
        };
        base.scaled(Self::grade_factor(speed_grade))
    }

    /// 16 nm UltraScale+ model for the given speed grade.
    pub fn ultrascale_plus(speed_grade: i8) -> TimingModel {
        let base = TimingModel {
            process_nm: 16,
            t_lut: 0.055,
            t_setup: 0.025,
            t_cko: 0.140,
            t_net: 0.180,
            t_carry: 0.010,
            t_bram: 0.480,
            t_dsp: 0.600,
            congestion_alpha: 1.8,
            t_clock_unc: 0.025,
        };
        base.scaled(Self::grade_factor(speed_grade))
    }

    /// Delay multiplier for a speed grade: -1 is nominal, each faster grade
    /// shaves ~9 %.
    fn grade_factor(speed_grade: i8) -> f64 {
        match speed_grade {
            g if g <= -3 => 0.82,
            -2 => 0.91,
            _ => 1.0,
        }
    }

    /// Returns a copy with every delay multiplied by `factor`
    /// (`congestion_alpha` and `process_nm` are unchanged).
    pub fn scaled(&self, factor: f64) -> TimingModel {
        TimingModel {
            process_nm: self.process_nm,
            t_lut: self.t_lut * factor,
            t_setup: self.t_setup * factor,
            t_cko: self.t_cko * factor,
            t_net: self.t_net * factor,
            t_carry: self.t_carry * factor,
            t_bram: self.t_bram * factor,
            t_dsp: self.t_dsp * factor,
            congestion_alpha: self.congestion_alpha,
            t_clock_unc: self.t_clock_unc * factor,
        }
    }

    /// Effective routed net delay at the given peak utilization fraction.
    pub fn net_delay(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.2);
        self.t_net * (1.0 + self.congestion_alpha * u * u)
    }

    /// Register-to-register path delay for a path with `levels` LUT levels,
    /// `fanout_cost` extra net hops, and optional BRAM/DSP on the path.
    pub fn path_delay(
        &self,
        levels: u32,
        fanout_cost: f64,
        carry_bits: u32,
        through_bram: bool,
        through_dsp: bool,
        utilization: f64,
    ) -> f64 {
        let net = self.net_delay(utilization);
        let mut d = self.t_cko + self.t_setup + self.t_clock_unc;
        d += levels as f64 * (self.t_lut + net);
        d += fanout_cost * net;
        d += carry_bits as f64 * self.t_carry;
        if through_bram {
            d += self.t_bram + net;
        }
        if through_dsp {
            d += self.t_dsp + net;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ultrascale_is_faster_than_series7() {
        let k7 = TimingModel::series7(-1);
        let zu = TimingModel::ultrascale_plus(-1);
        assert!(zu.t_lut < k7.t_lut);
        assert!(zu.t_net < k7.t_net);
        assert!(zu.t_bram < k7.t_bram);
        assert_eq!(zu.process_nm, 16);
        assert_eq!(k7.process_nm, 28);
    }

    #[test]
    fn faster_speed_grades_shrink_delays() {
        let g1 = TimingModel::series7(-1);
        let g2 = TimingModel::series7(-2);
        let g3 = TimingModel::series7(-3);
        assert!(g2.t_lut < g1.t_lut);
        assert!(g3.t_lut < g2.t_lut);
    }

    #[test]
    fn congestion_increases_net_delay() {
        let t = TimingModel::series7(-1);
        assert!(t.net_delay(0.9) > t.net_delay(0.1));
        assert!((t.net_delay(0.0) - t.t_net).abs() < 1e-12);
    }

    #[test]
    fn congestion_clamps_above_capacity() {
        let t = TimingModel::series7(-1);
        assert_eq!(t.net_delay(5.0), t.net_delay(1.2));
    }

    #[test]
    fn path_delay_monotone_in_levels() {
        let t = TimingModel::series7(-1);
        let d1 = t.path_delay(1, 0.0, 0, false, false, 0.2);
        let d5 = t.path_delay(5, 0.0, 0, false, false, 0.2);
        assert!(d5 > d1);
        // Roughly 4 extra (LUT + net) pairs.
        let per_level = t.t_lut + t.net_delay(0.2);
        assert!((d5 - d1 - 4.0 * per_level).abs() < 1e-9);
    }

    #[test]
    fn bram_and_dsp_add_delay() {
        let t = TimingModel::ultrascale_plus(-1);
        let plain = t.path_delay(2, 0.0, 0, false, false, 0.1);
        assert!(t.path_delay(2, 0.0, 0, true, false, 0.1) > plain);
        assert!(t.path_delay(2, 0.0, 0, false, true, 0.1) > plain);
    }

    #[test]
    fn series7_path_lands_in_200mhz_ballpark() {
        // A 6-level path at moderate utilization should be near the ~5 ns
        // (200 MHz) the Corundum experiment reports on Kintex-7.
        let t = TimingModel::series7(-1);
        let d = t.path_delay(6, 1.0, 0, false, false, 0.15);
        assert!(d > 3.0 && d < 7.0, "delay {d} outside plausible window");
    }

    #[test]
    fn scaled_preserves_alpha() {
        let t = TimingModel::series7(-1).scaled(0.5);
        assert!((t.congestion_alpha - 2.2).abs() < 1e-12);
        assert!((t.t_lut - 0.062).abs() < 1e-9);
    }
}
