//! FPGA part descriptions.

use crate::resources::{ResourceKind, ResourceSet};
use crate::timing::TimingModel;
use std::fmt;

/// Device family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Xilinx Artix-7 (28 nm).
    Artix7,
    /// Xilinx Kintex-7 (28 nm).
    Kintex7,
    /// Xilinx Virtex-7 (28 nm).
    Virtex7,
    /// Xilinx Zynq UltraScale+ MPSoC (16 nm).
    ZynqUltraScalePlus,
    /// Xilinx Kintex UltraScale+ (16 nm).
    KintexUltraScalePlus,
    /// Xilinx Virtex UltraScale+ (16 nm).
    VirtexUltraScalePlus,
}

impl Family {
    /// Process node in nanometres.
    pub fn process_nm(&self) -> u32 {
        match self {
            Family::Artix7 | Family::Kintex7 | Family::Virtex7 => 28,
            _ => 16,
        }
    }

    /// Whether the family is UltraScale+ (and thus may carry URAM).
    pub fn is_ultrascale_plus(&self) -> bool {
        self.process_nm() == 16
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Artix7 => "Artix-7",
            Family::Kintex7 => "Kintex-7",
            Family::Virtex7 => "Virtex-7",
            Family::ZynqUltraScalePlus => "Zynq UltraScale+",
            Family::KintexUltraScalePlus => "Kintex UltraScale+",
            Family::VirtexUltraScalePlus => "Virtex UltraScale+",
        };
        write!(f, "{s}")
    }
}

/// One FPGA part (device + package + speed grade).
#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    /// Full part name as used on Vivado command lines,
    /// e.g. `xc7k70tfbv676-1`.
    pub name: String,
    /// Device family.
    pub family: Family,
    /// Resource capacities.
    pub capacity: ResourceSet,
    /// Speed grade (negative numbers, -1 slowest).
    pub speed_grade: i8,
    /// Timing parameters for this device/speed grade.
    pub timing: TimingModel,
}

impl Part {
    /// Builds a 7-series part.
    #[allow(clippy::too_many_arguments)] // a device spec sheet, not an API
    pub fn series7(
        name: &str,
        family: Family,
        luts: u64,
        regs: u64,
        brams: u64,
        dsps: u64,
        ios: u64,
        speed_grade: i8,
    ) -> Part {
        let capacity = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Bram, brams),
            (ResourceKind::Dsp, dsps),
            (ResourceKind::Carry, luts / 4),
            (ResourceKind::Io, ios),
            (ResourceKind::Bufg, 32),
        ]);
        Part {
            name: name.to_ascii_lowercase(),
            family,
            capacity,
            speed_grade,
            timing: TimingModel::series7(speed_grade),
        }
    }

    /// Builds an UltraScale+ part (optionally with URAM).
    #[allow(clippy::too_many_arguments)]
    pub fn ultrascale_plus(
        name: &str,
        family: Family,
        luts: u64,
        regs: u64,
        brams: u64,
        urams: u64,
        dsps: u64,
        ios: u64,
        speed_grade: i8,
    ) -> Part {
        let capacity = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, luts),
            (ResourceKind::Register, regs),
            (ResourceKind::Bram, brams),
            (ResourceKind::Uram, urams),
            (ResourceKind::Dsp, dsps),
            (ResourceKind::Carry, luts / 8),
            (ResourceKind::Io, ios),
            (ResourceKind::Bufg, 64),
        ]);
        Part {
            name: name.to_ascii_lowercase(),
            family,
            capacity,
            speed_grade,
            timing: TimingModel::ultrascale_plus(speed_grade),
        }
    }

    /// Whether the device offers URAM (reported "only if present", §III-A4).
    pub fn has_uram(&self) -> bool {
        self.capacity.get(ResourceKind::Uram) > 0
    }

    /// Number of usable I/O pads — the limit the boxing step exists to
    /// avoid overflowing.
    pub fn io_pins(&self) -> u64 {
        self.capacity.get(ResourceKind::Io)
    }

    /// Resource kinds this device actually has (used to filter report rows).
    pub fn available_kinds(&self) -> Vec<ResourceKind> {
        ResourceKind::ALL
            .iter()
            .copied()
            .filter(|k| self.capacity.get(*k) > 0)
            .collect()
    }
}

impl fmt::Display for Part {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series7_part_has_expected_shape() {
        let p = Part::series7(
            "XC7K70TFBV676-1",
            Family::Kintex7,
            41000,
            82000,
            135,
            240,
            300,
            -1,
        );
        assert_eq!(p.name, "xc7k70tfbv676-1");
        assert_eq!(p.capacity.get(ResourceKind::Lut), 41000);
        assert!(!p.has_uram());
        assert_eq!(p.io_pins(), 300);
        assert_eq!(p.timing.process_nm, 28);
    }

    #[test]
    fn ultrascale_part_can_have_uram() {
        let p = Part::ultrascale_plus(
            "xcku5p-ffvb676-2-e",
            Family::KintexUltraScalePlus,
            216960,
            433920,
            480,
            64,
            1824,
            280,
            -2,
        );
        assert!(p.has_uram());
        assert_eq!(p.timing.process_nm, 16);
    }

    #[test]
    fn available_kinds_excludes_missing() {
        let p = Part::series7("xc7a35t", Family::Artix7, 20800, 41600, 50, 90, 250, -1);
        let kinds = p.available_kinds();
        assert!(kinds.contains(&ResourceKind::Lut));
        assert!(!kinds.contains(&ResourceKind::Uram));
    }

    #[test]
    fn family_process_nodes() {
        assert_eq!(Family::Kintex7.process_nm(), 28);
        assert_eq!(Family::ZynqUltraScalePlus.process_nm(), 16);
        assert!(Family::ZynqUltraScalePlus.is_ultrascale_plus());
        assert!(!Family::Virtex7.is_ultrascale_plus());
    }
}
