//! # dovado-fpga
//!
//! FPGA device, part and board models for the Dovado DSE framework.
//!
//! Provides the resource taxonomy ([`ResourceKind`], [`ResourceSet`]), the
//! per-device timing parameters consumed by the simulated place & route
//! engine ([`TimingModel`]), a catalog of parts including the paper's two
//! evaluation devices (Kintex-7 XC7K70T and Zynq UltraScale+ ZU3EG), and a
//! board layer mapping development boards to parts.
//!
//! ```
//! use dovado_fpga::{Catalog, ResourceKind};
//!
//! let catalog = Catalog::builtin();
//! let part = catalog.resolve("xc7k70t").unwrap();
//! assert_eq!(part.capacity.get(ResourceKind::Lut), 41_000);
//! ```

#![warn(missing_docs)]

pub mod board;
pub mod catalog;
pub mod part;
pub mod resources;
pub mod timing;

pub use board::{builtin_boards, find_board, Board};
pub use catalog::Catalog;
pub use part::{Family, Part};
pub use resources::{ResourceKind, ResourceSet};
pub use timing::TimingModel;
