//! Built-in part catalog.
//!
//! Capacities follow the public datasheets closely enough for the paper's
//! comparisons to hold — in particular the two evaluation devices:
//! the XC7K70T "has 41k LUT and 82K FF" and the ZU3EG "has 70K LUTs and
//! 141k Flip Flops" (§IV-D).

use crate::part::{Family, Part};

/// A catalog of known parts, searchable by (case-insensitive) name.
#[derive(Debug, Clone)]
pub struct Catalog {
    parts: Vec<Part>,
}

impl Catalog {
    /// The built-in catalog.
    pub fn builtin() -> Catalog {
        let parts = vec![
            // --- 28 nm, 7-series ---
            // The paper's implementation target: Kintex-7 70T.
            Part::series7(
                "xc7k70tfbv676-1",
                Family::Kintex7,
                41_000,
                82_000,
                135,
                240,
                300,
                -1,
            ),
            Part::series7(
                "xc7k70tfbv676-2",
                Family::Kintex7,
                41_000,
                82_000,
                135,
                240,
                300,
                -2,
            ),
            Part::series7(
                "xc7k160tffg676-1",
                Family::Kintex7,
                101_400,
                202_800,
                325,
                600,
                400,
                -1,
            ),
            Part::series7(
                "xc7k325tffg900-2",
                Family::Kintex7,
                203_800,
                407_600,
                445,
                840,
                500,
                -2,
            ),
            Part::series7(
                "xc7a35ticsg324-1l",
                Family::Artix7,
                20_800,
                41_600,
                50,
                90,
                210,
                -1,
            ),
            Part::series7(
                "xc7a100tcsg324-1",
                Family::Artix7,
                63_400,
                126_800,
                135,
                240,
                210,
                -1,
            ),
            Part::series7(
                "xc7v585tffg1157-1",
                Family::Virtex7,
                364_200,
                728_400,
                795,
                1260,
                600,
                -1,
            ),
            // --- 16 nm, UltraScale+ ---
            // The paper's second target: Zynq UltraScale+ ZU3EG.
            Part::ultrascale_plus(
                "xczu3eg-sbva484-1-e",
                Family::ZynqUltraScalePlus,
                70_560,
                141_120,
                216,
                0,
                360,
                180,
                -1,
            ),
            Part::ultrascale_plus(
                "xczu9eg-ffvb1156-2-e",
                Family::ZynqUltraScalePlus,
                274_080,
                548_160,
                912,
                0,
                2520,
                328,
                -2,
            ),
            Part::ultrascale_plus(
                "xcku5p-ffvb676-2-e",
                Family::KintexUltraScalePlus,
                216_960,
                433_920,
                480,
                64,
                1824,
                280,
                -2,
            ),
            Part::ultrascale_plus(
                "xcvu9p-flga2104-2l-e",
                Family::VirtexUltraScalePlus,
                1_182_240,
                2_364_480,
                2160,
                960,
                6840,
                832,
                -2,
            ),
        ];
        Catalog { parts }
    }

    /// All parts.
    pub fn parts(&self) -> &[Part] {
        &self.parts
    }

    /// Exact (case-insensitive) lookup.
    pub fn find(&self, name: &str) -> Option<&Part> {
        self.parts
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Prefix lookup: `xc7k70t` resolves to the first part whose name
    /// starts with the query. Used so users can name the die without the
    /// package suffix (as the paper does: "targeting a XC7K70TFBV676-1"
    /// but also "the XC7K70T").
    pub fn resolve(&self, query: &str) -> Option<&Part> {
        let q = query.to_ascii_lowercase();
        self.find(&q)
            .or_else(|| self.parts.iter().find(|p| p.name.starts_with(&q)))
    }

    /// Parts from a family.
    pub fn by_family(&self, family: Family) -> Vec<&Part> {
        self.parts.iter().filter(|p| p.family == family).collect()
    }

    /// Adds a custom part (replaces an existing part of the same name).
    pub fn add(&mut self, part: Part) {
        self.parts
            .retain(|p| !p.name.eq_ignore_ascii_case(&part.name));
        self.parts.push(part);
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceKind;

    #[test]
    fn paper_devices_present_with_paper_capacities() {
        let c = Catalog::builtin();
        let k7 = c.resolve("xc7k70t").unwrap();
        assert_eq!(k7.capacity.get(ResourceKind::Lut), 41_000);
        assert_eq!(k7.capacity.get(ResourceKind::Register), 82_000);
        let zu = c.resolve("xczu3eg").unwrap();
        assert_eq!(zu.capacity.get(ResourceKind::Lut), 70_560);
        assert_eq!(zu.capacity.get(ResourceKind::Register), 141_120);
        // ZU3EG at 16 nm, K7 at 28 nm (§IV-D technology comparison).
        assert_eq!(zu.timing.process_nm, 16);
        assert_eq!(k7.timing.process_nm, 28);
    }

    #[test]
    fn find_is_case_insensitive() {
        let c = Catalog::builtin();
        assert!(c.find("XC7K70TFBV676-1").is_some());
        assert!(c.find("nonexistent").is_none());
    }

    #[test]
    fn resolve_prefers_exact_match() {
        let c = Catalog::builtin();
        let p = c.resolve("xc7k70tfbv676-2").unwrap();
        assert_eq!(p.speed_grade, -2);
    }

    #[test]
    fn by_family_filters() {
        let c = Catalog::builtin();
        let k7s = c.by_family(Family::Kintex7);
        assert!(k7s.len() >= 3);
        assert!(k7s.iter().all(|p| p.family == Family::Kintex7));
    }

    #[test]
    fn add_replaces_same_name() {
        let mut c = Catalog::builtin();
        let n = c.parts().len();
        c.add(Part::series7(
            "xc7k70tfbv676-1",
            Family::Kintex7,
            1,
            1,
            1,
            1,
            1,
            -1,
        ));
        assert_eq!(c.parts().len(), n);
        assert_eq!(
            c.find("xc7k70tfbv676-1")
                .unwrap()
                .capacity
                .get(ResourceKind::Lut),
            1
        );
    }

    #[test]
    fn uram_only_on_some_parts() {
        let c = Catalog::builtin();
        assert!(!c.resolve("xczu3eg").unwrap().has_uram());
        assert!(c.resolve("xcku5p").unwrap().has_uram());
    }
}
