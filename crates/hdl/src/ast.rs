//! Abstract syntax for the declaration subset of VHDL and (System)Verilog.
//!
//! Dovado only needs the *interface* of a hardware module: its name, its
//! compile-time parameters (VHDL generics / Verilog parameters) and its port
//! list. The AST here models exactly that, plus the context clauses
//! (libraries, use/import, packages) needed by the boxing step and by
//! Vivado-compatible file ordering.
//!
//! Width expressions such as `DATA_WIDTH-1 downto 0` or `[$clog2(DEPTH)-1:0]`
//! are kept symbolic as [`Expr`] trees and can be evaluated against a
//! parameter binding via [`Expr::eval`].

use crate::span::Span;
use std::collections::BTreeMap;
use std::fmt;

/// Source language of a design unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// VHDL (we target the 2008 declaration syntax, which subsumes '87/'93).
    Vhdl,
    /// Verilog-2001.
    Verilog,
    /// SystemVerilog (IEEE 1800).
    SystemVerilog,
}

impl Language {
    /// Canonical file extension for the language.
    pub fn extension(&self) -> &'static str {
        match self {
            Language::Vhdl => "vhd",
            Language::Verilog => "v",
            Language::SystemVerilog => "sv",
        }
    }

    /// Guesses the language from a file extension (`vhd`, `vhdl`, `v`, `sv`, `svh`).
    pub fn from_extension(ext: &str) -> Option<Language> {
        match ext.to_ascii_lowercase().as_str() {
            "vhd" | "vhdl" => Some(Language::Vhdl),
            "v" | "vh" => Some(Language::Verilog),
            "sv" | "svh" => Some(Language::SystemVerilog),
            _ => None,
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Language::Vhdl => write!(f, "VHDL"),
            Language::Verilog => write!(f, "Verilog"),
            Language::SystemVerilog => write!(f, "SystemVerilog"),
        }
    }
}

/// Binary operators usable inside width/default expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
    /// `mod` / `%`
    Mod,
    /// `**` (exponentiation)
    Pow,
    /// `<<` shift left
    Shl,
    /// `>>` shift right
    Shr,
}

impl BinOp {
    /// Binding power used by the precedence-climbing expression parsers.
    pub fn precedence(&self) -> u8 {
        match self {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
            BinOp::Shl | BinOp::Shr => 1,
            BinOp::Pow => 3,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        };
        write!(f, "{s}")
    }
}

/// Errors produced when evaluating an [`Expr`] against a parameter binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An identifier in the expression has no binding.
    Unbound(String),
    /// Division or modulo by zero.
    DivideByZero,
    /// A function unknown to the evaluator was called.
    UnknownFunction(String),
    /// Arithmetic over/underflow.
    Overflow,
    /// A function received an argument outside its domain (e.g. `clog2(0)`).
    Domain(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(n) => write!(f, "unbound identifier `{n}`"),
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::Overflow => write!(f, "arithmetic overflow"),
            EvalError::Domain(m) => write!(f, "domain error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A symbolic compile-time expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal (decimal, based, or sized Verilog literal).
    Int(i64),
    /// Reference to a parameter/generic or constant.
    Ident(String),
    /// A string literal (VHDL generic defaults may be strings).
    Str(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Function call, e.g. `$clog2(DEPTH)` or VHDL `log2(depth)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Evaluates the expression with `env` providing identifier bindings.
    ///
    /// Supported intrinsic functions (case-insensitive, leading `$`
    /// stripped): `clog2`, `log2` (same as `clog2`, matching common RTL
    /// usage), `max`, `min`, `abs`.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> Result<i64, EvalError> {
        match self {
            Expr::Int(v) => Ok(*v),
            Expr::Str(_) => Err(EvalError::Domain(
                "string literal in integer context".into(),
            )),
            Expr::Ident(name) => {
                lookup_ci(env, name).ok_or_else(|| EvalError::Unbound(name.clone()))
            }
            Expr::Neg(e) => e.eval(env)?.checked_neg().ok_or(EvalError::Overflow),
            Expr::Bin(op, l, r) => {
                let a = l.eval(env)?;
                let b = r.eval(env)?;
                let out = match op {
                    BinOp::Add => a.checked_add(b),
                    BinOp::Sub => a.checked_sub(b),
                    BinOp::Mul => a.checked_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(EvalError::DivideByZero);
                        }
                        a.checked_div(b)
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            return Err(EvalError::DivideByZero);
                        }
                        a.checked_rem(b)
                    }
                    BinOp::Pow => {
                        if b < 0 {
                            return Err(EvalError::Domain("negative exponent".into()));
                        }
                        let exp = u32::try_from(b).map_err(|_| EvalError::Overflow)?;
                        a.checked_pow(exp)
                    }
                    BinOp::Shl => {
                        let sh = u32::try_from(b).map_err(|_| EvalError::Overflow)?;
                        a.checked_shl(sh)
                    }
                    BinOp::Shr => {
                        let sh = u32::try_from(b).map_err(|_| EvalError::Overflow)?;
                        a.checked_shr(sh)
                    }
                };
                out.ok_or(EvalError::Overflow)
            }
            Expr::Call(name, args) => {
                let norm = name.trim_start_matches('$').to_ascii_lowercase();
                // `cond` short-circuits: only the taken branch is evaluated
                // (the other may reference still-unbound names).
                if norm == "cond" {
                    if let [c, a, b] = args.as_slice() {
                        return if c.eval(env)? != 0 {
                            a.eval(env)
                        } else {
                            b.eval(env)
                        };
                    }
                    return Err(EvalError::Domain("cond needs 3 arguments".into()));
                }
                let vals: Vec<i64> = args.iter().map(|a| a.eval(env)).collect::<Result<_, _>>()?;
                // Comparison nodes produced by the parsers: `cmp<op>`.
                if let Some(op) = norm.strip_prefix("cmp") {
                    if let [a, b] = vals.as_slice() {
                        let r = match op {
                            "<" => a < b,
                            ">" => a > b,
                            "<=" => a <= b,
                            ">=" => a >= b,
                            "==" | "===" => a == b,
                            "!=" | "!==" => a != b,
                            _ => return Err(EvalError::UnknownFunction(name.clone())),
                        };
                        return Ok(r as i64);
                    }
                }
                match (norm.as_str(), vals.as_slice()) {
                    ("clog2", [v]) | ("log2", [v]) => {
                        if *v <= 0 {
                            return Err(EvalError::Domain(format!("clog2({v})")));
                        }
                        Ok(clog2(*v as u64) as i64)
                    }
                    ("max", [a, b]) => Ok((*a).max(*b)),
                    ("min", [a, b]) => Ok((*a).min(*b)),
                    ("abs", [v]) => v.checked_abs().ok_or(EvalError::Overflow),
                    ("and", [a, b]) => Ok(((*a != 0) && (*b != 0)) as i64),
                    ("or", [a, b]) => Ok(((*a != 0) || (*b != 0)) as i64),
                    ("not", [v]) => Ok((*v == 0) as i64),
                    _ => Err(EvalError::UnknownFunction(name.clone())),
                }
            }
        }
    }

    /// Collects all identifiers referenced by the expression.
    pub fn idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::Str(_) => {}
            Expr::Ident(n) => {
                if !out.iter().any(|x| x.eq_ignore_ascii_case(n)) {
                    out.push(n.clone());
                }
            }
            Expr::Neg(e) => e.idents(out),
            Expr::Bin(_, l, r) => {
                l.idents(out);
                r.idents(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.idents(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Str(s) => write!(f, "\"{s}\""),
            Expr::Ident(n) => write!(f, "{n}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Call(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Ceiling log2 of a positive integer: number of bits to address `n` items.
pub fn clog2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Case-insensitive lookup (VHDL identifiers are case-insensitive; Verilog
/// parameter bindings supplied by users often differ in case too).
fn lookup_ci(env: &BTreeMap<String, i64>, name: &str) -> Option<i64> {
    if let Some(v) = env.get(name) {
        return Some(*v);
    }
    env.iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| *v)
}

/// Direction of an index range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeDir {
    /// VHDL `downto` / Verilog `[msb:lsb]` with msb >= lsb.
    Downto,
    /// VHDL `to` (ascending).
    To,
}

/// A (possibly symbolic) index range such as `31 downto 0` or `[W-1:0]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Range {
    /// Left bound as written.
    pub left: Expr,
    /// Right bound as written.
    pub right: Expr,
    /// Direction.
    pub dir: RangeDir,
}

impl Range {
    /// Number of elements covered when evaluated under `env`.
    pub fn width(&self, env: &BTreeMap<String, i64>) -> Result<i64, EvalError> {
        let l = self.left.eval(env)?;
        let r = self.right.eval(env)?;
        let w = match self.dir {
            RangeDir::Downto => l - r + 1,
            RangeDir::To => r - l + 1,
        };
        Ok(w.max(0))
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dir {
            RangeDir::Downto => write!(f, "{} downto {}", self.left, self.right),
            RangeDir::To => write!(f, "{} to {}", self.left, self.right),
        }
    }
}

/// A (scalar or vector) data type as written in the source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeSpec {
    /// Base type name: `std_logic`, `std_logic_vector`, `logic`, `wire`,
    /// `integer`, `natural`, `unsigned`, … Empty for Verilog implicit nets.
    pub name: String,
    /// Packed dimensions, outermost first.
    pub ranges: Vec<Range>,
    /// `signed` qualifier (Verilog).
    pub signed: bool,
}

impl TypeSpec {
    /// A scalar type with the given name.
    pub fn scalar(name: impl Into<String>) -> Self {
        TypeSpec {
            name: name.into(),
            ranges: Vec::new(),
            signed: false,
        }
    }

    /// Total bit width under `env` (product of packed dimensions; 1 when
    /// scalar).
    pub fn bit_width(&self, env: &BTreeMap<String, i64>) -> Result<i64, EvalError> {
        let mut w = 1i64;
        for r in &self.ranges {
            w = w.checked_mul(r.width(env)?).ok_or(EvalError::Overflow)?;
        }
        Ok(w)
    }

    /// Whether the base type is a single-bit type usable as a clock.
    pub fn is_single_bit(&self) -> bool {
        self.ranges.is_empty()
    }
}

impl fmt::Display for TypeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for r in &self.ranges {
            write!(f, "({r})")?;
        }
        Ok(())
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Input port.
    In,
    /// Output port.
    Out,
    /// Bidirectional port.
    InOut,
    /// VHDL `buffer`.
    Buffer,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::In => write!(f, "in"),
            Direction::Out => write!(f, "out"),
            Direction::InOut => write!(f, "inout"),
            Direction::Buffer => write!(f, "buffer"),
        }
    }
}

/// A module/entity port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub direction: Direction,
    /// Declared type.
    pub ty: TypeSpec,
    /// Source location of the declaration.
    pub span: Span,
}

impl Port {
    /// Heuristic used by the boxing step: does this look like a clock input?
    ///
    /// Matches common naming conventions: `clk`, `clock`, `clk_i`, `i_clk`,
    /// `aclk`, `sys_clk`, possibly with trailing digits.
    pub fn looks_like_clock(&self) -> bool {
        if self.direction != Direction::In || !self.ty.is_single_bit() {
            return false;
        }
        let n = self.name.to_ascii_lowercase();
        let n = n.trim_end_matches(|c: char| c.is_ascii_digit());
        n == "clk"
            || n == "clock"
            || n.ends_with("_clk")
            || n.ends_with("_clock")
            || n.starts_with("clk_")
            || n.starts_with("clock_")
            || n == "aclk"
            || n == "i_clk"
    }
}

/// A compile-time parameter (VHDL generic / Verilog parameter).
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    /// Parameter name.
    pub name: String,
    /// Declared type, if any (Verilog allows untyped parameters).
    pub ty: Option<TypeSpec>,
    /// Default value expression, if any.
    pub default: Option<Expr>,
    /// Source location.
    pub span: Span,
    /// True for SystemVerilog `localparam` (not user-overridable; Dovado
    /// excludes them from the design space but records them for evaluation).
    pub local: bool,
}

impl Parameter {
    /// The default value as an integer under an empty environment, when the
    /// default is a closed-form constant.
    pub fn const_default(&self) -> Option<i64> {
        self.default.as_ref()?.eval(&BTreeMap::new()).ok()
    }
}

/// The extracted interface of one VHDL entity or Verilog module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleInterface {
    /// Module/entity name as written.
    pub name: String,
    /// Source language.
    pub language: Language,
    /// Generics / parameters in declaration order.
    pub parameters: Vec<Parameter>,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Span of the whole declaration.
    pub span: Span,
}

impl ModuleInterface {
    /// Finds a parameter by case-insensitive name.
    pub fn parameter(&self, name: &str) -> Option<&Parameter> {
        self.parameters
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Finds a port by case-insensitive name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// User-overridable parameters (excludes `localparam`).
    pub fn free_parameters(&self) -> impl Iterator<Item = &Parameter> {
        self.parameters.iter().filter(|p| !p.local)
    }

    /// The best clock-port candidate, if any (first port passing
    /// [`Port::looks_like_clock`], else the first single-bit input).
    pub fn clock_port(&self) -> Option<&Port> {
        self.ports
            .iter()
            .find(|p| p.looks_like_clock())
            .or_else(|| {
                self.ports
                    .iter()
                    .find(|p| p.direction == Direction::In && p.ty.is_single_bit())
            })
    }
}

/// VHDL `library`/`use` clause or SV `import` recorded for script generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextClause {
    /// `library ieee;`
    Library(String),
    /// `use ieee.std_logic_1164.all;`
    Use(String),
    /// SystemVerilog `import pkg::*;`
    Import(String),
    /// SystemVerilog `` `include "file.svh" ``
    Include(String),
}

/// A SystemVerilog package declaration (name only; Dovado needs it for
/// compilation ordering: packages must be read first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageDecl {
    /// Package name.
    pub name: String,
}

/// A VHDL `configuration NAME of ENTITY is … end;` declaration: a primary
/// design unit binding architectures to an entity. Dovado records the pair
/// so the catalog can order configurations after the entity they configure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigurationDecl {
    /// Configuration name.
    pub name: String,
    /// The configured entity (library prefix stripped).
    pub entity: String,
}

/// A module/entity instantiation found while scanning a body.
///
/// The parsers collect these opportunistically (they do not build full
/// statement ASTs): the EDA elaborator follows them to resolve Dovado's
/// generated box down to the module under evaluation, reading the generic
/// map exactly as written.
#[derive(Debug, Clone, PartialEq)]
pub struct Instantiation {
    /// Instance label (`BOXED` in the paper's Listing 1).
    pub label: String,
    /// Instantiated entity/module name. May be a selected name such as
    /// `work.fifo`; [`Instantiation::target_simple`] strips the library.
    pub target: String,
    /// Named generic/parameter associations, in source order.
    pub generics: Vec<(String, Expr)>,
    /// The module or architecture the instantiation appears in.
    pub parent: String,
    /// Source location of the label.
    pub span: Span,
}

impl Instantiation {
    /// The target name without any library/scope prefix.
    pub fn target_simple(&self) -> &str {
        self.target
            .rsplit('.')
            .next()
            .unwrap_or(&self.target)
            .rsplit(':')
            .next()
            .unwrap_or(&self.target)
    }
}

/// The parse result for one source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceFile {
    /// Context clauses in order of appearance.
    pub context: Vec<ContextClause>,
    /// Packages declared in the file (SV).
    pub packages: Vec<PackageDecl>,
    /// Module/entity interfaces in order of appearance.
    pub modules: Vec<ModuleInterface>,
    /// Names of architectures found (VHDL), as `(architecture, entity)`.
    pub architectures: Vec<(String, String)>,
    /// Names of packages whose *body* is declared in the file (VHDL
    /// `package body NAME`). A body is a secondary unit: it has no name of
    /// its own, only the package it completes.
    pub package_bodies: Vec<String>,
    /// Configuration declarations (VHDL).
    pub configurations: Vec<ConfigurationDecl>,
    /// Instantiations found while scanning bodies.
    pub instantiations: Vec<Instantiation>,
}

impl SourceFile {
    /// Finds a module interface by case-insensitive name.
    pub fn module(&self, name: &str) -> Option<&ModuleInterface> {
        self.modules
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// All library names mentioned in context clauses (VHDL), deduplicated,
    /// excluding the implicit `work` and `std`.
    pub fn libraries(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.context {
            if let ContextClause::Library(l) = c {
                let ll = l.to_ascii_lowercase();
                if ll != "work" && ll != "std" && !out.iter().any(|x| x.eq_ignore_ascii_case(l)) {
                    out.push(l.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn eval_arithmetic() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Int(3), Expr::Ident("W".into())),
            Expr::Int(1),
        );
        assert_eq!(e.eval(&env(&[("W", 8)])).unwrap(), 25);
    }

    #[test]
    fn eval_pow_and_shift() {
        let e = Expr::bin(BinOp::Pow, Expr::Int(2), Expr::Int(10));
        assert_eq!(e.eval(&env(&[])).unwrap(), 1024);
        let s = Expr::bin(BinOp::Shl, Expr::Int(1), Expr::Int(4));
        assert_eq!(s.eval(&env(&[])).unwrap(), 16);
    }

    #[test]
    fn eval_case_insensitive_lookup() {
        let e = Expr::Ident("data_width".into());
        assert_eq!(e.eval(&env(&[("DATA_WIDTH", 32)])).unwrap(), 32);
    }

    #[test]
    fn eval_divide_by_zero() {
        let e = Expr::bin(BinOp::Div, Expr::Int(1), Expr::Int(0));
        assert_eq!(e.eval(&env(&[])), Err(EvalError::DivideByZero));
        let m = Expr::bin(BinOp::Mod, Expr::Int(1), Expr::Int(0));
        assert_eq!(m.eval(&env(&[])), Err(EvalError::DivideByZero));
    }

    #[test]
    fn eval_unbound() {
        let e = Expr::Ident("NOPE".into());
        assert!(matches!(e.eval(&env(&[])), Err(EvalError::Unbound(_))));
    }

    #[test]
    fn eval_clog2_intrinsic() {
        let e = Expr::Call("$clog2".into(), vec![Expr::Ident("DEPTH".into())]);
        assert_eq!(e.eval(&env(&[("DEPTH", 512)])).unwrap(), 9);
        assert_eq!(e.eval(&env(&[("DEPTH", 513)])).unwrap(), 10);
        assert_eq!(e.eval(&env(&[("DEPTH", 1)])).unwrap(), 0);
        assert!(matches!(
            e.eval(&env(&[("DEPTH", 0)])),
            Err(EvalError::Domain(_))
        ));
    }

    #[test]
    fn eval_min_max_abs() {
        let mx = Expr::Call("max".into(), vec![Expr::Int(3), Expr::Int(9)]);
        assert_eq!(mx.eval(&env(&[])).unwrap(), 9);
        let mn = Expr::Call("MIN".into(), vec![Expr::Int(3), Expr::Int(9)]);
        assert_eq!(mn.eval(&env(&[])).unwrap(), 3);
        let ab = Expr::Call("abs".into(), vec![Expr::Neg(Box::new(Expr::Int(7)))]);
        assert_eq!(ab.eval(&env(&[])).unwrap(), 7);
    }

    #[test]
    fn eval_cond_short_circuits() {
        // (DEPTH > 1) ? clog2(DEPTH) : 1 — the cv32e40p ADDR_DEPTH idiom.
        let e = Expr::Call(
            "cond".into(),
            vec![
                Expr::Call(
                    "cmp>".into(),
                    vec![Expr::Ident("DEPTH".into()), Expr::Int(1)],
                ),
                Expr::Call("$clog2".into(), vec![Expr::Ident("DEPTH".into())]),
                Expr::Int(1),
            ],
        );
        assert_eq!(e.eval(&env(&[("DEPTH", 64)])).unwrap(), 6);
        assert_eq!(e.eval(&env(&[("DEPTH", 1)])).unwrap(), 1);
        // Short-circuit: clog2(0) in the untaken branch must not error.
        let guard = Expr::Call(
            "cond".into(),
            vec![
                Expr::Int(0),
                Expr::Call("$clog2".into(), vec![Expr::Int(0)]),
                Expr::Int(7),
            ],
        );
        assert_eq!(guard.eval(&env(&[])).unwrap(), 7);
    }

    #[test]
    fn eval_comparisons_and_logic() {
        let cmp = |op: &str, a: i64, b: i64| {
            Expr::Call(format!("cmp{op}"), vec![Expr::Int(a), Expr::Int(b)])
                .eval(&env(&[]))
                .unwrap()
        };
        assert_eq!(cmp("<", 1, 2), 1);
        assert_eq!(cmp(">=", 2, 2), 1);
        assert_eq!(cmp("==", 3, 4), 0);
        assert_eq!(cmp("!=", 3, 4), 1);
        let and = Expr::Call("and".into(), vec![Expr::Int(1), Expr::Int(0)]);
        assert_eq!(and.eval(&env(&[])).unwrap(), 0);
        let not = Expr::Call("not".into(), vec![Expr::Int(0)]);
        assert_eq!(not.eval(&env(&[])).unwrap(), 1);
    }

    #[test]
    fn eval_unknown_function() {
        let e = Expr::Call("frobnicate".into(), vec![]);
        assert!(matches!(
            e.eval(&env(&[])),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn eval_overflow_detected() {
        let e = Expr::bin(BinOp::Mul, Expr::Int(i64::MAX), Expr::Int(2));
        assert_eq!(e.eval(&env(&[])), Err(EvalError::Overflow));
        let p = Expr::bin(BinOp::Pow, Expr::Int(10), Expr::Int(40));
        assert_eq!(p.eval(&env(&[])), Err(EvalError::Overflow));
    }

    #[test]
    fn eval_negative_exponent_domain_error() {
        let p = Expr::bin(BinOp::Pow, Expr::Int(2), Expr::Int(-1));
        assert!(matches!(p.eval(&env(&[])), Err(EvalError::Domain(_))));
    }

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(0), 0);
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(1024), 10);
        assert_eq!(clog2(1025), 11);
    }

    #[test]
    fn idents_deduplicates_case_insensitively() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Ident("W".into()),
            Expr::bin(BinOp::Mul, Expr::Ident("w".into()), Expr::Ident("D".into())),
        );
        let mut ids = Vec::new();
        e.idents(&mut ids);
        assert_eq!(ids, vec!["W".to_string(), "D".to_string()]);
    }

    #[test]
    fn range_width_downto_and_to() {
        let r = Range {
            left: Expr::Int(31),
            right: Expr::Int(0),
            dir: RangeDir::Downto,
        };
        assert_eq!(r.width(&env(&[])).unwrap(), 32);
        let r2 = Range {
            left: Expr::Int(0),
            right: Expr::Int(7),
            dir: RangeDir::To,
        };
        assert_eq!(r2.width(&env(&[])).unwrap(), 8);
    }

    #[test]
    fn range_width_symbolic() {
        let r = Range {
            left: Expr::bin(BinOp::Sub, Expr::Ident("W".into()), Expr::Int(1)),
            right: Expr::Int(0),
            dir: RangeDir::Downto,
        };
        assert_eq!(r.width(&env(&[("W", 64)])).unwrap(), 64);
    }

    #[test]
    fn range_width_never_negative() {
        let r = Range {
            left: Expr::Int(0),
            right: Expr::Int(5),
            dir: RangeDir::Downto,
        };
        assert_eq!(r.width(&env(&[])).unwrap(), 0);
    }

    #[test]
    fn typespec_bit_width_multidim() {
        let t = TypeSpec {
            name: "logic".into(),
            ranges: vec![
                Range {
                    left: Expr::Int(3),
                    right: Expr::Int(0),
                    dir: RangeDir::Downto,
                },
                Range {
                    left: Expr::Int(7),
                    right: Expr::Int(0),
                    dir: RangeDir::Downto,
                },
            ],
            signed: false,
        };
        assert_eq!(t.bit_width(&env(&[])).unwrap(), 32);
        assert!(!t.is_single_bit());
        assert!(TypeSpec::scalar("std_logic").is_single_bit());
    }

    #[test]
    fn clock_heuristics() {
        let mk = |name: &str, dir: Direction, scalar: bool| Port {
            name: name.into(),
            direction: dir,
            ty: if scalar {
                TypeSpec::scalar("std_logic")
            } else {
                TypeSpec {
                    name: "std_logic_vector".into(),
                    ranges: vec![Range {
                        left: Expr::Int(7),
                        right: Expr::Int(0),
                        dir: RangeDir::Downto,
                    }],
                    signed: false,
                }
            },
            span: Span::dummy(),
        };
        assert!(mk("clk", Direction::In, true).looks_like_clock());
        assert!(mk("clk_i", Direction::In, true).looks_like_clock());
        assert!(mk("sys_clk", Direction::In, true).looks_like_clock());
        assert!(mk("aclk", Direction::In, true).looks_like_clock());
        assert!(mk("clock", Direction::In, true).looks_like_clock());
        assert!(mk("clk2", Direction::In, true).looks_like_clock());
        assert!(!mk("clk", Direction::Out, true).looks_like_clock());
        assert!(!mk("clk", Direction::In, false).looks_like_clock());
        assert!(!mk("data", Direction::In, true).looks_like_clock());
    }

    #[test]
    fn module_lookup_and_free_params() {
        let m = ModuleInterface {
            name: "fifo".into(),
            language: Language::SystemVerilog,
            parameters: vec![
                Parameter {
                    name: "DEPTH".into(),
                    ty: None,
                    default: Some(Expr::Int(8)),
                    span: Span::dummy(),
                    local: false,
                },
                Parameter {
                    name: "ADDR_W".into(),
                    ty: None,
                    default: Some(Expr::Call(
                        "$clog2".into(),
                        vec![Expr::Ident("DEPTH".into())],
                    )),
                    span: Span::dummy(),
                    local: true,
                },
            ],
            ports: vec![Port {
                name: "clk_i".into(),
                direction: Direction::In,
                ty: TypeSpec::scalar("logic"),
                span: Span::dummy(),
            }],
            span: Span::dummy(),
        };
        assert!(m.parameter("depth").is_some());
        assert!(m.port("CLK_I").is_some());
        assert_eq!(m.free_parameters().count(), 1);
        assert_eq!(m.clock_port().unwrap().name, "clk_i");
        assert_eq!(m.parameters[0].const_default(), Some(8));
        assert_eq!(m.parameters[1].const_default(), None);
    }

    #[test]
    fn source_file_libraries_skip_work_std() {
        let sf = SourceFile {
            context: vec![
                ContextClause::Library("ieee".into()),
                ContextClause::Library("work".into()),
                ContextClause::Library("IEEE".into()),
                ContextClause::Library("neorv32".into()),
            ],
            ..Default::default()
        };
        assert_eq!(
            sf.libraries(),
            vec!["ieee".to_string(), "neorv32".to_string()]
        );
    }

    #[test]
    fn language_extensions_roundtrip() {
        for lang in [Language::Vhdl, Language::Verilog, Language::SystemVerilog] {
            assert_eq!(Language::from_extension(lang.extension()), Some(lang));
        }
        assert_eq!(Language::from_extension("VHDL"), Some(Language::Vhdl));
        assert_eq!(Language::from_extension("rs"), None);
    }

    #[test]
    fn expr_display_roundtrips_structure() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::Call("$clog2".into(), vec![Expr::Ident("DEPTH".into())]),
            Expr::Int(1),
        );
        assert_eq!(e.to_string(), "($clog2(DEPTH) - 1)");
    }
}
