//! Parse errors and accumulated diagnostics.

use crate::span::Span;
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note, does not affect parsing outcome.
    Note,
    /// Suspicious construct the parser recovered from.
    Warning,
    /// Hard error; the affected design unit is unusable.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single message attached to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the problem is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Location in the source buffer.
    pub span: Span,
    /// Originating source file, when known. Spans are file-relative, so
    /// multi-file front-ends (the project catalog) stamp the path here to
    /// keep diagnostics actionable.
    pub file: Option<String>,
}

impl Diagnostic {
    /// Returns the diagnostic with its originating file set.
    pub fn in_file(mut self, file: impl Into<String>) -> Diagnostic {
        self.file = Some(file.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.file {
            Some(file) => write!(
                f,
                "{} at {file}:{}: {}",
                self.severity, self.span, self.message
            ),
            None => write!(f, "{} at {}: {}", self.severity, self.span, self.message),
        }
    }
}

/// Ordered collection of diagnostics produced while parsing one source file.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a note.
    pub fn note(&mut self, message: impl Into<String>, span: Span) {
        self.items.push(Diagnostic {
            severity: Severity::Note,
            message: message.into(),
            span,
            file: None,
        });
    }

    /// Records a warning.
    pub fn warn(&mut self, message: impl Into<String>, span: Span) {
        self.items.push(Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            file: None,
        });
    }

    /// Records an error.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.items.push(Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            file: None,
        });
    }

    /// Stamps every diagnostic that does not yet name a file with `file`.
    /// Parsers work on one buffer at a time and leave the field empty;
    /// multi-file callers set it once per parsed file.
    pub fn set_file(&mut self, file: &str) {
        for d in &mut self.items {
            if d.file.is_none() {
                d.file = Some(file.to_string());
            }
        }
    }

    /// All recorded diagnostics, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics recorded.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no diagnostic has been recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at least one `Error`-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Appends all diagnostics from `other`.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }
}

/// A fatal parse error: the parser could not recover enough to produce a
/// design unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
    /// Originating source file, when known (see [`Diagnostic::file`]).
    pub file: Option<String>,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
            file: None,
        }
    }

    /// Returns the error with its originating file set.
    pub fn in_file(mut self, file: impl Into<String>) -> ParseError {
        self.file = Some(file.into());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.file {
            Some(file) => write!(f, "parse error at {file}:{}: {}", self.span, self.message),
            None => write!(f, "parse error at {}: {}", self.span, self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias used throughout the parsers.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_accumulate_in_order() {
        let mut d = Diagnostics::new();
        d.note("n", Span::dummy());
        d.warn("w", Span::dummy());
        d.error("e", Span::dummy());
        let sev: Vec<_> = d.iter().map(|x| x.severity).collect();
        assert_eq!(
            sev,
            vec![Severity::Note, Severity::Warning, Severity::Error]
        );
        assert_eq!(d.len(), 3);
        assert!(d.has_errors());
    }

    #[test]
    fn empty_has_no_errors() {
        let d = Diagnostics::new();
        assert!(d.is_empty());
        assert!(!d.has_errors());
    }

    #[test]
    fn warnings_are_not_errors() {
        let mut d = Diagnostics::new();
        d.warn("only a warning", Span::dummy());
        assert!(!d.has_errors());
        assert!(!d.is_empty());
    }

    #[test]
    fn extend_merges() {
        let mut a = Diagnostics::new();
        a.note("a", Span::dummy());
        let mut b = Diagnostics::new();
        b.error("b", Span::dummy());
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert!(a.has_errors());
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::new("unexpected token", Span::new(0, 1, 3, 4));
        assert_eq!(e.to_string(), "parse error at 3:4: unexpected token");
        let in_file = e.in_file("rtl/core.vhd");
        assert_eq!(
            in_file.to_string(),
            "parse error at rtl/core.vhd:3:4: unexpected token"
        );
    }

    #[test]
    fn diagnostics_carry_the_originating_file() {
        let mut d = Diagnostics::new();
        d.error("bad token", Span::new(0, 1, 2, 5));
        d.set_file("rtl/top.sv");
        let rendered: Vec<String> = d.iter().map(|x| x.to_string()).collect();
        assert_eq!(rendered, vec!["error at rtl/top.sv:2:5: bad token"]);
        // Already-stamped diagnostics keep their file on a second pass.
        d.set_file("other.sv");
        assert_eq!(d.iter().next().unwrap().file.as_deref(), Some("rtl/top.sv"));
    }

    #[test]
    fn severity_ordering_matches_escalation() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
