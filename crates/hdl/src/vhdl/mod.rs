//! VHDL-2008 declaration-subset front-end.
//!
//! The paper's parsing step extracts module name, parameter declarations and
//! port/signal interface declarations; VHDL is "regular in the declaration
//! section" and that is the subset implemented here: context clauses
//! (`library`, `use`), `entity` declarations with generic and port clauses,
//! `package` names, and `architecture` name/entity pairs (bodies are
//! skipped).

pub mod lexer;
pub mod parser;

use crate::ast::SourceFile;
use crate::error::{Diagnostics, ParseResult};

/// Parses a VHDL source buffer into its declaration-level [`SourceFile`].
///
/// Returns the parsed file plus any non-fatal diagnostics. Fails only on
/// malformed input the parser cannot recover from (e.g. an unterminated
/// entity header).
pub fn parse(source: &str) -> ParseResult<(SourceFile, Diagnostics)> {
    let tokens = lexer::lex(source)?;
    parser::Parser::new(tokens).parse_file()
}
