//! Recursive-descent parser for the VHDL declaration subset.
//!
//! Extracts context clauses, entity interfaces (generics + ports), package
//! names, and architecture/entity pairs. Entity declarative parts and
//! architecture bodies are skipped with a conservative recovery scanner, so
//! arbitrary synthesizable VHDL passes through without needing a full
//! grammar — exactly the robustness/coverage trade-off the paper describes
//! for its ANTLR-based step.

use crate::ast::{
    BinOp, ConfigurationDecl, ContextClause, Direction, Expr, Instantiation, ModuleInterface,
    PackageDecl, Parameter, Port, Range, RangeDir, SourceFile, TypeSpec,
};
use crate::error::{Diagnostics, ParseError, ParseResult};
use crate::lexer::{TokenKind, TokenStream};
use crate::span::Span;

/// Keywords that may legitimately begin a new design unit; used by the body
/// skipper to decide whether a bare `end;` closed the current unit.
const UNIT_STARTERS: &[&str] = &[
    "library",
    "use",
    "entity",
    "architecture",
    "package",
    "configuration",
    "context",
];

/// The VHDL declaration parser.
pub struct Parser {
    ts: TokenStream,
    diags: Diagnostics,
    /// Set by `bump_binop` when the consumed operator was `&`; `parse_bin`
    /// then rewrites the node into a `concat` call instead of an arithmetic
    /// one.
    concat_pending: bool,
    /// Instantiations collected while skipping architecture bodies.
    insts: Vec<Instantiation>,
}

impl Parser {
    /// Wraps a token stream produced by [`crate::vhdl::lexer::lex`].
    pub fn new(ts: TokenStream) -> Self {
        Parser {
            ts,
            diags: Diagnostics::new(),
            concat_pending: false,
            insts: Vec::new(),
        }
    }

    /// Parses the whole file.
    pub fn parse_file(mut self) -> ParseResult<(SourceFile, Diagnostics)> {
        let mut file = SourceFile::default();
        while !self.ts.at_eof() {
            let t = self.ts.peek().clone();
            if t.is_kw_ci("library") {
                self.ts.next_tok();
                loop {
                    let name = self.ts.expect_ident()?;
                    file.context.push(ContextClause::Library(name.text));
                    if !self.ts.eat_sym(",") {
                        break;
                    }
                }
                self.ts.expect_sym(";")?;
            } else if t.is_kw_ci("use") {
                self.ts.next_tok();
                let name = self.selected_name()?;
                file.context.push(ContextClause::Use(name));
                self.ts.expect_sym(";")?;
            } else if t.is_kw_ci("entity") {
                let m = self.parse_entity()?;
                file.modules.push(m);
            } else if t.is_kw_ci("architecture") {
                self.ts.next_tok();
                let arch = self.ts.expect_ident()?.text;
                self.ts.expect_kw_ci("of")?;
                let ent = self.selected_name()?;
                self.ts.expect_kw_ci("is")?;
                self.skip_body(&arch, "architecture")?;
                // `of work.foo` style: keep the last component as entity name.
                let ent_simple = ent.rsplit('.').next().unwrap_or(&ent).to_string();
                file.architectures.push((arch, ent_simple));
            } else if t.is_kw_ci("package") {
                self.ts.next_tok();
                let body = self.ts.eat_kw_ci("body");
                let name = self.ts.expect_ident()?.text;
                self.ts.expect_kw_ci("is")?;
                self.skip_body(&name, if body { "body" } else { "package" })?;
                if body {
                    file.package_bodies.push(name);
                } else {
                    file.packages.push(PackageDecl { name });
                }
            } else if t.is_kw_ci("context") {
                // Context declarations/references: skip to `;` or end of body.
                self.ts.next_tok();
                let name = self.ts.expect_ident()?.text;
                if self.ts.eat_kw_ci("is") {
                    self.skip_body(&name, "context")?;
                } else {
                    self.ts.skip_until_sym(&[";"]);
                    self.ts.eat_sym(";");
                }
            } else if t.is_kw_ci("configuration") {
                self.ts.next_tok();
                let name = self.ts.expect_ident()?.text;
                self.ts.expect_kw_ci("of")?;
                let ent = self.selected_name()?;
                self.ts.expect_kw_ci("is")?;
                self.skip_body(&name, "configuration")?;
                let ent_simple = ent.rsplit('.').next().unwrap_or(&ent).to_string();
                file.configurations.push(ConfigurationDecl {
                    name,
                    entity: ent_simple,
                });
            } else {
                self.diags
                    .warn(format!("skipping unexpected token `{t}`"), t.span);
                self.ts.next_tok();
            }
        }
        file.instantiations = std::mem::take(&mut self.insts);
        Ok((file, self.diags))
    }

    /// `entity NAME is [generic(...);] [port(...);] ... end [entity] [NAME];`
    fn parse_entity(&mut self) -> ParseResult<ModuleInterface> {
        let start = self.ts.expect_kw_ci("entity")?.span;
        let name = self.ts.expect_ident()?.text;
        self.ts.expect_kw_ci("is")?;

        let mut parameters = Vec::new();
        let mut ports = Vec::new();

        if self.ts.eat_kw_ci("generic") {
            self.ts.expect_sym("(")?;
            parameters = self.parse_generic_list()?;
            self.ts.expect_sym(")")?;
            self.ts.expect_sym(";")?;
        }
        if self.ts.eat_kw_ci("port") {
            self.ts.expect_sym("(")?;
            ports = self.parse_port_list()?;
            self.ts.expect_sym(")")?;
            self.ts.expect_sym(";")?;
        }

        // Entity declarative part + optional statement part: skip to the
        // entity's `end`.
        let end_span = self.skip_entity_tail(&name)?;

        Ok(ModuleInterface {
            name,
            language: crate::ast::Language::Vhdl,
            parameters,
            ports,
            span: start.merge(end_span),
        })
    }

    /// Skips entity declarative items until `end [entity] [name] ;`.
    fn skip_entity_tail(&mut self, name: &str) -> ParseResult<Span> {
        loop {
            let t = self.ts.next_tok();
            if t.is_eof() {
                return Err(ParseError::new(
                    format!("entity `{name}` is missing its `end`"),
                    t.span,
                ));
            }
            if t.is_kw_ci("end") {
                self.ts.eat_kw_ci("entity");
                // Optional repetition of the entity name.
                if self.ts.peek().kind == TokenKind::Ident && !self.ts.peek().is_sym(";") {
                    let rep = self.ts.next_tok();
                    if !rep.text.eq_ignore_ascii_case(name) {
                        self.diags.warn(
                            format!("`end {}` does not match entity `{name}`", rep.text),
                            rep.span,
                        );
                    }
                }
                let semi = self.ts.expect_sym(";")?;
                return Ok(semi.span);
            }
        }
    }

    /// `name[.name]*[.all]` — returns the dotted path as a single string.
    fn selected_name(&mut self) -> ParseResult<String> {
        let mut s = self.ts.expect_ident()?.text;
        while self.ts.eat_sym(".") {
            let part = if self.ts.peek().is_kw_ci("all") {
                self.ts.next_tok().text
            } else {
                self.ts.expect_ident()?.text
            };
            s.push('.');
            s.push_str(&part);
        }
        Ok(s)
    }

    /// Interface list inside `generic ( ... )`.
    fn parse_generic_list(&mut self) -> ParseResult<Vec<Parameter>> {
        let mut out = Vec::new();
        loop {
            // Optional interface class keyword.
            let _ = self.ts.eat_kw_ci("constant");
            let mut names = Vec::new();
            loop {
                let id = self.ts.expect_ident()?;
                names.push((id.text, id.span));
                if !self.ts.eat_sym(",") {
                    break;
                }
            }
            self.ts.expect_sym(":")?;
            // Generics rarely have a mode; eat `in` if present.
            let _ = self.ts.eat_kw_ci("in");
            let ty = self.parse_subtype()?;
            let default = if self.ts.eat_sym(":=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            for (name, span) in names {
                out.push(Parameter {
                    name,
                    ty: Some(ty.clone()),
                    default: default.clone(),
                    span,
                    local: false,
                });
            }
            if !self.ts.eat_sym(";") {
                break;
            }
            // Tolerate a trailing `;` before `)`.
            if self.ts.peek().is_sym(")") {
                self.diags
                    .warn("trailing `;` in generic list", self.ts.peek().span);
                break;
            }
        }
        Ok(out)
    }

    /// Interface list inside `port ( ... )`.
    fn parse_port_list(&mut self) -> ParseResult<Vec<Port>> {
        let mut out = Vec::new();
        loop {
            let _ = self.ts.eat_kw_ci("signal");
            let mut names = Vec::new();
            loop {
                let id = self.ts.expect_ident()?;
                names.push((id.text, id.span));
                if !self.ts.eat_sym(",") {
                    break;
                }
            }
            self.ts.expect_sym(":")?;
            let direction = if self.ts.eat_kw_ci("in") {
                Direction::In
            } else if self.ts.eat_kw_ci("out") {
                Direction::Out
            } else if self.ts.eat_kw_ci("inout") {
                Direction::InOut
            } else if self.ts.eat_kw_ci("buffer") {
                Direction::Buffer
            } else if self.ts.eat_kw_ci("linkage") {
                self.diags
                    .warn("`linkage` port treated as inout", self.ts.peek().span);
                Direction::InOut
            } else {
                // VHDL defaults the mode to `in`.
                Direction::In
            };
            let ty = self.parse_subtype()?;
            // Ports may carry defaults too.
            let _default = if self.ts.eat_sym(":=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            for (name, span) in names {
                out.push(Port {
                    name,
                    direction,
                    ty: ty.clone(),
                    span,
                });
            }
            if !self.ts.eat_sym(";") {
                break;
            }
            if self.ts.peek().is_sym(")") {
                self.diags
                    .warn("trailing `;` in port list", self.ts.peek().span);
                break;
            }
        }
        Ok(out)
    }

    /// `subtype_indication`: selected name with optional index or `range`
    /// constraints, e.g. `std_logic_vector(W-1 downto 0)`,
    /// `integer range 0 to 7`, `natural range <>`.
    fn parse_subtype(&mut self) -> ParseResult<TypeSpec> {
        let name = self.selected_name()?;
        let mut ranges = Vec::new();
        if self.ts.eat_sym("(") {
            loop {
                if self.ts.peek().is_sym(")") {
                    break;
                }
                // `open` or `<>` boxes inside unconstrained types.
                if self.ts.eat_sym("<>") {
                    if !self.ts.eat_sym(",") {
                        break;
                    }
                    continue;
                }
                let left = self.parse_expr()?;
                let dir = if self.ts.eat_kw_ci("downto") {
                    Some(RangeDir::Downto)
                } else if self.ts.eat_kw_ci("to") {
                    Some(RangeDir::To)
                } else {
                    None
                };
                match dir {
                    Some(d) => {
                        let right = self.parse_expr()?;
                        ranges.push(Range {
                            left,
                            right,
                            dir: d,
                        });
                    }
                    None => {
                        // Single index constraint, e.g. `bit_vector(7)` —
                        // treat as a one-element range.
                        ranges.push(Range {
                            left: left.clone(),
                            right: left,
                            dir: RangeDir::Downto,
                        });
                    }
                }
                if !self.ts.eat_sym(",") {
                    break;
                }
            }
            self.ts.expect_sym(")")?;
        } else if self.ts.eat_kw_ci("range") {
            if self.ts.eat_sym("<>") {
                // unconstrained
            } else {
                let left = self.parse_expr()?;
                let dir = if self.ts.eat_kw_ci("downto") {
                    RangeDir::Downto
                } else {
                    self.ts.expect_kw_ci("to")?;
                    RangeDir::To
                };
                let right = self.parse_expr()?;
                ranges.push(Range { left, right, dir });
            }
        }
        Ok(TypeSpec {
            name,
            ranges,
            signed: false,
        })
    }

    /// Expression parser (precedence climbing) over the VHDL operator
    /// subset relevant to widths and defaults.
    pub fn parse_expr(&mut self) -> ParseResult<Expr> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> ParseResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_binop() {
                Some(op) if op.precedence() >= min_prec => op,
                _ => break,
            };
            self.bump_binop();
            let rhs = self.parse_bin(op.precedence() + 1)?;
            lhs = if self.concat_pending {
                self.concat_pending = false;
                Expr::Call("concat".into(), vec![lhs, rhs])
            } else {
                Expr::bin(op, lhs, rhs)
            };
        }
        Ok(lhs)
    }

    fn peek_binop(&mut self) -> Option<BinOp> {
        let t = self.ts.peek();
        let op = match &t.kind {
            TokenKind::Sym => match t.text.as_str() {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                "**" => BinOp::Pow,
                "&" => BinOp::Add, // concat, rewritten to a call below
                _ => return None,
            },
            TokenKind::Ident => {
                if t.is_kw_ci("mod") || t.is_kw_ci("rem") {
                    BinOp::Mod
                } else if t.is_kw_ci("sll") {
                    BinOp::Shl
                } else if t.is_kw_ci("srl") {
                    BinOp::Shr
                } else {
                    return None;
                }
            }
            _ => return None,
        };
        Some(op)
    }

    fn bump_binop(&mut self) {
        let t = self.ts.next_tok();
        self.concat_pending = t.is_sym("&");
    }

    fn parse_unary(&mut self) -> ParseResult<Expr> {
        if self.ts.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.ts.eat_sym("+") {
            return self.parse_unary();
        }
        if self.ts.peek().is_kw_ci("abs") {
            self.ts.next_tok();
            let inner = self.parse_unary()?;
            return Ok(Expr::Call("abs".into(), vec![inner]));
        }
        if self.ts.peek().is_kw_ci("not") {
            self.ts.next_tok();
            let inner = self.parse_unary()?;
            return Ok(Expr::Call("not".into(), vec![inner]));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> ParseResult<Expr> {
        let t = self.ts.peek().clone();
        match &t.kind {
            TokenKind::Int(v) => {
                self.ts.next_tok();
                Ok(Expr::Int(*v))
            }
            TokenKind::Real(v) => {
                self.diags.warn("real literal truncated to integer", t.span);
                self.ts.next_tok();
                Ok(Expr::Int(*v as i64))
            }
            TokenKind::Char(c) => {
                self.ts.next_tok();
                // '0'/'1' appear in boolean-ish defaults; map to 0/1.
                Ok(Expr::Int(match c {
                    '1' => 1,
                    _ => 0,
                }))
            }
            TokenKind::Str(s) => {
                self.ts.next_tok();
                Ok(Expr::Str(s.clone()))
            }
            TokenKind::Sym if t.text == "(" => {
                // Could be a parenthesised expression or an aggregate like
                // `(others => '0')`. Try expression; fall back to skipping.
                let save = self.ts.save();
                self.ts.next_tok();
                match self.parse_expr() {
                    Ok(e) if self.ts.peek().is_sym(")") => {
                        self.ts.next_tok();
                        Ok(e)
                    }
                    _ => {
                        self.ts.restore(save);
                        self.ts.next_tok(); // re-consume `(`
                        self.ts.skip_balanced_parens()?;
                        Ok(Expr::Str("<aggregate>".into()))
                    }
                }
            }
            TokenKind::Ident => {
                self.ts.next_tok();
                let mut name = t.text.clone();
                // Booleans read naturally as ints in the integer formulation
                // (paper §III-B1: booleans are 0/1 integers).
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Int(1));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Int(0));
                }
                while self.ts.eat_sym(".") {
                    let part = self.ts.expect_ident()?;
                    name.push('.');
                    name.push_str(&part.text);
                }
                // Attribute: `name'length` → Call("length", [Ident name]).
                if self.ts.peek().is_sym("'") && self.ts.peek_n(1).kind == TokenKind::Ident {
                    self.ts.next_tok();
                    let attr = self.ts.expect_ident()?.text;
                    return Ok(Expr::Call(attr, vec![Expr::Ident(name)]));
                }
                if self.ts.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.ts.peek().is_sym(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.ts.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.ts.expect_sym(")")?;
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Ident(name))
            }
            _ => Err(ParseError::new(
                format!("expected expression, found `{t}`"),
                t.span,
            )),
        }
    }

    /// Skips a unit body (`architecture`/`package`/`configuration`/`context`)
    /// until its closing `end`. `kind` is the keyword that may follow `end`.
    /// Inside architecture bodies, entity/component instantiations are
    /// collected on the way through.
    fn skip_body(&mut self, name: &str, kind: &str) -> ParseResult<()> {
        loop {
            // Opportunistic instantiation detection: `label : entity …`,
            // `label : component …`, or `label : name generic|port map …`.
            if kind == "architecture"
                && self.ts.peek().kind == TokenKind::Ident
                && self.ts.peek_n(1).is_sym(":")
            {
                let n2 = self.ts.peek_n(2).clone();
                let n3 = self.ts.peek_n(3).clone();
                let n4 = self.ts.peek_n(4).clone();
                let direct = n2.is_kw_ci("entity") || n2.is_kw_ci("component");
                let implicit = n2.kind == TokenKind::Ident
                    && (n3.is_kw_ci("generic") || n3.is_kw_ci("port"))
                    && n4.is_kw_ci("map");
                if direct || implicit {
                    if let Err(e) = self.parse_instantiation(name) {
                        self.diags
                            .warn(format!("unparsed instantiation: {e}"), e.span);
                        self.ts.skip_until_sym(&[";"]);
                        self.ts.eat_sym(";");
                    }
                    continue;
                }
            }
            let t = self.ts.next_tok();
            if t.is_eof() {
                return Err(ParseError::new(
                    format!("{kind} `{name}` is missing its `end`"),
                    t.span,
                ));
            }
            if !t.is_kw_ci("end") {
                continue;
            }
            let next = self.ts.peek().clone();
            // `end architecture [name];` / `end package [name];` …
            if next.is_kw_ci(kind) || (kind == "body" && next.is_kw_ci("package")) {
                self.ts.next_tok();
                self.ts.eat_kw_ci("body");
                if self.ts.peek().kind == TokenKind::Ident {
                    self.ts.next_tok();
                }
                self.ts.eat_sym(";");
                return Ok(());
            }
            // `end <name>;` where <name> matches this unit.
            if next.kind == TokenKind::Ident && next.text.eq_ignore_ascii_case(name) {
                self.ts.next_tok();
                self.ts.eat_sym(";");
                return Ok(());
            }
            // Bare `end;` closes the unit only when what follows could begin
            // a new design unit (or the file ends) — inner `end;` of
            // subprograms is followed by more body tokens in practice.
            if next.is_sym(";") {
                let save = self.ts.save();
                self.ts.next_tok(); // `;`
                let after = self.ts.peek().clone();
                if after.is_eof() || UNIT_STARTERS.iter().any(|k| after.is_kw_ci(k)) {
                    return Ok(());
                }
                self.ts.restore(save);
                self.ts.next_tok(); // consume `;` and keep scanning
            }
            // `end if;`, `end process;` … — keep scanning.
        }
    }

    /// Parses one instantiation statement inside an architecture body.
    ///
    /// Grammar (subset):
    /// `label : [entity|component] name [(arch)] [generic map (assocs)]
    ///  [port map (assocs)] ;`
    fn parse_instantiation(&mut self, parent: &str) -> ParseResult<()> {
        let label_tok = self.ts.expect_ident()?;
        self.ts.expect_sym(":")?;
        let _ = self.ts.eat_kw_ci("entity") || self.ts.eat_kw_ci("component");
        let target = self.selected_name()?;
        // Optional architecture selector: entity work.foo(rtl).
        if self.ts.peek().is_sym("(")
            && self.ts.peek_n(1).kind == TokenKind::Ident
            && self.ts.peek_n(2).is_sym(")")
        {
            self.ts.next_tok();
            self.ts.next_tok();
            self.ts.next_tok();
        }
        let mut generics = Vec::new();
        if self.ts.peek().is_kw_ci("generic") && self.ts.peek_n(1).is_kw_ci("map") {
            self.ts.next_tok();
            self.ts.next_tok();
            self.ts.expect_sym("(")?;
            loop {
                if self.ts.peek().is_sym(")") {
                    break;
                }
                if self.ts.peek().kind == TokenKind::Ident && self.ts.peek_n(1).is_sym("=>") {
                    let gname = self.ts.next_tok().text;
                    self.ts.next_tok(); // =>
                    let value = self.parse_expr()?;
                    generics.push((gname, value));
                } else {
                    // Positional association — parsed and dropped (Dovado's
                    // box always uses named associations).
                    let v = self.parse_expr()?;
                    self.diags.note(
                        format!("positional generic association `{v}` ignored"),
                        label_tok.span,
                    );
                }
                if !self.ts.eat_sym(",") {
                    break;
                }
            }
            self.ts.expect_sym(")")?;
        }
        if self.ts.peek().is_kw_ci("port") && self.ts.peek_n(1).is_kw_ci("map") {
            self.ts.next_tok();
            self.ts.next_tok();
            self.ts.expect_sym("(")?;
            self.ts.skip_balanced_parens()?;
        }
        self.ts.expect_sym(";")?;
        self.insts.push(Instantiation {
            label: label_tok.text,
            target,
            generics,
            parent: parent.to_string(),
            span: label_tok.span,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Language;
    use crate::vhdl::lexer::lex;
    use std::collections::BTreeMap;

    fn parse_ok(src: &str) -> SourceFile {
        let (f, d) = Parser::new(lex(src).unwrap()).parse_file().unwrap();
        assert!(
            !d.has_errors(),
            "diagnostics: {:?}",
            d.iter().collect::<Vec<_>>()
        );
        f
    }

    const COUNTER: &str = r#"
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity counter is
  generic (
    WIDTH      : natural := 8;
    MAX_COUNT  : integer := 2**8 - 1;
    WITH_CARRY : boolean := true
  );
  port (
    clk_i   : in  std_logic;
    rst_n   : in  std_logic;
    en      : in  std_logic;
    count_o : out std_logic_vector(WIDTH-1 downto 0);
    carry_o : out std_logic
  );
end entity counter;

architecture rtl of counter is
  signal cnt : unsigned(WIDTH-1 downto 0);
begin
  process (clk_i)
  begin
    if rising_edge(clk_i) then
      if rst_n = '0' then
        cnt <= (others => '0');
      elsif en = '1' then
        cnt <= cnt + 1;
      end if;
    end if;
  end process;
  count_o <= std_logic_vector(cnt);
end architecture rtl;
"#;

    #[test]
    fn parses_counter_entity() {
        let f = parse_ok(COUNTER);
        assert_eq!(f.modules.len(), 1);
        let m = &f.modules[0];
        assert_eq!(m.name, "counter");
        assert_eq!(m.language, Language::Vhdl);
        assert_eq!(m.parameters.len(), 3);
        assert_eq!(m.ports.len(), 5);
        assert_eq!(
            f.architectures,
            vec![("rtl".to_string(), "counter".to_string())]
        );
        assert_eq!(f.libraries(), vec!["ieee".to_string()]);
    }

    #[test]
    fn generic_defaults_evaluate() {
        let f = parse_ok(COUNTER);
        let m = &f.modules[0];
        assert_eq!(m.parameter("WIDTH").unwrap().const_default(), Some(8));
        assert_eq!(m.parameter("MAX_COUNT").unwrap().const_default(), Some(255));
        // boolean true → 1 in the integer formulation
        assert_eq!(m.parameter("WITH_CARRY").unwrap().const_default(), Some(1));
    }

    #[test]
    fn port_width_is_symbolic() {
        let f = parse_ok(COUNTER);
        let m = &f.modules[0];
        let count = m.port("count_o").unwrap();
        let mut env = BTreeMap::new();
        env.insert("WIDTH".to_string(), 16i64);
        assert_eq!(count.ty.bit_width(&env).unwrap(), 16);
        assert_eq!(count.direction, Direction::Out);
    }

    #[test]
    fn clock_detected() {
        let f = parse_ok(COUNTER);
        assert_eq!(f.modules[0].clock_port().unwrap().name, "clk_i");
    }

    #[test]
    fn entity_without_generics() {
        let f = parse_ok("entity top is port (clk : in std_logic); end top;");
        assert_eq!(f.modules[0].parameters.len(), 0);
        assert_eq!(f.modules[0].ports.len(), 1);
    }

    #[test]
    fn entity_without_ports() {
        let f = parse_ok("entity tb is end tb;");
        assert!(f.modules[0].ports.is_empty());
    }

    #[test]
    fn end_entity_variants() {
        for src in [
            "entity a is end;",
            "entity a is end a;",
            "entity a is end entity;",
            "entity a is end entity a;",
        ] {
            let f = parse_ok(src);
            assert_eq!(f.modules[0].name, "a", "failed on {src}");
        }
    }

    #[test]
    fn shared_port_declaration() {
        let f = parse_ok("entity m is port (a, b, c : in std_logic; q : out std_logic); end m;");
        let m = &f.modules[0];
        assert_eq!(m.ports.len(), 4);
        assert!(m.ports[..3].iter().all(|p| p.direction == Direction::In));
        assert_eq!(m.ports[3].direction, Direction::Out);
    }

    #[test]
    fn mode_defaults_to_in() {
        let f = parse_ok("entity m is port (a : std_logic); end m;");
        assert_eq!(f.modules[0].ports[0].direction, Direction::In);
    }

    #[test]
    fn buffer_and_inout_modes() {
        let f = parse_ok("entity m is port (x : inout std_logic; y : buffer std_logic); end m;");
        assert_eq!(f.modules[0].ports[0].direction, Direction::InOut);
        assert_eq!(f.modules[0].ports[1].direction, Direction::Buffer);
    }

    #[test]
    fn integer_range_generic() {
        let f = parse_ok(
            "entity m is generic (G : integer range 0 to 15 := 3); port (c : in std_logic); end m;",
        );
        let p = f.modules[0].parameter("G").unwrap();
        assert_eq!(p.const_default(), Some(3));
        let ty = p.ty.as_ref().unwrap();
        assert_eq!(ty.name, "integer");
        assert_eq!(ty.ranges.len(), 1);
    }

    #[test]
    fn unconstrained_port_type() {
        let f = parse_ok("entity m is port (d : in std_logic_vector); end m;");
        assert!(f.modules[0].ports[0].ty.ranges.is_empty());
    }

    #[test]
    fn based_literal_default() {
        let f = parse_ok("entity m is generic (G : integer := 16#20#); end m;");
        assert_eq!(
            f.modules[0].parameter("G").unwrap().const_default(),
            Some(32)
        );
    }

    #[test]
    fn string_generic_default() {
        let f = parse_ok(r#"entity m is generic (MODE : string := "fast"); end m;"#);
        let p = f.modules[0].parameter("MODE").unwrap();
        assert_eq!(p.default, Some(Expr::Str("fast".into())));
        assert_eq!(p.const_default(), None);
    }

    #[test]
    fn aggregate_default_is_tolerated() {
        let f = parse_ok(
            "entity m is generic (G : std_logic_vector(3 downto 0) := (others => '0')); end m;",
        );
        assert_eq!(f.modules[0].parameters.len(), 1);
    }

    #[test]
    fn clog2_style_width() {
        let f = parse_ok(
            "entity m is generic (DEPTH : natural := 16);
             port (addr : in std_logic_vector(log2(DEPTH)-1 downto 0)); end m;",
        );
        let mut env = BTreeMap::new();
        env.insert("DEPTH".to_string(), 16i64);
        assert_eq!(f.modules[0].ports[0].ty.bit_width(&env).unwrap(), 4);
    }

    #[test]
    fn multiple_entities_one_file() {
        let f = parse_ok(
            "entity a is end a;
             entity b is generic (W : natural := 1); end b;",
        );
        assert_eq!(f.modules.len(), 2);
        assert!(f.module("B").is_some());
    }

    #[test]
    fn architecture_with_nested_ends_is_skipped() {
        let f = parse_ok(COUNTER);
        // The architecture body contains `end if`, `end process` — none of
        // which should terminate scanning early.
        assert_eq!(f.architectures.len(), 1);
    }

    #[test]
    fn architecture_end_variants() {
        for end in ["end rtl;", "end architecture;", "end architecture rtl;"] {
            let src = format!("entity e is end e; architecture rtl of e is begin {end}");
            let f = parse_ok(&src);
            assert_eq!(f.architectures.len(), 1, "failed on `{end}`");
        }
    }

    #[test]
    fn package_names_recorded_bodies_skipped() {
        let f = parse_ok(
            "package pkg is constant C : integer := 3; end package pkg;
             package body pkg is end package body pkg;
             entity e is end e;",
        );
        assert_eq!(f.packages.len(), 1);
        assert_eq!(f.packages[0].name, "pkg");
        assert_eq!(f.modules.len(), 1);
    }

    #[test]
    fn missing_end_is_fatal() {
        let r = Parser::new(lex("entity e is port (c : in std_logic);").unwrap()).parse_file();
        assert!(r.is_err());
    }

    #[test]
    fn dont_touch_attribute_entity_parses() {
        // The exact pattern Dovado's box (Listing 1) relies on.
        let src = r#"
library ieee;
use ieee.std_logic_1164.all;
entity box is
  port ( clk : in std_logic );
end entity box;
architecture box_arch of box is
  attribute DONT_TOUCH : string;
  attribute DONT_TOUCH of BOXED : label is "TRUE";
begin
end architecture box_arch;
"#;
        let f = parse_ok(src);
        assert_eq!(f.modules[0].name, "box");
        assert_eq!(
            f.architectures[0],
            ("box_arch".to_string(), "box".to_string())
        );
    }

    #[test]
    fn case_insensitivity() {
        let f = parse_ok(
            "ENTITY Foo IS GENERIC (w : NATURAL := 4); PORT (CLK : IN STD_LOGIC); END ENTITY Foo;",
        );
        let m = &f.modules[0];
        assert_eq!(m.name, "Foo");
        assert!(m.parameter("W").is_some());
        assert!(m.port("clk").is_some());
    }

    #[test]
    fn power_of_two_expression() {
        let f = parse_ok("entity m is generic (SIZE : natural := 2**14); end m;");
        assert_eq!(
            f.modules[0].parameter("SIZE").unwrap().const_default(),
            Some(16384)
        );
    }

    #[test]
    fn box_instantiation_collected() {
        // The paper's Listing 1 box shape, filled in.
        let src = r#"
library ieee;
use ieee.std_logic_1164.all;
entity box is
  port ( clk : in std_logic );
end entity box;
architecture box_arch of box is
  attribute DONT_TOUCH : string;
  attribute DONT_TOUCH of BOXED : label is "TRUE";
begin
  BOXED: entity work.fifo
    generic map (
      DEPTH => 64,
      DATA_WIDTH => 2**5
    )
    port map (
      clk_i => clk
    );
end architecture box_arch;
"#;
        let f = parse_ok(src);
        assert_eq!(f.instantiations.len(), 1);
        let i = &f.instantiations[0];
        assert_eq!(i.label, "BOXED");
        assert_eq!(i.target, "work.fifo");
        assert_eq!(i.target_simple(), "fifo");
        assert_eq!(i.parent, "box_arch");
        assert_eq!(i.generics.len(), 2);
        let mut env = std::collections::BTreeMap::new();
        env.insert("_".to_string(), 0i64);
        assert_eq!(i.generics[1].1.eval(&env).unwrap(), 32);
    }

    #[test]
    fn component_instantiation_collected() {
        let src = r#"
entity top is port (clk : in std_logic); end top;
architecture rtl of top is
begin
  u0: my_core generic map (W => 8) port map (clk => clk);
end rtl;
"#;
        let f = parse_ok(src);
        assert_eq!(f.instantiations.len(), 1);
        assert_eq!(f.instantiations[0].target, "my_core");
    }

    #[test]
    fn process_labels_not_instantiations() {
        let src = r#"
entity e is port (clk : in std_logic); end e;
architecture rtl of e is
  signal x : std_logic;
begin
  main_proc: process (clk)
  begin
    if rising_edge(clk) then
      x <= not x;
    end if;
  end process main_proc;
end rtl;
"#;
        let f = parse_ok(src);
        assert!(f.instantiations.is_empty());
    }

    #[test]
    fn use_clauses_recorded() {
        let f = parse_ok("library ieee; use ieee.std_logic_1164.all; entity e is end e;");
        assert!(f
            .context
            .iter()
            .any(|c| matches!(c, ContextClause::Use(u) if u == "ieee.std_logic_1164.all")));
    }
}
