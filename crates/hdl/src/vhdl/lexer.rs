//! VHDL lexer.
//!
//! Handles `--` line comments, VHDL-2008 `/* */` block comments, basic and
//! extended (`\...\`) identifiers, decimal and based (`16#FF#`) literals,
//! character/string/bit-string literals, and the VHDL operator set.
//!
//! Attribute ticks (`clk'event`) are disambiguated from character literals
//! by lookahead: `'x'` is a character literal only when the closing quote is
//! exactly one character away.

use crate::error::{ParseError, ParseResult};
use crate::lexer::{parse_decimal, parse_radix, Cursor, Token, TokenKind, TokenStream};

/// Multi-character VHDL operators, longest first.
const MULTI_SYMS: &[&str] = &["**", ":=", "=>", "<=", ">=", "/=", "<>", "<<", ">>", "??"];

/// Lexes a VHDL buffer into a token stream.
pub fn lex(source: &str) -> ParseResult<TokenStream> {
    let mut cur = Cursor::new(source);
    let mut out: Vec<Token> = Vec::new();

    loop {
        // Skip whitespace and comments.
        loop {
            cur.eat_while(|c| c.is_whitespace());
            if cur.peek() == Some('-') && cur.peek2() == Some('-') {
                cur.skip_line();
                continue;
            }
            if cur.peek() == Some('/') && cur.peek2() == Some('*') {
                let mark = cur.mark();
                cur.bump();
                cur.bump();
                let mut closed = false;
                while let Some(c) = cur.bump() {
                    if c == '*' && cur.peek() == Some('/') {
                        cur.bump();
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(ParseError::new(
                        "unterminated block comment",
                        cur.span_from(mark),
                    ));
                }
                continue;
            }
            break;
        }

        if cur.at_eof() {
            out.push(Token::eof(cur.here()));
            break;
        }

        let mark = cur.mark();
        let c = cur.peek().expect("not at EOF");

        // Identifiers / keywords / bit-string prefixes.
        if c.is_ascii_alphabetic() {
            let word = cur
                .eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_')
                .to_string();
            // Bit-string literal such as x"FF" / b"1010" / o"77" (and 2008
            // signed/unsigned variants ux"", sb"", ...).
            let is_bitstring_prefix = matches!(
                word.to_ascii_lowercase().as_str(),
                "x" | "b" | "o" | "d" | "ux" | "sx" | "ub" | "sb" | "uo" | "so"
            );
            if is_bitstring_prefix && cur.peek() == Some('"') {
                cur.bump();
                let mut text = String::new();
                loop {
                    match cur.bump() {
                        Some('"') => break,
                        Some(ch) => text.push(ch),
                        None => {
                            return Err(ParseError::new(
                                "unterminated bit-string literal",
                                cur.span_from(mark),
                            ))
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(text.clone()),
                    text: format!("{word}\"{text}\""),
                    span: cur.span_from(mark),
                });
                continue;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: word,
                span: cur.span_from(mark),
            });
            continue;
        }

        // Extended identifier \...\ .
        if c == '\\' {
            cur.bump();
            let mut name = String::new();
            loop {
                match cur.bump() {
                    Some('\\') => {
                        if cur.peek() == Some('\\') {
                            // doubled backslash inside extended identifier
                            cur.bump();
                            name.push('\\');
                        } else {
                            break;
                        }
                    }
                    Some(ch) => name.push(ch),
                    None => {
                        return Err(ParseError::new(
                            "unterminated extended identifier",
                            cur.span_from(mark),
                        ))
                    }
                }
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: name,
                span: cur.span_from(mark),
            });
            continue;
        }

        // Numeric literals: decimal, based, real.
        if c.is_ascii_digit() {
            let digits = cur
                .eat_while(|ch| ch.is_ascii_digit() || ch == '_')
                .to_string();
            // Based literal: 16#FF# or 2#1010#
            if cur.peek() == Some('#') {
                cur.bump();
                let radix: u32 = parse_decimal(&digits)
                    .and_then(|v| u32::try_from(v).ok())
                    .filter(|r| (2..=16).contains(r))
                    .ok_or_else(|| {
                        ParseError::new(format!("invalid base `{digits}`"), cur.span_from(mark))
                    })?;
                let body = cur
                    .eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == '.')
                    .to_string();
                if !cur.eat('#') {
                    return Err(ParseError::new(
                        "unterminated based literal",
                        cur.span_from(mark),
                    ));
                }
                // Optional exponent.
                if matches!(cur.peek(), Some('e') | Some('E')) {
                    cur.bump();
                    cur.eat('+');
                    cur.eat_while(|ch| ch.is_ascii_digit());
                }
                let value = parse_radix(&body, radix).ok_or_else(|| {
                    ParseError::new(
                        format!("invalid digits `{body}` for base {radix}"),
                        cur.span_from(mark),
                    )
                })?;
                let span = cur.span_from(mark);
                out.push(Token {
                    kind: TokenKind::Int(value),
                    text: span.slice(source).to_string(),
                    span,
                });
                continue;
            }
            // Real literal: 1.5, 1.5e3
            if cur.peek() == Some('.') && cur.peek2().is_some_and(|d| d.is_ascii_digit()) {
                cur.bump();
                cur.eat_while(|ch| ch.is_ascii_digit() || ch == '_');
                if matches!(cur.peek(), Some('e') | Some('E')) {
                    cur.bump();
                    if matches!(cur.peek(), Some('+') | Some('-')) {
                        cur.bump();
                    }
                    cur.eat_while(|ch| ch.is_ascii_digit());
                }
                let span = cur.span_from(mark);
                let text = span.slice(source).to_string();
                let value: f64 = text
                    .replace('_', "")
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid real literal `{text}`"), span))?;
                out.push(Token {
                    kind: TokenKind::Real(value),
                    text,
                    span,
                });
                continue;
            }
            // Integer with optional exponent (1e3 is an integer in VHDL).
            let mut value = parse_decimal(&digits).ok_or_else(|| {
                ParseError::new(format!("invalid integer `{digits}`"), cur.span_from(mark))
            })?;
            if matches!(cur.peek(), Some('e') | Some('E'))
                && cur.peek2().is_some_and(|d| d.is_ascii_digit() || d == '+')
            {
                cur.bump();
                cur.eat('+');
                let exp_digits = cur.eat_while(|ch| ch.is_ascii_digit()).to_string();
                let exp = parse_decimal(&exp_digits).unwrap_or(0);
                for _ in 0..exp {
                    value = value.checked_mul(10).ok_or_else(|| {
                        ParseError::new("integer literal overflow", cur.span_from(mark))
                    })?;
                }
            }
            let span = cur.span_from(mark);
            out.push(Token {
                kind: TokenKind::Int(value),
                text: span.slice(source).to_string(),
                span,
            });
            continue;
        }

        // String literal with "" escaping.
        if c == '"' {
            cur.bump();
            let mut text = String::new();
            loop {
                match cur.bump() {
                    Some('"') => {
                        if cur.peek() == Some('"') {
                            cur.bump();
                            text.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(ch) => text.push(ch),
                    None => {
                        return Err(ParseError::new(
                            "unterminated string literal",
                            cur.span_from(mark),
                        ))
                    }
                }
            }
            out.push(Token {
                kind: TokenKind::Str(text.clone()),
                text,
                span: cur.span_from(mark),
            });
            continue;
        }

        // Character literal vs attribute tick.
        if c == '\'' {
            // 'x' is a char literal only if pattern is '<char>' exactly.
            let rest: Vec<char> = cur.source()[cur.pos()..].chars().take(3).collect();
            if rest.len() == 3 && rest[2] == '\'' {
                cur.bump(); // '
                let ch = cur.bump().expect("char literal body");
                cur.bump(); // '
                out.push(Token {
                    kind: TokenKind::Char(ch),
                    text: format!("'{ch}'"),
                    span: cur.span_from(mark),
                });
                continue;
            }
            cur.bump();
            out.push(Token {
                kind: TokenKind::Sym,
                text: "'".into(),
                span: cur.span_from(mark),
            });
            continue;
        }

        // Multi-char operators.
        let rest = &cur.source()[cur.pos()..];
        if let Some(sym) = MULTI_SYMS.iter().find(|s| rest.starts_with(**s)) {
            for _ in 0..sym.len() {
                cur.bump();
            }
            out.push(Token {
                kind: TokenKind::Sym,
                text: (*sym).to_string(),
                span: cur.span_from(mark),
            });
            continue;
        }

        // Single-char symbol.
        let ch = cur.bump().expect("not at EOF");
        if ch.is_ascii_graphic() {
            out.push(Token {
                kind: TokenKind::Sym,
                text: ch.to_string(),
                span: cur.span_from(mark),
            });
        } else {
            return Err(ParseError::new(
                format!("unexpected character `{ch}` (U+{:04X})", ch as u32),
                cur.span_from(mark),
            ));
        }
    }

    Ok(TokenStream::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokenKind;

    fn kinds(src: &str) -> Vec<Token> {
        let mut ts = lex(src).unwrap();
        let mut out = Vec::new();
        loop {
            let t = ts.next_tok();
            let eof = t.is_eof();
            out.push(t);
            if eof {
                break;
            }
        }
        out
    }

    #[test]
    fn lexes_identifiers_and_keywords() {
        let toks = kinds("entity Box is end;");
        assert_eq!(toks[0].text, "entity");
        assert_eq!(toks[1].text, "Box");
        assert!(toks[0].is_kw_ci("ENTITY"));
        assert!(toks[3].is_kw_ci("end"));
        assert!(toks[4].is_sym(";"));
    }

    #[test]
    fn skips_line_comments() {
        let toks = kinds("a -- comment ' \" stuff\nb");
        assert_eq!(toks[0].text, "a");
        assert_eq!(toks[1].text, "b");
    }

    #[test]
    fn skips_block_comments() {
        let toks = kinds("a /* multi\nline */ b");
        assert_eq!(toks[0].text, "a");
        assert_eq!(toks[1].text, "b");
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("a /* no end").is_err());
    }

    #[test]
    fn decimal_literals() {
        let toks = kinds("42 1_000");
        assert_eq!(toks[0].kind, TokenKind::Int(42));
        assert_eq!(toks[1].kind, TokenKind::Int(1000));
    }

    #[test]
    fn integer_exponent() {
        let toks = kinds("1e3");
        assert_eq!(toks[0].kind, TokenKind::Int(1000));
    }

    #[test]
    fn based_literals() {
        let toks = kinds("16#FF# 2#1010# 8#17#");
        assert_eq!(toks[0].kind, TokenKind::Int(255));
        assert_eq!(toks[1].kind, TokenKind::Int(10));
        assert_eq!(toks[2].kind, TokenKind::Int(15));
    }

    #[test]
    fn invalid_base_errors() {
        assert!(lex("17#0#").is_err());
        assert!(lex("16#GG#").is_err());
        assert!(lex("16#12").is_err());
    }

    #[test]
    fn real_literals() {
        let toks = kinds("3.25 1.0e-2");
        assert_eq!(toks[0].kind, TokenKind::Real(3.25));
        assert_eq!(toks[1].kind, TokenKind::Real(0.01));
    }

    #[test]
    fn char_literal_vs_attribute_tick() {
        let toks = kinds("'1' clk'event");
        assert_eq!(toks[0].kind, TokenKind::Char('1'));
        assert_eq!(toks[1].text, "clk");
        assert!(toks[2].is_sym("'"));
        assert_eq!(toks[3].text, "event");
    }

    #[test]
    fn string_with_escape() {
        let toks = kinds(r#""hello ""world""""#);
        assert_eq!(toks[0].kind, TokenKind::Str("hello \"world\"".into()));
    }

    #[test]
    fn bit_string_literals() {
        let toks = kinds("x\"FF\" b\"1010\"");
        assert!(matches!(&toks[0].kind, TokenKind::Str(s) if s == "FF"));
        assert!(matches!(&toks[1].kind, TokenKind::Str(s) if s == "1010"));
    }

    #[test]
    fn extended_identifier() {
        let toks = kinds(r"\weird name!\ x");
        assert_eq!(toks[0].kind, TokenKind::Ident);
        assert_eq!(toks[0].text, "weird name!");
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds(":= => <= ** /= <>");
        let texts: Vec<_> = toks.iter().take(6).map(|t| t.text.clone()).collect();
        assert_eq!(texts, vec![":=", "=>", "<=", "**", "/=", "<>"]);
    }

    #[test]
    fn spans_point_into_source() {
        let src = "entity foo is";
        let mut ts = lex(src).unwrap();
        ts.next_tok();
        let t = ts.next_tok();
        assert_eq!(t.span.slice(src), "foo");
        assert_eq!(t.span.line, 1);
        assert_eq!(t.span.col, 8);
    }

    #[test]
    fn empty_input_is_just_eof() {
        let mut ts = lex("").unwrap();
        assert!(ts.next_tok().is_eof());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
    }
}
