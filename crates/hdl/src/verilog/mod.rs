//! Verilog-2001 / SystemVerilog declaration-subset front-end.
//!
//! Covers both ANSI (`module m #(parameter W = 4)(input logic clk);`) and
//! non-ANSI (`module m(clk); input clk; parameter W = 4;`) declaration
//! styles — the "wide variety of declaration styles" the paper cites as the
//! reason regular expressions are not enough. Module bodies are scanned,
//! not fully parsed: `parameter`/`localparam`/`input`/`output`/`inout`
//! declarations are picked up, everything else is skipped.

pub mod lexer;
pub mod parser;

use crate::ast::SourceFile;
use crate::error::{Diagnostics, ParseResult};

/// Parses a Verilog/SystemVerilog buffer into its declaration-level
/// [`SourceFile`].
pub fn parse(source: &str) -> ParseResult<(SourceFile, Diagnostics)> {
    let tokens = lexer::lex(source)?;
    parser::Parser::new(tokens).parse_file()
}
