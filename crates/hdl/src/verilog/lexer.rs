//! Verilog / SystemVerilog lexer.
//!
//! Handles `//` and `/* */` comments, simple and escaped identifiers,
//! system identifiers (`$clog2`), sized/based literals (`8'hFF`, `'d10`,
//! `'1`), decimal/real literals, compiler directives (skipped or recorded),
//! and the operator set needed for declaration parsing.

use crate::error::{ParseError, ParseResult};
use crate::lexer::{parse_decimal, parse_radix, Cursor, Token, TokenKind, TokenStream};

/// Multi-character operators, longest first so maximal munch works.
const MULTI_SYMS: &[&str] = &[
    "<<<", ">>>", "===", "!==", "<->", "**", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "::",
    "+:", "-:", "->", "'{",
];

/// Directives whose whole line is irrelevant to interface extraction.
const LINE_DIRECTIVES: &[&str] = &[
    "define",
    "undef",
    "timescale",
    "ifdef",
    "ifndef",
    "elsif",
    "else",
    "endif",
    "default_nettype",
    "celldefine",
    "endcelldefine",
    "resetall",
    "pragma",
    "line",
    "unconnected_drive",
    "nounconnected_drive",
    "begin_keywords",
    "end_keywords",
];

/// Lexes a Verilog/SystemVerilog buffer into a token stream.
pub fn lex(source: &str) -> ParseResult<TokenStream> {
    let mut cur = Cursor::new(source);
    let mut out: Vec<Token> = Vec::new();

    loop {
        // Whitespace and comments.
        loop {
            cur.eat_while(|c| c.is_whitespace());
            if cur.peek() == Some('/') && cur.peek2() == Some('/') {
                cur.skip_line();
                continue;
            }
            if cur.peek() == Some('/') && cur.peek2() == Some('*') {
                let mark = cur.mark();
                cur.bump();
                cur.bump();
                let mut closed = false;
                while let Some(c) = cur.bump() {
                    if c == '*' && cur.peek() == Some('/') {
                        cur.bump();
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(ParseError::new(
                        "unterminated block comment",
                        cur.span_from(mark),
                    ));
                }
                continue;
            }
            break;
        }

        if cur.at_eof() {
            out.push(Token::eof(cur.here()));
            break;
        }

        let mark = cur.mark();
        let c = cur.peek().expect("not at EOF");

        // Compiler directives.
        if c == '`' {
            cur.bump();
            let word = cur
                .eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_')
                .to_string();
            if word == "include" {
                // `include "file" — emit a marker symbol; the string token
                // follows naturally.
                out.push(Token {
                    kind: TokenKind::Sym,
                    text: "`include".into(),
                    span: cur.span_from(mark),
                });
                continue;
            }
            if LINE_DIRECTIVES.contains(&word.as_str()) {
                cur.skip_line();
                continue;
            }
            // Macro usage: treat as an identifier spelled with the backtick
            // so downstream width expressions stay symbolic.
            out.push(Token {
                kind: TokenKind::Ident,
                text: format!("`{word}"),
                span: cur.span_from(mark),
            });
            continue;
        }

        // Identifiers / keywords / system identifiers.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let word = cur
                .eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == '$')
                .to_string();
            out.push(Token {
                kind: TokenKind::Ident,
                text: word,
                span: cur.span_from(mark),
            });
            continue;
        }

        // Escaped identifier: backslash up to whitespace.
        if c == '\\' {
            cur.bump();
            let word = cur.eat_while(|ch| !ch.is_whitespace()).to_string();
            if word.is_empty() {
                return Err(ParseError::new(
                    "empty escaped identifier",
                    cur.span_from(mark),
                ));
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: word,
                span: cur.span_from(mark),
            });
            continue;
        }

        // Unsized based literal or unbased unsized literal: 'd10, 'h FF, '0, '1, 'x, 'z
        if c == '\'' && !matches!(cur.peek2(), Some('{')) {
            cur.bump();
            cur.eat('s');
            cur.eat('S');
            let b = cur.peek();
            match b {
                Some('b' | 'B' | 'o' | 'O' | 'd' | 'D' | 'h' | 'H') => {
                    let radix = match b.expect("peeked") {
                        'b' | 'B' => 2,
                        'o' | 'O' => 8,
                        'd' | 'D' => 10,
                        _ => 16,
                    };
                    cur.bump();
                    cur.eat_while(|ch| ch.is_whitespace());
                    let digits = cur
                        .eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == '?')
                        .to_string();
                    let value = parse_radix(&digits, radix).ok_or_else(|| {
                        ParseError::new(
                            format!("invalid digits `{digits}` for base {radix}"),
                            cur.span_from(mark),
                        )
                    })?;
                    let span = cur.span_from(mark);
                    out.push(Token {
                        kind: TokenKind::Int(value),
                        text: span.slice(source).to_string(),
                        span,
                    });
                }
                Some('0' | '1' | 'x' | 'X' | 'z' | 'Z') => {
                    let d = cur.bump().expect("peeked");
                    let value = if d == '1' { 1 } else { 0 };
                    let span = cur.span_from(mark);
                    out.push(Token {
                        kind: TokenKind::Int(value),
                        text: span.slice(source).to_string(),
                        span,
                    });
                }
                _ => {
                    // Lone tick (e.g. cast `int'(x)`): emit as a symbol.
                    out.push(Token {
                        kind: TokenKind::Sym,
                        text: "'".into(),
                        span: cur.span_from(mark),
                    });
                }
            }
            continue;
        }

        // Numbers: sized literal, decimal, real.
        if c.is_ascii_digit() {
            let digits = cur
                .eat_while(|ch| ch.is_ascii_digit() || ch == '_')
                .to_string();
            // Sized based literal: 8'hFF
            if cur.peek() == Some('\'')
                && matches!(
                    cur.peek2(),
                    Some('b' | 'B' | 'o' | 'O' | 'd' | 'D' | 'h' | 'H' | 's' | 'S')
                )
            {
                cur.bump(); // '
                cur.eat('s');
                cur.eat('S');
                let bc = cur.bump().ok_or_else(|| {
                    ParseError::new("truncated based literal", cur.span_from(mark))
                })?;
                let radix = match bc {
                    'b' | 'B' => 2,
                    'o' | 'O' => 8,
                    'd' | 'D' => 10,
                    'h' | 'H' => 16,
                    other => {
                        return Err(ParseError::new(
                            format!("invalid base character `{other}`"),
                            cur.span_from(mark),
                        ))
                    }
                };
                cur.eat_while(|ch| ch.is_whitespace());
                let body = cur
                    .eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == '?')
                    .to_string();
                let value = parse_radix(&body, radix).ok_or_else(|| {
                    ParseError::new(
                        format!("invalid digits `{body}` for base {radix}"),
                        cur.span_from(mark),
                    )
                })?;
                let span = cur.span_from(mark);
                out.push(Token {
                    kind: TokenKind::Int(value),
                    text: span.slice(source).to_string(),
                    span,
                });
                continue;
            }
            // Real literal.
            if cur.peek() == Some('.') && cur.peek2().is_some_and(|d| d.is_ascii_digit()) {
                cur.bump();
                cur.eat_while(|ch| ch.is_ascii_digit() || ch == '_');
                if matches!(cur.peek(), Some('e') | Some('E')) {
                    cur.bump();
                    if matches!(cur.peek(), Some('+') | Some('-')) {
                        cur.bump();
                    }
                    cur.eat_while(|ch| ch.is_ascii_digit());
                }
                let span = cur.span_from(mark);
                let text = span.slice(source).to_string();
                let value: f64 = text
                    .replace('_', "")
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid real literal `{text}`"), span))?;
                out.push(Token {
                    kind: TokenKind::Real(value),
                    text,
                    span,
                });
                continue;
            }
            let value = parse_decimal(&digits).ok_or_else(|| {
                ParseError::new(format!("invalid integer `{digits}`"), cur.span_from(mark))
            })?;
            let span = cur.span_from(mark);
            out.push(Token {
                kind: TokenKind::Int(value),
                text: span.slice(source).to_string(),
                span,
            });
            continue;
        }

        // String literal with backslash escapes.
        if c == '"' {
            cur.bump();
            let mut text = String::new();
            loop {
                match cur.bump() {
                    Some('"') => break,
                    Some('\\') => {
                        let esc = cur.bump().ok_or_else(|| {
                            ParseError::new("unterminated string literal", cur.span_from(mark))
                        })?;
                        text.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    }
                    Some(ch) => text.push(ch),
                    None => {
                        return Err(ParseError::new(
                            "unterminated string literal",
                            cur.span_from(mark),
                        ))
                    }
                }
            }
            out.push(Token {
                kind: TokenKind::Str(text.clone()),
                text,
                span: cur.span_from(mark),
            });
            continue;
        }

        // Multi-char operators.
        let rest = &cur.source()[cur.pos()..];
        if let Some(sym) = MULTI_SYMS.iter().find(|s| rest.starts_with(**s)) {
            for _ in 0..sym.len() {
                cur.bump();
            }
            out.push(Token {
                kind: TokenKind::Sym,
                text: (*sym).to_string(),
                span: cur.span_from(mark),
            });
            continue;
        }

        let ch = cur.bump().expect("not at EOF");
        if ch.is_ascii_graphic() {
            out.push(Token {
                kind: TokenKind::Sym,
                text: ch.to_string(),
                span: cur.span_from(mark),
            });
        } else {
            return Err(ParseError::new(
                format!("unexpected character `{ch}` (U+{:04X})", ch as u32),
                cur.span_from(mark),
            ));
        }
    }

    Ok(TokenStream::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokenKind;

    fn all(src: &str) -> Vec<Token> {
        let mut ts = lex(src).unwrap();
        let mut out = Vec::new();
        loop {
            let t = ts.next_tok();
            let eof = t.is_eof();
            out.push(t);
            if eof {
                break;
            }
        }
        out
    }

    #[test]
    fn identifiers_and_system_ids() {
        let toks = all("module fifo $clog2 _x a$b");
        assert_eq!(toks[0].text, "module");
        assert_eq!(toks[1].text, "fifo");
        assert_eq!(toks[2].text, "$clog2");
        assert_eq!(toks[3].text, "_x");
        assert_eq!(toks[4].text, "a$b");
    }

    #[test]
    fn escaped_identifier() {
        let toks = all(r"\bus-sel! x");
        assert_eq!(toks[0].text, "bus-sel!");
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn comments_skipped() {
        let toks = all("a // line 'h\n b /* block\n*/ c");
        let texts: Vec<_> = toks.iter().take(3).map(|t| t.text.clone()).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
    }

    #[test]
    fn sized_literals() {
        let toks = all("8'hFF 4'b1010 12'd100 8'sh7F");
        assert_eq!(toks[0].kind, TokenKind::Int(255));
        assert_eq!(toks[1].kind, TokenKind::Int(10));
        assert_eq!(toks[2].kind, TokenKind::Int(100));
        assert_eq!(toks[3].kind, TokenKind::Int(127));
    }

    #[test]
    fn unsized_based_literals() {
        let toks = all("'d10 'hff '0 '1");
        assert_eq!(toks[0].kind, TokenKind::Int(10));
        assert_eq!(toks[1].kind, TokenKind::Int(255));
        assert_eq!(toks[2].kind, TokenKind::Int(0));
        assert_eq!(toks[3].kind, TokenKind::Int(1));
    }

    #[test]
    fn xz_digits_decode_to_zero() {
        let toks = all("4'b1x1z");
        assert_eq!(toks[0].kind, TokenKind::Int(0b1010));
    }

    #[test]
    fn decimal_and_real() {
        let toks = all("42 1_000 3.5 2.5e3");
        assert_eq!(toks[0].kind, TokenKind::Int(42));
        assert_eq!(toks[1].kind, TokenKind::Int(1000));
        assert_eq!(toks[2].kind, TokenKind::Real(3.5));
        assert_eq!(toks[3].kind, TokenKind::Real(2500.0));
    }

    #[test]
    fn directives_skipped() {
        let toks = all("`timescale 1ns/1ps\n`define W 8\nmodule m;");
        assert_eq!(toks[0].text, "module");
    }

    #[test]
    fn include_directive_recorded() {
        let toks = all("`include \"defs.svh\"\nmodule m;");
        assert!(toks[0].is_sym("`include"));
        assert!(matches!(&toks[1].kind, TokenKind::Str(s) if s == "defs.svh"));
        assert_eq!(toks[2].text, "module");
    }

    #[test]
    fn macro_usage_becomes_identifier() {
        let toks = all("parameter W = `WIDTH;");
        assert_eq!(toks[3].text, "`WIDTH");
        assert_eq!(toks[3].kind, TokenKind::Ident);
    }

    #[test]
    fn multi_char_operators() {
        let toks = all(":: <= >= == ** << >> <<<");
        let texts: Vec<_> = toks.iter().take(8).map(|t| t.text.clone()).collect();
        assert_eq!(texts, vec!["::", "<=", ">=", "==", "**", "<<", ">>", "<<<"]);
    }

    #[test]
    fn string_with_escapes() {
        let toks = all(r#""a\n\"b""#);
        assert!(matches!(&toks[0].kind, TokenKind::Str(s) if s == "a\n\"b"));
    }

    #[test]
    fn cast_tick_is_symbol() {
        let toks = all("int'(x)");
        assert_eq!(toks[0].text, "int");
        assert!(toks[1].is_sym("'"));
        assert!(toks[2].is_sym("("));
    }

    #[test]
    fn sized_literal_with_space() {
        let toks = all("8'h FF");
        assert_eq!(toks[0].kind, TokenKind::Int(255));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("a /* b").is_err());
    }

    #[test]
    fn assignment_pattern_tick_brace() {
        let toks = all("'{0, 1}");
        assert!(toks[0].is_sym("'{"));
    }
}
