//! Declaration parser for Verilog-2001 and SystemVerilog modules.
//!
//! Supports ANSI and non-ANSI header styles, parameter/localparam
//! declarations in both the `#(...)` header and the module body, and port
//! re-declarations in the body (non-ANSI style). Function/task bodies are
//! skipped so their `input`/`output` argument declarations are not mistaken
//! for ports.

use crate::ast::{
    ContextClause, Direction, Expr, Instantiation, Language, ModuleInterface, PackageDecl,
    Parameter, Port, Range, RangeDir, SourceFile, TypeSpec,
};
use crate::error::{Diagnostics, ParseError, ParseResult};
use crate::lexer::{TokenKind, TokenStream};
use crate::span::Span;

/// Built-in data/net type keywords that can open a type in a declaration.
const TYPE_KEYWORDS: &[&str] = &[
    "wire",
    "reg",
    "logic",
    "bit",
    "byte",
    "shortint",
    "int",
    "longint",
    "integer",
    "time",
    "real",
    "realtime",
    "shortreal",
    "string",
    "tri",
    "tri0",
    "tri1",
    "triand",
    "trior",
    "trireg",
    "wand",
    "wor",
    "supply0",
    "supply1",
    "uwire",
    "var",
    "genvar",
    "event",
];

/// Statement/control keywords that can never be an instantiation target or
/// instance name (guards the opportunistic instantiation detector).
const STMT_KEYWORDS: &[&str] = &[
    "if",
    "else",
    "begin",
    "end",
    "assign",
    "deassign",
    "always",
    "always_ff",
    "always_comb",
    "always_latch",
    "initial",
    "final",
    "case",
    "casex",
    "casez",
    "endcase",
    "default",
    "for",
    "while",
    "repeat",
    "forever",
    "wait",
    "disable",
    "fork",
    "join",
    "join_any",
    "join_none",
    "posedge",
    "negedge",
    "return",
    "typedef",
    "enum",
    "struct",
    "union",
    "packed",
    "assert",
    "assume",
    "cover",
    "unique",
    "priority",
    "force",
    "release",
    "specify",
    "endspecify",
    "defparam",
    "generate",
    "endgenerate",
    "genvar",
    "module",
    "endmodule",
    "function",
    "endfunction",
    "task",
    "endtask",
    "parameter",
    "localparam",
    "input",
    "output",
    "inout",
];

/// Keyword pairs whose bodies must be skipped while scanning a module.
const SKIP_BLOCKS: &[(&str, &str)] = &[
    ("function", "endfunction"),
    ("task", "endtask"),
    ("class", "endclass"),
    ("clocking", "endclocking"),
    ("covergroup", "endgroup"),
    ("property", "endproperty"),
    ("sequence", "endsequence"),
];

/// The Verilog/SystemVerilog declaration parser.
pub struct Parser {
    ts: TokenStream,
    diags: Diagnostics,
    /// Set to true when a SystemVerilog-only construct is seen, upgrading
    /// the reported language from Verilog to SystemVerilog.
    saw_sv: bool,
    /// Instantiations collected while scanning module bodies.
    insts: Vec<Instantiation>,
}

impl Parser {
    /// Wraps a token stream produced by [`crate::verilog::lexer::lex`].
    pub fn new(ts: TokenStream) -> Self {
        Parser {
            ts,
            diags: Diagnostics::new(),
            saw_sv: false,
            insts: Vec::new(),
        }
    }

    /// Parses the whole file.
    pub fn parse_file(mut self) -> ParseResult<(SourceFile, Diagnostics)> {
        let mut file = SourceFile::default();
        while !self.ts.at_eof() {
            let t = self.ts.peek().clone();
            if t.is_sym("`include") {
                self.ts.next_tok();
                if let TokenKind::Str(path) = &self.ts.peek().kind {
                    file.context.push(ContextClause::Include(path.clone()));
                    self.ts.next_tok();
                } else {
                    self.diags.warn("`include without a string path", t.span);
                }
            } else if t.is_kw("import") {
                self.ts.next_tok();
                self.saw_sv = true;
                let name = self.scoped_name_string()?;
                file.context.push(ContextClause::Import(name));
                self.ts.skip_until_sym(&[";"]);
                self.ts.eat_sym(";");
            } else if t.is_kw("package") {
                self.ts.next_tok();
                self.saw_sv = true;
                let name = self.ts.expect_ident()?.text;
                self.skip_until_kw("endpackage", &name)?;
                // optional `: name` label
                if self.ts.eat_sym(":") {
                    let _ = self.ts.expect_ident();
                }
                file.packages.push(PackageDecl { name });
            } else if t.is_kw("interface") {
                self.ts.next_tok();
                self.saw_sv = true;
                let name = if self.ts.peek().kind == TokenKind::Ident {
                    self.ts.next_tok().text
                } else {
                    String::new()
                };
                self.skip_until_kw("endinterface", &name)?;
                if self.ts.eat_sym(":") {
                    let _ = self.ts.expect_ident();
                }
            } else if t.is_kw("module") || t.is_kw("macromodule") {
                let m = self.parse_module()?;
                file.modules.push(m);
            } else {
                self.diags
                    .warn(format!("skipping unexpected token `{t}`"), t.span);
                self.ts.next_tok();
            }
        }
        // Upgrade module languages if SV constructs were seen anywhere.
        if self.saw_sv {
            for m in &mut file.modules {
                m.language = Language::SystemVerilog;
            }
        }
        file.instantiations = std::mem::take(&mut self.insts);
        Ok((file, self.diags))
    }

    /// Consumes tokens until the given end keyword; errors at EOF.
    fn skip_until_kw(&mut self, end: &str, name: &str) -> ParseResult<()> {
        loop {
            let t = self.ts.next_tok();
            if t.is_eof() {
                return Err(ParseError::new(
                    format!("`{name}` is missing its `{end}`"),
                    t.span,
                ));
            }
            if t.is_kw(end) {
                return Ok(());
            }
        }
    }

    /// `pkg::name` or `pkg::*` joined into one string.
    fn scoped_name_string(&mut self) -> ParseResult<String> {
        let mut s = self.ts.expect_ident()?.text;
        while self.ts.eat_sym("::") {
            if self.ts.eat_sym("*") {
                s.push_str("::*");
                break;
            }
            let part = self.ts.expect_ident()?;
            s.push_str("::");
            s.push_str(&part.text);
        }
        Ok(s)
    }

    /// Parses one `module ... endmodule`.
    fn parse_module(&mut self) -> ParseResult<ModuleInterface> {
        let start = self.ts.next_tok().span; // module / macromodule
                                             // Lifetime qualifier (SV).
        if self.ts.peek().is_kw("static") || self.ts.peek().is_kw("automatic") {
            self.saw_sv = true;
            self.ts.next_tok();
        }
        let name = self.ts.expect_ident()?.text;

        let mut parameters: Vec<Parameter> = Vec::new();
        let mut ports: Vec<Port> = Vec::new();
        // Ports named in a non-ANSI header, in order, pending body decls.
        let mut header_names: Vec<(String, Span)> = Vec::new();

        // Header package imports.
        while self.ts.peek().is_kw("import") {
            self.saw_sv = true;
            self.ts.next_tok();
            self.ts.skip_until_sym(&[";"]);
            self.ts.eat_sym(";");
        }

        // Parameter port list.
        if self.ts.eat_sym("#") {
            self.ts.expect_sym("(")?;
            self.parse_param_port_list(&mut parameters)?;
            self.ts.expect_sym(")")?;
        }

        // Port list.
        if self.ts.eat_sym("(") {
            self.parse_port_list(&mut ports, &mut header_names)?;
            self.ts.expect_sym(")")?;
        }
        self.ts.expect_sym(";")?;

        // Body scan.
        let end_span = self.scan_body(&name, &mut parameters, &mut ports, &mut header_names)?;

        // Any header names never given a body declaration become inputs with
        // an implicit net type (legal in old Verilog for 1-bit nets).
        for (hn, hspan) in header_names {
            if !ports.iter().any(|p| p.name.eq_ignore_ascii_case(&hn)) {
                self.diags.warn(
                    format!("port `{hn}` has no direction declaration; assuming `input`"),
                    hspan,
                );
                ports.push(Port {
                    name: hn,
                    direction: Direction::In,
                    ty: TypeSpec::scalar("wire"),
                    span: hspan,
                });
            }
        }

        Ok(ModuleInterface {
            name,
            language: if self.saw_sv {
                Language::SystemVerilog
            } else {
                Language::Verilog
            },
            parameters,
            ports,
            span: start.merge(end_span),
        })
    }

    /// Scans the module body for parameter/port declarations until
    /// `endmodule`. Returns the span of the `endmodule` keyword.
    fn scan_body(
        &mut self,
        name: &str,
        parameters: &mut Vec<Parameter>,
        ports: &mut Vec<Port>,
        header_names: &mut Vec<(String, Span)>,
    ) -> ParseResult<Span> {
        let mut module_depth = 0usize;
        // True at positions where a new statement/item could begin — gates
        // instantiation detection to avoid matching inside expressions.
        let mut stmt_start = true;
        loop {
            let t = self.ts.peek().clone();
            if t.is_eof() {
                return Err(ParseError::new(
                    format!("module `{name}` is missing `endmodule`"),
                    t.span,
                ));
            }
            // Instantiation patterns at statement level (depth 0 only):
            //   target #( .P(v) ) label ( … );
            //   target label ( … );
            if module_depth == 0
                && stmt_start
                && t.kind == TokenKind::Ident
                && !TYPE_KEYWORDS.contains(&t.text.as_str())
                && !STMT_KEYWORDS.contains(&t.text.as_str())
                && ((self.ts.peek_n(1).is_sym("#") && self.ts.peek_n(2).is_sym("("))
                    || (self.ts.peek_n(1).kind == TokenKind::Ident
                        && !STMT_KEYWORDS.contains(&self.ts.peek_n(1).text.as_str())
                        && self.ts.peek_n(2).is_sym("(")))
            {
                match self.parse_instantiation(name) {
                    Ok(()) => {}
                    Err(e) => {
                        self.diags
                            .note(format!("unparsed instantiation: {e}"), t.span);
                        self.ts.skip_until_sym(&[";"]);
                        self.ts.eat_sym(";");
                    }
                }
                stmt_start = true;
                continue;
            }
            if t.is_kw("module") || t.is_kw("macromodule") {
                self.ts.next_tok();
                module_depth += 1;
                continue;
            }
            if t.is_kw("endmodule") {
                self.ts.next_tok();
                if self.ts.eat_sym(":") {
                    let _ = self.ts.expect_ident();
                }
                if module_depth == 0 {
                    return Ok(t.span);
                }
                module_depth -= 1;
                continue;
            }
            if module_depth > 0 {
                self.ts.next_tok();
                continue;
            }
            if let Some((_, end)) = SKIP_BLOCKS.iter().find(|(open, _)| t.is_kw(open)) {
                self.ts.next_tok();
                self.skip_until_kw(end, name)?;
                if self.ts.eat_sym(":") {
                    let _ = self.ts.expect_ident();
                }
                stmt_start = true;
                continue;
            }
            if t.is_kw("parameter") || t.is_kw("localparam") {
                // Statement form: `parameter [type] N = v [, M = v];`
                if let Err(e) = self.parse_param_statement(parameters) {
                    self.diags
                        .warn(format!("unparsed parameter declaration: {e}"), t.span);
                    self.ts.skip_until_sym(&[";"]);
                    self.ts.eat_sym(";");
                }
                stmt_start = true;
                continue;
            }
            if t.is_kw("input") || t.is_kw("output") || t.is_kw("inout") {
                if let Err(e) = self.parse_body_port_decl(ports, header_names) {
                    self.diags
                        .warn(format!("unparsed port declaration: {e}"), t.span);
                    self.ts.skip_until_sym(&[";"]);
                    self.ts.eat_sym(";");
                }
                stmt_start = true;
                continue;
            }
            stmt_start = t.is_sym(";")
                || t.is_sym(")")
                || t.is_kw("begin")
                || t.is_kw("end")
                || t.is_kw("else")
                || t.is_kw("generate")
                || t.is_kw("endgenerate");
            self.ts.next_tok();
        }
    }

    /// Parses `target [#(.P(v), …)] label [dims] ( … ) [, label2 ( … )] ;`
    /// collecting the named parameter overrides.
    fn parse_instantiation(&mut self, parent: &str) -> ParseResult<()> {
        let target_tok = self.ts.expect_ident()?;
        let mut generics = Vec::new();
        if self.ts.eat_sym("#") {
            self.ts.expect_sym("(")?;
            if !self.ts.peek().is_sym(")") {
                loop {
                    if self.ts.eat_sym(".") {
                        let gname = self.ts.expect_ident()?.text;
                        self.ts.expect_sym("(")?;
                        if self.ts.peek().is_sym(")") {
                            // `.P()` — explicitly unconnected; skip.
                            self.ts.next_tok();
                        } else {
                            let value = self.parse_expr()?;
                            self.ts.expect_sym(")")?;
                            generics.push((gname, value));
                        }
                    } else {
                        // Positional parameter override.
                        let _ = self.parse_expr()?;
                    }
                    if !self.ts.eat_sym(",") {
                        break;
                    }
                }
            }
            self.ts.expect_sym(")")?;
        }
        loop {
            let label = self.ts.expect_ident()?;
            self.skip_unpacked_dims()?;
            self.ts.expect_sym("(")?;
            self.ts.skip_balanced_parens()?;
            self.insts.push(Instantiation {
                label: label.text,
                target: target_tok.text.clone(),
                generics: generics.clone(),
                parent: parent.to_string(),
                span: label.span,
            });
            if !self.ts.eat_sym(",") {
                break;
            }
        }
        self.ts.expect_sym(";")?;
        Ok(())
    }

    /// Parameter list inside `#( ... )`.
    fn parse_param_port_list(&mut self, out: &mut Vec<Parameter>) -> ParseResult<()> {
        if self.ts.peek().is_sym(")") {
            return Ok(());
        }
        let mut local = false;
        loop {
            if self.ts.eat_kw("parameter") {
                local = false;
            } else if self.ts.eat_kw("localparam") {
                local = true;
                self.saw_sv = true;
            }
            // Type parameter: `parameter type T = logic`.
            if self.ts.peek().is_kw("type") {
                self.saw_sv = true;
                self.ts.next_tok();
                let id = self.ts.expect_ident()?;
                self.diags.note(
                    format!("type parameter `{}` is not explorable by Dovado", id.text),
                    id.span,
                );
                out.push(Parameter {
                    name: id.text,
                    ty: None,
                    default: None,
                    span: id.span,
                    local,
                });
                if self.ts.eat_sym("=") {
                    // Skip the type default up to `,` or `)`.
                    self.skip_param_default()?;
                }
                if !self.ts.eat_sym(",") {
                    break;
                }
                continue;
            }
            let ty = self.try_parse_type()?;
            let id = self.ts.expect_ident()?;
            self.skip_unpacked_dims()?;
            let default = if self.ts.eat_sym("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            out.push(Parameter {
                name: id.text,
                ty,
                default,
                span: id.span,
                local,
            });
            if !self.ts.eat_sym(",") {
                break;
            }
        }
        Ok(())
    }

    /// `parameter [type] N = v [, M = v];` in the module body.
    fn parse_param_statement(&mut self, out: &mut Vec<Parameter>) -> ParseResult<()> {
        let local = self.ts.peek().is_kw("localparam");
        if local {
            self.saw_sv = true;
        }
        self.ts.next_tok(); // parameter | localparam
        if self.ts.peek().is_kw("type") {
            self.ts.next_tok();
            let id = self.ts.expect_ident()?;
            out.push(Parameter {
                name: id.text,
                ty: None,
                default: None,
                span: id.span,
                local,
            });
            self.ts.skip_until_sym(&[";"]);
            self.ts.eat_sym(";");
            return Ok(());
        }
        let ty = self.try_parse_type()?;
        loop {
            let id = self.ts.expect_ident()?;
            self.skip_unpacked_dims()?;
            let default = if self.ts.eat_sym("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            out.push(Parameter {
                name: id.text,
                ty: ty.clone(),
                default,
                span: id.span,
                local,
            });
            if !self.ts.eat_sym(",") {
                break;
            }
        }
        self.ts.expect_sym(";")?;
        Ok(())
    }

    /// Skips a type-parameter default (anything up to `,` or `)` at depth 0).
    fn skip_param_default(&mut self) -> ParseResult<()> {
        let mut depth = 0usize;
        loop {
            let t = self.ts.peek().clone();
            if t.is_eof() {
                return Err(ParseError::new("unterminated parameter default", t.span));
            }
            if t.is_sym("(") || t.is_sym("[") || t.is_sym("{") {
                depth += 1;
            } else if t.is_sym(")") {
                if depth == 0 {
                    return Ok(());
                }
                depth -= 1;
            } else if t.is_sym("]") || t.is_sym("}") {
                depth = depth.saturating_sub(1);
            } else if t.is_sym(",") && depth == 0 {
                return Ok(());
            }
            self.ts.next_tok();
        }
    }

    /// Port list inside `( ... )` — handles ANSI, non-ANSI, and mixtures.
    fn parse_port_list(
        &mut self,
        ports: &mut Vec<Port>,
        header_names: &mut Vec<(String, Span)>,
    ) -> ParseResult<()> {
        if self.ts.peek().is_sym(")") {
            return Ok(());
        }
        let mut dir: Option<Direction> = None;
        let mut ty = TypeSpec::scalar("");
        loop {
            let t = self.ts.peek().clone();
            let new_dir = if t.is_kw("input") {
                Some(Direction::In)
            } else if t.is_kw("output") {
                Some(Direction::Out)
            } else if t.is_kw("inout") {
                Some(Direction::InOut)
            } else {
                None
            };
            if let Some(d) = new_dir {
                self.ts.next_tok();
                dir = Some(d);
                ty = self
                    .try_parse_type()?
                    .unwrap_or_else(|| TypeSpec::scalar(""));
                let id = self.ts.expect_ident()?;
                self.skip_unpacked_dims()?;
                if self.ts.eat_sym("=") {
                    self.saw_sv = true;
                    let _ = self.parse_expr()?;
                }
                ports.push(Port {
                    name: id.text,
                    direction: d,
                    ty: ty.clone(),
                    span: id.span,
                });
            } else if t.kind == TokenKind::Ident {
                // Might be: continuation item (name only, inheriting
                // direction/type), a typed continuation, or a non-ANSI name.
                let save = self.ts.save();
                let maybe_ty = self.try_parse_type()?;
                if self.ts.peek().kind != TokenKind::Ident {
                    // It wasn't a type after all (e.g. plain name): rewind.
                    self.ts.restore(save);
                    let id = self.ts.expect_ident()?;
                    self.skip_unpacked_dims()?;
                    match dir {
                        Some(d) => ports.push(Port {
                            name: id.text,
                            direction: d,
                            ty: ty.clone(),
                            span: id.span,
                        }),
                        None => header_names.push((id.text, id.span)),
                    }
                } else {
                    let id = self.ts.expect_ident()?;
                    self.skip_unpacked_dims()?;
                    if self.ts.eat_sym("=") {
                        let _ = self.parse_expr()?;
                    }
                    match dir {
                        Some(d) => {
                            if let Some(nt) = maybe_ty {
                                ty = nt;
                            }
                            ports.push(Port {
                                name: id.text,
                                direction: d,
                                ty: ty.clone(),
                                span: id.span,
                            });
                        }
                        None => header_names.push((id.text, id.span)),
                    }
                }
            } else if t.is_sym(".") {
                // Interface-port or explicit-port syntax `.name(expr)`:
                // record the external name, skip the inner expression.
                self.ts.next_tok();
                let id = self.ts.expect_ident()?;
                if self.ts.eat_sym("(") {
                    self.ts.skip_balanced_parens()?;
                }
                header_names.push((id.text, id.span));
            } else {
                return Err(ParseError::new(
                    format!("unexpected `{t}` in port list"),
                    t.span,
                ));
            }
            if !self.ts.eat_sym(",") {
                break;
            }
        }
        Ok(())
    }

    /// Non-ANSI body declaration: `input [W-1:0] a, b;` etc. Updates or
    /// creates the corresponding ports.
    fn parse_body_port_decl(
        &mut self,
        ports: &mut Vec<Port>,
        header_names: &mut Vec<(String, Span)>,
    ) -> ParseResult<()> {
        let t = self.ts.next_tok();
        let dir = if t.is_kw("input") {
            Direction::In
        } else if t.is_kw("output") {
            Direction::Out
        } else {
            Direction::InOut
        };
        let ty = self
            .try_parse_type()?
            .unwrap_or_else(|| TypeSpec::scalar("wire"));
        loop {
            let id = self.ts.expect_ident()?;
            self.skip_unpacked_dims()?;
            if self.ts.eat_sym("=") {
                self.saw_sv = true;
                let _ = self.parse_expr()?;
            }
            if let Some(p) = ports
                .iter_mut()
                .find(|p| p.name.eq_ignore_ascii_case(&id.text))
            {
                p.direction = dir;
                // Keep the more specific type (body decls carry the range).
                if !ty.ranges.is_empty() || p.ty.name.is_empty() {
                    p.ty = ty.clone();
                }
            } else {
                header_names.retain(|(n, _)| !n.eq_ignore_ascii_case(&id.text));
                ports.push(Port {
                    name: id.text,
                    direction: dir,
                    ty: ty.clone(),
                    span: id.span,
                });
            }
            if !self.ts.eat_sym(",") {
                break;
            }
        }
        self.ts.expect_sym(";")?;
        Ok(())
    }

    /// Attempts to parse a data type (keyword or user-defined name followed
    /// by another identifier), `signed`/`unsigned` qualifiers, and packed
    /// dimensions. Returns `None` when the next tokens are not a type.
    fn try_parse_type(&mut self) -> ParseResult<Option<TypeSpec>> {
        let mut name = String::new();
        let mut signed = false;

        let t = self.ts.peek().clone();
        if t.kind == TokenKind::Ident {
            if TYPE_KEYWORDS.contains(&t.text.as_str()) {
                self.ts.next_tok();
                name = t.text.clone();
                if matches!(
                    name.as_str(),
                    "logic" | "bit" | "byte" | "int" | "longint" | "shortint"
                ) {
                    self.saw_sv = true;
                }
                // `wire logic` style double keyword.
                let t2 = self.ts.peek().clone();
                if t2.kind == TokenKind::Ident && TYPE_KEYWORDS.contains(&t2.text.as_str()) {
                    self.ts.next_tok();
                    name.push(' ');
                    name.push_str(&t2.text);
                }
            } else if t.is_kw("signed") || t.is_kw("unsigned") {
                // handled below
            } else {
                // User-defined type only if followed by an identifier
                // (possibly after a `::` scope).
                let save = self.ts.save();
                let looks_scoped = self.ts.peek_n(1).is_sym("::");
                if looks_scoped {
                    let scoped = self.scoped_name_string()?;
                    if self.ts.peek().kind == TokenKind::Ident {
                        name = scoped;
                        self.saw_sv = true;
                    } else {
                        self.ts.restore(save);
                        return Ok(None);
                    }
                } else if self.ts.peek_n(1).kind == TokenKind::Ident {
                    self.ts.next_tok();
                    name = t.text.clone();
                } else {
                    return Ok(None);
                }
            }
        }

        if self.ts.peek().is_kw("signed") {
            self.ts.next_tok();
            signed = true;
        } else if self.ts.peek().is_kw("unsigned") {
            self.ts.next_tok();
        }

        let mut ranges = Vec::new();
        while self.ts.peek().is_sym("[") {
            self.ts.next_tok();
            let left = self.parse_expr()?;
            self.ts.expect_sym(":")?;
            let right = self.parse_expr()?;
            self.ts.expect_sym("]")?;
            ranges.push(Range {
                left,
                right,
                dir: RangeDir::Downto,
            });
        }

        if name.is_empty() && !signed && ranges.is_empty() {
            return Ok(None);
        }
        Ok(Some(TypeSpec {
            name,
            ranges,
            signed,
        }))
    }

    /// Skips unpacked dimensions after a name: `[3:0]`, `[SIZE]`, `[]`.
    fn skip_unpacked_dims(&mut self) -> ParseResult<()> {
        while self.ts.peek().is_sym("[") {
            self.ts.next_tok();
            let mut depth = 1usize;
            loop {
                let t = self.ts.next_tok();
                if t.is_eof() {
                    return Err(ParseError::new("unbalanced `[`", t.span));
                }
                if t.is_sym("[") {
                    depth += 1;
                } else if t.is_sym("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Expression parser (precedence climbing plus comparison, logic, and
    /// ternary tiers). Comparisons and logical ops become `Call` nodes:
    /// Dovado only needs to carry them symbolically (they appear in
    /// `localparam` defaults like `(DEPTH > 1) ? $clog2(DEPTH) : 1`).
    pub fn parse_expr(&mut self) -> ParseResult<Expr> {
        let cond = self.parse_logic()?;
        if self.ts.eat_sym("?") {
            let then = self.parse_expr()?;
            self.ts.expect_sym(":")?;
            let els = self.parse_expr()?;
            return Ok(Expr::Call("cond".into(), vec![cond, then, els]));
        }
        Ok(cond)
    }

    fn parse_logic(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_cmp()?;
        loop {
            let t = self.ts.peek();
            let op = match t.text.as_str() {
                "&&" | "||" if t.kind == TokenKind::Sym => t.text.clone(),
                _ => break,
            };
            self.ts.next_tok();
            let rhs = self.parse_cmp()?;
            let name = if op == "&&" { "and" } else { "or" };
            lhs = Expr::Call(name.into(), vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_bin(0)?;
        loop {
            let t = self.ts.peek();
            let op = match t.text.as_str() {
                "<" | ">" | "<=" | ">=" | "==" | "!=" | "===" | "!=="
                    if t.kind == TokenKind::Sym =>
                {
                    t.text.clone()
                }
                _ => break,
            };
            self.ts.next_tok();
            let rhs = self.parse_bin(0)?;
            lhs = Expr::Call(format!("cmp{op}"), vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_bin(&mut self, min_prec: u8) -> ParseResult<Expr> {
        use crate::ast::BinOp;
        let mut lhs = self.parse_unary()?;
        loop {
            let t = self.ts.peek();
            let op = match t.text.as_str() {
                "+" if t.kind == TokenKind::Sym => BinOp::Add,
                "-" if t.kind == TokenKind::Sym => BinOp::Sub,
                "*" if t.kind == TokenKind::Sym => BinOp::Mul,
                "/" if t.kind == TokenKind::Sym => BinOp::Div,
                "%" if t.kind == TokenKind::Sym => BinOp::Mod,
                "**" if t.kind == TokenKind::Sym => BinOp::Pow,
                "<<" if t.kind == TokenKind::Sym => BinOp::Shl,
                ">>" if t.kind == TokenKind::Sym => BinOp::Shr,
                _ => break,
            };
            if op.precedence() < min_prec {
                break;
            }
            self.ts.next_tok();
            let rhs = self.parse_bin(op.precedence() + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> ParseResult<Expr> {
        if self.ts.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.ts.eat_sym("+") {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> ParseResult<Expr> {
        let t = self.ts.peek().clone();
        match &t.kind {
            TokenKind::Int(v) => {
                self.ts.next_tok();
                Ok(Expr::Int(*v))
            }
            TokenKind::Real(v) => {
                self.diags.warn("real literal truncated to integer", t.span);
                self.ts.next_tok();
                Ok(Expr::Int(*v as i64))
            }
            TokenKind::Str(s) => {
                self.ts.next_tok();
                Ok(Expr::Str(s.clone()))
            }
            TokenKind::Sym if t.text == "(" => {
                self.ts.next_tok();
                let e = self.parse_expr()?;
                self.ts.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Sym if t.text == "{" => {
                // Concatenation / replication — skip balanced, keep a marker.
                self.ts.next_tok();
                let mut depth = 1usize;
                loop {
                    let t2 = self.ts.next_tok();
                    if t2.is_eof() {
                        return Err(ParseError::new("unbalanced `{`", t2.span));
                    }
                    if t2.is_sym("{") {
                        depth += 1;
                    } else if t2.is_sym("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                Ok(Expr::Str("<concat>".into()))
            }
            TokenKind::Sym if t.text == "'{" => {
                // Assignment pattern.
                self.ts.next_tok();
                let mut depth = 1usize;
                loop {
                    let t2 = self.ts.next_tok();
                    if t2.is_eof() {
                        return Err(ParseError::new("unbalanced `'{`", t2.span));
                    }
                    if t2.is_sym("{") || t2.is_sym("'{") {
                        depth += 1;
                    } else if t2.is_sym("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                Ok(Expr::Str("<pattern>".into()))
            }
            TokenKind::Ident => {
                self.ts.next_tok();
                let mut name = t.text.clone();
                while self.ts.eat_sym("::") {
                    let part = self.ts.expect_ident()?;
                    name.push_str("::");
                    name.push_str(&part.text);
                }
                if self.ts.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.ts.peek().is_sym(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.ts.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.ts.expect_sym(")")?;
                    return Ok(Expr::Call(name, args));
                }
                // Bit/part select after a name: skip, keep the name.
                while self.ts.peek().is_sym("[") {
                    self.skip_unpacked_dims()?;
                }
                Ok(Expr::Ident(name))
            }
            _ => Err(ParseError::new(
                format!("expected expression, found `{t}`"),
                t.span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::lexer::lex;
    use std::collections::BTreeMap;

    fn parse_ok(src: &str) -> SourceFile {
        let (f, d) = Parser::new(lex(src).unwrap()).parse_file().unwrap();
        assert!(
            !d.has_errors(),
            "diagnostics: {:?}",
            d.iter().collect::<Vec<_>>()
        );
        f
    }

    const ANSI_FIFO: &str = r#"
// Synchronous FIFO in the cv32e40p style.
module fifo #(
    parameter int unsigned DEPTH = 8,
    parameter int unsigned DATA_WIDTH = 32,
    parameter bit FALL_THROUGH = 1'b0,
    localparam int unsigned ADDR_DEPTH = (DEPTH > 1) ? $clog2(DEPTH) : 1
) (
    input  logic                  clk_i,
    input  logic                  rst_ni,
    input  logic [DATA_WIDTH-1:0] data_i,
    input  logic                  push_i,
    output logic [DATA_WIDTH-1:0] data_o,
    output logic                  pop_o,
    output logic                  full_o,
    output logic                  empty_o
);
  logic [ADDR_DEPTH-1:0] rd_ptr, wr_ptr;
  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) rd_ptr <= '0;
  end
endmodule : fifo
"#;

    #[test]
    fn ansi_module_parses() {
        let f = parse_ok(ANSI_FIFO);
        assert_eq!(f.modules.len(), 1);
        let m = &f.modules[0];
        assert_eq!(m.name, "fifo");
        assert_eq!(m.language, Language::SystemVerilog);
        assert_eq!(m.parameters.len(), 4);
        assert_eq!(m.ports.len(), 8);
    }

    #[test]
    fn localparam_excluded_from_free() {
        let f = parse_ok(ANSI_FIFO);
        let m = &f.modules[0];
        assert_eq!(m.free_parameters().count(), 3);
        assert!(m.parameter("ADDR_DEPTH").unwrap().local);
    }

    #[test]
    fn parameter_defaults_evaluate() {
        let f = parse_ok(ANSI_FIFO);
        let m = &f.modules[0];
        assert_eq!(m.parameter("DEPTH").unwrap().const_default(), Some(8));
        assert_eq!(m.parameter("DATA_WIDTH").unwrap().const_default(), Some(32));
        assert_eq!(
            m.parameter("FALL_THROUGH").unwrap().const_default(),
            Some(0)
        );
    }

    #[test]
    fn port_widths_symbolic() {
        let f = parse_ok(ANSI_FIFO);
        let m = &f.modules[0];
        let mut env = BTreeMap::new();
        env.insert("DATA_WIDTH".to_string(), 64i64);
        assert_eq!(m.port("data_i").unwrap().ty.bit_width(&env).unwrap(), 64);
        assert_eq!(m.port("clk_i").unwrap().ty.bit_width(&env).unwrap(), 1);
    }

    #[test]
    fn clock_found() {
        let f = parse_ok(ANSI_FIFO);
        assert_eq!(f.modules[0].clock_port().unwrap().name, "clk_i");
    }

    const NON_ANSI: &str = r#"
module adder(a, b, cin, sum, cout);
  parameter WIDTH = 8;
  input  [WIDTH-1:0] a, b;
  input              cin;
  output [WIDTH:0]   sum;
  output             cout;
  assign {cout, sum} = a + b + cin;
endmodule
"#;

    #[test]
    fn non_ansi_module_parses() {
        let f = parse_ok(NON_ANSI);
        let m = &f.modules[0];
        assert_eq!(m.name, "adder");
        assert_eq!(m.language, Language::Verilog);
        assert_eq!(m.parameters.len(), 1);
        assert_eq!(m.ports.len(), 5);
        assert_eq!(m.port("a").unwrap().direction, Direction::In);
        assert_eq!(m.port("sum").unwrap().direction, Direction::Out);
    }

    #[test]
    fn non_ansi_widths_resolved_from_body() {
        let f = parse_ok(NON_ANSI);
        let m = &f.modules[0];
        let mut env = BTreeMap::new();
        env.insert("WIDTH".to_string(), 8i64);
        assert_eq!(m.port("a").unwrap().ty.bit_width(&env).unwrap(), 8);
        assert_eq!(m.port("sum").unwrap().ty.bit_width(&env).unwrap(), 9);
    }

    #[test]
    fn ternary_default_parses() {
        let f = parse_ok(ANSI_FIFO);
        let p = f.modules[0].parameter("ADDR_DEPTH").unwrap();
        assert!(matches!(&p.default, Some(Expr::Call(n, _)) if n == "cond"));
    }

    #[test]
    fn function_inputs_not_ports() {
        let src = r#"
module m(input logic clk);
  function automatic logic [3:0] f;
    input [3:0] x;
    f = x + 1;
  endfunction
endmodule
"#;
        let f = parse_ok(src);
        assert_eq!(f.modules[0].ports.len(), 1);
    }

    #[test]
    fn nested_module_skipped() {
        let src = r#"
module outer(input wire clk);
  module inner(input wire c2); endmodule
endmodule
"#;
        let f = parse_ok(src);
        assert_eq!(f.modules.len(), 1);
        assert_eq!(f.modules[0].name, "outer");
    }

    #[test]
    fn package_and_import_recorded() {
        let src = r#"
package my_pkg;
  localparam int W = 4;
endpackage : my_pkg
import my_pkg::*;
module m(input logic clk);
endmodule
"#;
        let f = parse_ok(src);
        assert_eq!(f.packages.len(), 1);
        assert_eq!(f.packages[0].name, "my_pkg");
        assert!(f
            .context
            .iter()
            .any(|c| matches!(c, ContextClause::Import(i) if i == "my_pkg::*")));
    }

    #[test]
    fn include_recorded() {
        let f = parse_ok("`include \"defs.vh\"\nmodule m(input wire c); endmodule");
        assert!(f
            .context
            .iter()
            .any(|c| matches!(c, ContextClause::Include(i) if i == "defs.vh")));
    }

    #[test]
    fn direction_inheritance_in_ansi_list() {
        let src = "module m(input logic a, b, output logic q, r); endmodule";
        let f = parse_ok(src);
        let m = &f.modules[0];
        assert_eq!(m.port("a").unwrap().direction, Direction::In);
        assert_eq!(m.port("b").unwrap().direction, Direction::In);
        assert_eq!(m.port("q").unwrap().direction, Direction::Out);
        assert_eq!(m.port("r").unwrap().direction, Direction::Out);
    }

    #[test]
    fn type_inheritance_keeps_ranges() {
        let src = "module m(input logic [7:0] a, b); endmodule";
        let f = parse_ok(src);
        let m = &f.modules[0];
        let env = BTreeMap::new();
        assert_eq!(m.port("b").unwrap().ty.bit_width(&env).unwrap(), 8);
    }

    #[test]
    fn parameter_without_keyword_in_header() {
        let src = "module m #(W = 4, D = 16)(input wire clk); endmodule";
        let f = parse_ok(src);
        let m = &f.modules[0];
        assert_eq!(m.parameters.len(), 2);
        assert_eq!(m.parameter("D").unwrap().const_default(), Some(16));
    }

    #[test]
    fn body_parameters_found() {
        let src =
            "module m(input wire clk); parameter DEPTH = 32; localparam L = DEPTH * 2; endmodule";
        let f = parse_ok(src);
        let m = &f.modules[0];
        assert_eq!(m.parameters.len(), 2);
        assert!(!m.parameter("DEPTH").unwrap().local);
        assert!(m.parameter("L").unwrap().local);
    }

    #[test]
    fn empty_port_list() {
        let f = parse_ok("module tb(); endmodule");
        assert!(f.modules[0].ports.is_empty());
        let f2 = parse_ok("module tb2; endmodule");
        assert!(f2.modules[0].ports.is_empty());
    }

    #[test]
    fn signed_type() {
        let f = parse_ok("module m(input signed [7:0] x); endmodule");
        assert!(f.modules[0].port("x").unwrap().ty.signed);
    }

    #[test]
    fn two_modules() {
        let f = parse_ok("module a(input wire c); endmodule module b(input wire c); endmodule");
        assert_eq!(f.modules.len(), 2);
    }

    #[test]
    fn missing_endmodule_is_fatal() {
        let r = Parser::new(lex("module m(input wire c);").unwrap()).parse_file();
        assert!(r.is_err());
    }

    #[test]
    fn clog2_width_evaluates() {
        let src = "module m #(parameter Q = 64)(input wire [$clog2(Q)-1:0] sel); endmodule";
        let f = parse_ok(src);
        let mut env = BTreeMap::new();
        env.insert("Q".to_string(), 64i64);
        assert_eq!(
            f.modules[0]
                .port("sel")
                .unwrap()
                .ty
                .bit_width(&env)
                .unwrap(),
            6
        );
    }

    #[test]
    fn user_defined_type_port() {
        let src = "module m(input my_pkg::req_t req, input logic clk); endmodule";
        let f = parse_ok(src);
        let m = &f.modules[0];
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.port("req").unwrap().ty.name, "my_pkg::req_t");
    }

    #[test]
    fn shift_and_pow_defaults() {
        let src = "module m #(parameter A = 1 << 4, parameter B = 2 ** 5)(input wire c); endmodule";
        let f = parse_ok(src);
        let m = &f.modules[0];
        assert_eq!(m.parameter("A").unwrap().const_default(), Some(16));
        assert_eq!(m.parameter("B").unwrap().const_default(), Some(32));
    }

    #[test]
    fn concat_default_tolerated() {
        let src = "module m #(parameter [15:0] MAGIC = {8'hAB, 8'hCD})(input wire c); endmodule";
        let f = parse_ok(src);
        assert_eq!(f.modules[0].parameters.len(), 1);
    }

    #[test]
    fn instantiation_with_params_collected() {
        let src = r#"
module box(input wire clk);
  fifo #(
      .DEPTH(64),
      .DATA_WIDTH(32)
  ) BOXED (
      .clk_i(clk),
      .rst_ni(1'b1)
  );
endmodule
"#;
        let f = parse_ok(src);
        assert_eq!(f.instantiations.len(), 1);
        let i = &f.instantiations[0];
        assert_eq!(i.label, "BOXED");
        assert_eq!(i.target, "fifo");
        assert_eq!(i.parent, "box");
        assert_eq!(i.generics.len(), 2);
        assert_eq!(i.generics[0], ("DEPTH".to_string(), Expr::Int(64)));
    }

    #[test]
    fn instantiation_without_params() {
        let src = "module top(input wire clk); sub u_sub (.clk(clk)); endmodule";
        let f = parse_ok(src);
        assert_eq!(f.instantiations.len(), 1);
        assert_eq!(f.instantiations[0].target, "sub");
        assert!(f.instantiations[0].generics.is_empty());
    }

    #[test]
    fn multiple_instances_one_statement() {
        let src = "module top(input wire clk); buf_x b1 (clk), b2 (clk); endmodule";
        let f = parse_ok(src);
        assert_eq!(f.instantiations.len(), 2);
        assert_eq!(f.instantiations[1].label, "b2");
    }

    #[test]
    fn assignments_not_mistaken_for_instantiations() {
        let src = r#"
module m(input wire clk, output reg [3:0] q);
  always @(posedge clk) begin
    q <= q + 1;
  end
  assign w = f(q);
endmodule
"#;
        let f = parse_ok(src);
        assert!(f.instantiations.is_empty());
    }

    #[test]
    fn unpacked_dims_skipped() {
        let src = "module m(input logic arr [0:3], input logic clk); endmodule";
        let f = parse_ok(src);
        assert_eq!(f.modules[0].ports.len(), 2);
    }
}
