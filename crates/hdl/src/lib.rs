//! # dovado-hdl
//!
//! HDL interface extraction for the Dovado design-space-exploration
//! framework: hand-written lexers and recursive-descent parsers for the
//! *declaration* subset of VHDL-2008 and Verilog/SystemVerilog.
//!
//! The paper's parsing step (Section III-A1) extracts "module name,
//! parameters declaration, ports/signal interface declaration" — the inputs
//! needed by the boxing and script-generation steps. Both languages are
//! regular in their declaration sections, but "different standards present a
//! wide variety of declaration styles", so these parsers accept ANSI and
//! non-ANSI Verilog headers, all VHDL entity `end` spellings, shared
//! declarations, based literals, and symbolic width expressions.
//!
//! Beyond single buffers, the [`catalog`] module scales the front-end to
//! whole repositories: it identifies primary/secondary design units across a
//! source tree, orders files topologically by their dependency graph, and
//! infers the top-level module from the graph.
//!
//! ## Example
//!
//! ```
//! use dovado_hdl::{parse_source, Language};
//!
//! let src = "module blinker #(parameter DIV = 1000)(input wire clk, output reg led); endmodule";
//! let (file, diags) = parse_source(Language::Verilog, src).unwrap();
//! assert!(!diags.has_errors());
//! let m = file.module("blinker").unwrap();
//! assert_eq!(m.parameters[0].name, "DIV");
//! assert_eq!(m.clock_port().unwrap().name, "clk");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod lexer;
pub mod span;
pub mod verilog;
pub mod vhdl;

pub use ast::{
    clog2, BinOp, ConfigurationDecl, ContextClause, Direction, EvalError, Expr, Instantiation,
    Language, ModuleInterface, PackageDecl, Parameter, Port, Range, RangeDir, SourceFile, TypeSpec,
};
pub use catalog::{CatalogError, CatalogSource, CatalogedFile, DesignUnit, SourceCatalog};
pub use error::{Diagnostic, Diagnostics, ParseError, ParseResult, Severity};
pub use span::Span;

/// Parses a source buffer in the given language.
///
/// `Language::Verilog` and `Language::SystemVerilog` share a front-end (the
/// parser upgrades the reported language when SV-only constructs appear).
pub fn parse_source(language: Language, source: &str) -> ParseResult<(SourceFile, Diagnostics)> {
    match language {
        Language::Vhdl => vhdl::parse(source),
        Language::Verilog | Language::SystemVerilog => verilog::parse(source),
    }
}

/// Parses a source buffer, guessing the language from a file name.
///
/// Returns `None` if the extension is not recognized.
pub fn parse_named(
    file_name: &str,
    source: &str,
) -> Option<ParseResult<(SourceFile, Diagnostics)>> {
    let ext = file_name.rsplit('.').next()?;
    let lang = Language::from_extension(ext)?;
    Some(parse_source(lang, source))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_vhdl() {
        let (f, _) = parse_source(Language::Vhdl, "entity e is end e;").unwrap();
        assert_eq!(f.modules[0].language, Language::Vhdl);
    }

    #[test]
    fn dispatches_verilog() {
        let (f, _) = parse_source(Language::Verilog, "module m(input wire c); endmodule").unwrap();
        assert_eq!(f.modules[0].language, Language::Verilog);
    }

    #[test]
    fn systemverilog_upgrade() {
        let (f, _) = parse_source(Language::Verilog, "module m(input logic c); endmodule").unwrap();
        assert_eq!(f.modules[0].language, Language::SystemVerilog);
    }

    #[test]
    fn parse_named_by_extension() {
        assert!(parse_named("core.vhd", "entity e is end e;")
            .unwrap()
            .is_ok());
        assert!(parse_named("core.sv", "module m; endmodule")
            .unwrap()
            .is_ok());
        assert!(parse_named("core.txt", "x").is_none());
        assert!(parse_named("noext", "x").is_none());
    }
}
