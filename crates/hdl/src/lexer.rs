//! Language-independent lexing infrastructure.
//!
//! Both HDL front-ends produce the same [`Token`] stream shape; only comment
//! syntax, literal formats, and identifier rules differ, and those live in
//! the per-language lexers ([`crate::vhdl::lexer`], [`crate::verilog::lexer`]).

use crate::error::{ParseError, ParseResult};
use crate::span::Span;
use std::fmt;

/// What kind of token this is.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keyword-ness is decided by the parsers).
    Ident,
    /// Integer literal, already decoded to a value.
    Int(i64),
    /// Real literal; Dovado only needs these to skip over them.
    Real(f64),
    /// String literal with quotes stripped.
    Str(String),
    /// Character literal (VHDL `'0'`) with quotes stripped.
    Char(char),
    /// Punctuation or operator; the text field holds the lexeme (`"("`,
    /// `"**"`, `"<="`, ...).
    Sym,
    /// End of input.
    Eof,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The lexeme as written (identifiers keep their original case).
    pub text: String,
    /// Source location.
    pub span: Span,
}

impl Token {
    /// End-of-file token at the given span.
    pub fn eof(span: Span) -> Self {
        Token {
            kind: TokenKind::Eof,
            text: String::new(),
            span,
        }
    }

    /// True if this token is an identifier equal to `kw` ignoring case.
    pub fn is_kw_ci(&self, kw: &str) -> bool {
        self.kind == TokenKind::Ident && self.text.eq_ignore_ascii_case(kw)
    }

    /// True if this token is an identifier exactly equal to `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == kw
    }

    /// True if this token is the given punctuation/operator.
    pub fn is_sym(&self, sym: &str) -> bool {
        self.kind == TokenKind::Sym && self.text == sym
    }

    /// True if this is the end-of-file marker.
    pub fn is_eof(&self) -> bool {
        self.kind == TokenKind::Eof
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TokenKind::Eof => write!(f, "<eof>"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            _ => write!(f, "{}", self.text),
        }
    }
}

/// A character cursor with byte-offset and line/column tracking.
pub struct Cursor<'a> {
    src: &'a str,
    /// Byte offset of the next unread character.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at the start of `src`.
    pub fn new(src: &'a str) -> Self {
        Cursor {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// The full source text.
    pub fn source(&self) -> &'a str {
        self.src
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when all input has been consumed.
    pub fn at_eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// Peeks at the next character without consuming it.
    pub fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Peeks at the character after the next one.
    pub fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    /// Consumes and returns the next character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes the next character if it equals `c`.
    pub fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consumes characters while `pred` holds; returns the consumed slice.
    pub fn eat_while(&mut self, mut pred: impl FnMut(char) -> bool) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
        &self.src[start..self.pos]
    }

    /// Skips to (and past) the end of the current line.
    pub fn skip_line(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    /// Marker for [`Cursor::span_from`].
    pub fn mark(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    /// Builds the span from a previously taken [`Cursor::mark`] to the
    /// current position.
    pub fn span_from(&self, mark: (usize, u32, u32)) -> Span {
        Span::new(mark.0, self.pos, mark.1, mark.2)
    }

    /// Span of zero width at the current position (for EOF tokens).
    pub fn here(&self) -> Span {
        Span::new(self.pos, self.pos, self.line, self.col)
    }
}

/// A finished token stream with parser-friendly accessors.
#[derive(Debug, Clone)]
pub struct TokenStream {
    tokens: Vec<Token>,
    idx: usize,
}

impl TokenStream {
    /// Wraps a token vector; appends an EOF token if missing.
    pub fn new(mut tokens: Vec<Token>) -> Self {
        if tokens.last().is_none_or(|t| !t.is_eof()) {
            let span = tokens.last().map(|t| t.span).unwrap_or_default();
            tokens.push(Token::eof(span));
        }
        TokenStream { tokens, idx: 0 }
    }

    /// The token about to be consumed.
    pub fn peek(&self) -> &Token {
        &self.tokens[self.idx.min(self.tokens.len() - 1)]
    }

    /// Looks `n` tokens ahead (0 = same as [`TokenStream::peek`]).
    pub fn peek_n(&self, n: usize) -> &Token {
        let i = (self.idx + n).min(self.tokens.len() - 1);
        &self.tokens[i]
    }

    /// Consumes and returns the next token.
    pub fn next_tok(&mut self) -> Token {
        let t = self.tokens[self.idx.min(self.tokens.len() - 1)].clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        t
    }

    /// Current position (for backtracking).
    pub fn save(&self) -> usize {
        self.idx
    }

    /// Restores a position previously returned by [`TokenStream::save`].
    pub fn restore(&mut self, idx: usize) {
        self.idx = idx;
    }

    /// True when only the EOF token remains.
    pub fn at_eof(&self) -> bool {
        self.peek().is_eof()
    }

    /// Consumes the next token if it is the symbol `sym`.
    pub fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek().is_sym(sym) {
            self.next_tok();
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it is the keyword `kw` (case-insensitive).
    pub fn eat_kw_ci(&mut self, kw: &str) -> bool {
        if self.peek().is_kw_ci(kw) {
            self.next_tok();
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it is exactly the keyword `kw`.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.next_tok();
            true
        } else {
            false
        }
    }

    /// Requires the symbol `sym` next, consuming it.
    pub fn expect_sym(&mut self, sym: &str) -> ParseResult<Token> {
        if self.peek().is_sym(sym) {
            Ok(self.next_tok())
        } else {
            Err(ParseError::new(
                format!("expected `{sym}`, found `{}`", self.peek()),
                self.peek().span,
            ))
        }
    }

    /// Requires an identifier next, consuming and returning it.
    pub fn expect_ident(&mut self) -> ParseResult<Token> {
        if self.peek().kind == TokenKind::Ident {
            Ok(self.next_tok())
        } else {
            Err(ParseError::new(
                format!("expected identifier, found `{}`", self.peek()),
                self.peek().span,
            ))
        }
    }

    /// Requires the case-insensitive keyword `kw` next, consuming it.
    pub fn expect_kw_ci(&mut self, kw: &str) -> ParseResult<Token> {
        if self.peek().is_kw_ci(kw) {
            Ok(self.next_tok())
        } else {
            Err(ParseError::new(
                format!("expected keyword `{kw}`, found `{}`", self.peek()),
                self.peek().span,
            ))
        }
    }

    /// Skips tokens until one of `syms` (or EOF) is the next token.
    /// Returns the matched symbol text, if any.
    ///
    /// Used for error recovery and for skipping uninteresting bodies.
    pub fn skip_until_sym(&mut self, syms: &[&str]) -> Option<String> {
        loop {
            let t = self.peek();
            if t.is_eof() {
                return None;
            }
            if t.kind == TokenKind::Sym && syms.contains(&t.text.as_str()) {
                return Some(t.text.clone());
            }
            self.next_tok();
        }
    }

    /// Skips a balanced parenthesised region assuming the opening `(` has
    /// already been consumed. Respects nesting.
    pub fn skip_balanced_parens(&mut self) -> ParseResult<()> {
        let mut depth = 1usize;
        loop {
            let t = self.next_tok();
            if t.is_eof() {
                return Err(ParseError::new("unbalanced parentheses", t.span));
            }
            if t.is_sym("(") {
                depth += 1;
            } else if t.is_sym(")") {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            }
        }
    }

    /// Total number of tokens (including EOF).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the stream contains only the EOF token.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 1
    }
}

/// Shared helper: decode a decimal integer literal, tolerating `_`
/// separators (legal in both languages).
pub fn parse_decimal(text: &str) -> Option<i64> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    clean.parse::<i64>().ok()
}

/// Shared helper: decode digits of the given radix, tolerating `_`.
/// Verilog `x`/`z`/`?` digits decode as 0 (Dovado only needs a value to
/// carry defaults around, and x/z bits are "unknown anyway").
pub fn parse_radix(text: &str, radix: u32) -> Option<i64> {
    let mut value: i64 = 0;
    let mut any = false;
    for c in text.chars() {
        if c == '_' {
            continue;
        }
        let d = if matches!(c, 'x' | 'X' | 'z' | 'Z' | '?') {
            0
        } else {
            c.to_digit(radix)? as i64
        };
        value = value.checked_mul(radix as i64)?.checked_add(d)?;
        any = true;
    }
    if any {
        Some(value)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(kind: TokenKind, text: &str) -> Token {
        Token {
            kind,
            text: text.into(),
            span: Span::dummy(),
        }
    }

    #[test]
    fn cursor_tracks_lines_and_cols() {
        let mut c = Cursor::new("ab\ncd");
        assert_eq!(c.bump(), Some('a'));
        assert_eq!(c.bump(), Some('b'));
        assert_eq!(c.bump(), Some('\n'));
        let m = c.mark();
        assert_eq!(m.1, 2); // line 2
        assert_eq!(m.2, 1); // col 1
        assert_eq!(c.bump(), Some('c'));
        let sp = c.span_from(m);
        assert_eq!(sp.slice(c.source()), "c");
    }

    #[test]
    fn cursor_eat_while() {
        let mut c = Cursor::new("abc123");
        let s = c.eat_while(|ch| ch.is_ascii_alphabetic());
        assert_eq!(s, "abc");
        assert_eq!(c.peek(), Some('1'));
    }

    #[test]
    fn cursor_peek2() {
        let c = Cursor::new("xy");
        assert_eq!(c.peek(), Some('x'));
        assert_eq!(c.peek2(), Some('y'));
    }

    #[test]
    fn cursor_skip_line() {
        let mut c = Cursor::new("-- comment\nnext");
        c.skip_line();
        assert_eq!(c.peek(), Some('n'));
    }

    #[test]
    fn cursor_handles_utf8() {
        let mut c = Cursor::new("é9");
        assert_eq!(c.bump(), Some('é'));
        assert_eq!(c.peek(), Some('9'));
    }

    #[test]
    fn stream_appends_eof() {
        let ts = TokenStream::new(vec![tok(TokenKind::Ident, "a")]);
        assert_eq!(ts.len(), 2);
        assert!(!ts.at_eof());
    }

    #[test]
    fn stream_peek_next_save_restore() {
        let mut ts = TokenStream::new(vec![tok(TokenKind::Ident, "a"), tok(TokenKind::Sym, "(")]);
        let save = ts.save();
        assert_eq!(ts.next_tok().text, "a");
        assert!(ts.peek().is_sym("("));
        ts.restore(save);
        assert_eq!(ts.peek().text, "a");
    }

    #[test]
    fn stream_next_past_eof_is_safe() {
        let mut ts = TokenStream::new(vec![]);
        for _ in 0..5 {
            assert!(ts.next_tok().is_eof());
        }
    }

    #[test]
    fn stream_expect_and_eat() {
        let mut ts = TokenStream::new(vec![
            tok(TokenKind::Ident, "Entity"),
            tok(TokenKind::Ident, "box"),
            tok(TokenKind::Sym, "("),
            tok(TokenKind::Sym, ")"),
        ]);
        assert!(ts.eat_kw_ci("ENTITY"));
        let id = ts.expect_ident().unwrap();
        assert_eq!(id.text, "box");
        assert!(ts.expect_sym("(").is_ok());
        assert!(ts.expect_sym("(").is_err());
        assert!(ts.eat_sym(")"));
    }

    #[test]
    fn stream_kw_exact_vs_ci() {
        let mut ts = TokenStream::new(vec![tok(TokenKind::Ident, "Module")]);
        assert!(!ts.eat_kw("module"));
        assert!(ts.eat_kw_ci("module"));
    }

    #[test]
    fn skip_until_sym_finds_target() {
        let mut ts = TokenStream::new(vec![
            tok(TokenKind::Ident, "x"),
            tok(TokenKind::Int(3), "3"),
            tok(TokenKind::Sym, ";"),
            tok(TokenKind::Ident, "rest"),
        ]);
        assert_eq!(ts.skip_until_sym(&[";"]).as_deref(), Some(";"));
        assert!(ts.peek().is_sym(";"));
    }

    #[test]
    fn skip_until_sym_eof_returns_none() {
        let mut ts = TokenStream::new(vec![tok(TokenKind::Ident, "x")]);
        assert_eq!(ts.skip_until_sym(&[";"]), None);
    }

    #[test]
    fn skip_balanced_parens_nested() {
        let mut ts = TokenStream::new(vec![
            tok(TokenKind::Sym, "("),
            tok(TokenKind::Ident, "a"),
            tok(TokenKind::Sym, ")"),
            tok(TokenKind::Sym, ")"),
            tok(TokenKind::Ident, "after"),
        ]);
        // Outer "(" assumed consumed; stream starts inside.
        ts.skip_balanced_parens().unwrap();
        assert_eq!(ts.peek().text, "after");
    }

    #[test]
    fn skip_balanced_parens_unbalanced_errors() {
        let mut ts = TokenStream::new(vec![tok(TokenKind::Sym, "("), tok(TokenKind::Ident, "a")]);
        assert!(ts.skip_balanced_parens().is_err());
    }

    #[test]
    fn decimal_with_underscores() {
        assert_eq!(parse_decimal("1_000_000"), Some(1_000_000));
        assert_eq!(parse_decimal("42"), Some(42));
        assert_eq!(parse_decimal("x"), None);
    }

    #[test]
    fn radix_decoding() {
        assert_eq!(parse_radix("ff", 16), Some(255));
        assert_eq!(parse_radix("1010", 2), Some(10));
        assert_eq!(parse_radix("777", 8), Some(511));
        assert_eq!(parse_radix("1x0z", 2), Some(8)); // x/z decode as 0
        assert_eq!(parse_radix("", 16), None);
        assert_eq!(parse_radix("g", 16), None);
    }
}
