//! Repository-scale design-unit catalog: walk a source tree, identify the
//! primary and secondary design units in every file, and build a unit-level
//! dependency graph with a deterministic topological compile order.
//!
//! The paper pitches Dovado as point-and-explore DSE over a user's RTL, but
//! real RTL is a *repository*: entities in one file, architectures in
//! another, package bodies elsewhere, Verilog files holding several modules.
//! Following orbit's `VHDLSymbol` design, each file is decomposed into
//! [`DesignUnit`]s — primary units (entities/modules, packages,
//! configurations) own a name; secondary units (architectures, package
//! bodies) only complete a primary unit — and the catalog wires four kinds
//! of dependency edges between them:
//!
//! * architecture → its entity,
//! * package body → its package,
//! * configuration → its entity,
//! * instantiation (inside a module or an architecture) → the instantiated
//!   module, and `use`/`import` clauses → the named package.
//!
//! Projected onto files, those edges give a compile order (Kahn's algorithm
//! with lexicographic-path tie-breaking, so the order is a pure function of
//! the file *set*, never of discovery order), cycle detection, and
//! graph-based top inference: the unique module no other unit instantiates.
//!
//! The catalog also computes a 128-bit content fingerprint over every file's
//! path, language, library and text plus the unit/edge structure — the EDA
//! layer folds it into the evaluation-store key so an edit to *any* file a
//! design depends on (a package body, say) correctly invalidates stored
//! results.

use crate::ast::{Language, SourceFile};
use crate::error::Diagnostics;
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// One design unit identified in a cataloged file, orbit-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignUnit {
    /// Primary: a Verilog/SystemVerilog module or VHDL entity.
    Module {
        /// Module/entity name.
        name: String,
    },
    /// Primary: a VHDL or SystemVerilog package declaration.
    Package {
        /// Package name.
        name: String,
    },
    /// Primary: a VHDL configuration of an entity.
    Configuration {
        /// Configuration name.
        name: String,
        /// The configured entity.
        entity: String,
    },
    /// Secondary: a VHDL architecture completing an entity.
    Architecture {
        /// Architecture name.
        name: String,
        /// The entity it implements.
        entity: String,
    },
    /// Secondary: a VHDL package body completing a package. A body has no
    /// name of its own — only the package it completes.
    PackageBody {
        /// The package this body completes.
        package: String,
    },
}

impl DesignUnit {
    /// The unit's own identifier — `None` for a package body, which is
    /// only addressable through the package it completes.
    pub fn as_iden(&self) -> Option<&str> {
        match self {
            DesignUnit::Module { name }
            | DesignUnit::Package { name }
            | DesignUnit::Configuration { name, .. }
            | DesignUnit::Architecture { name, .. } => Some(name),
            DesignUnit::PackageBody { .. } => None,
        }
    }

    /// Whether this is a primary design unit (owns a library-level name).
    pub fn is_primary(&self) -> bool {
        matches!(
            self,
            DesignUnit::Module { .. }
                | DesignUnit::Package { .. }
                | DesignUnit::Configuration { .. }
        )
    }
}

impl fmt::Display for DesignUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignUnit::Module { name } => write!(f, "module {name}"),
            DesignUnit::Package { name } => write!(f, "package {name}"),
            DesignUnit::Configuration { name, entity } => {
                write!(f, "configuration {name} of {entity}")
            }
            DesignUnit::Architecture { name, entity } => {
                write!(f, "architecture {name} of {entity}")
            }
            DesignUnit::PackageBody { package } => write!(f, "package body of {package}"),
        }
    }
}

/// One raw source handed to the catalog: a path, how to parse it, and the
/// full text.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSource {
    /// Path (relative within the project tree, or any stable identifier).
    pub path: String,
    /// Language to parse it as.
    pub language: Language,
    /// VHDL library it compiles into (`None` = `work`).
    pub library: Option<String>,
    /// Full source text.
    pub text: String,
}

impl CatalogSource {
    /// A `work`-library source.
    pub fn new(path: impl Into<String>, language: Language, text: impl Into<String>) -> Self {
        CatalogSource {
            path: path.into(),
            language,
            library: None,
            text: text.into(),
        }
    }
}

/// One cataloged file: its parse result, extracted units, and diagnostics
/// (each stamped with the file path).
#[derive(Debug, Clone)]
pub struct CatalogedFile {
    /// The file's path as handed in.
    pub path: String,
    /// Language it was parsed as.
    pub language: Language,
    /// VHDL library (`None` = `work`).
    pub library: Option<String>,
    /// Full text (empty for structure-only catalogs built from
    /// pre-parsed sources).
    pub text: String,
    /// The parse result.
    pub file: SourceFile,
    /// The design units the file declares, in declaration order.
    pub units: Vec<DesignUnit>,
    /// Parser diagnostics, stamped with this file's path.
    pub diagnostics: Diagnostics,
}

/// Errors building or querying a catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// A file failed to parse (message already names the file).
    Parse(String),
    /// Reading the source tree failed.
    Io {
        /// The offending path.
        path: String,
        /// The OS error.
        message: String,
    },
    /// A file's extension is not a recognized HDL language.
    UnknownLanguage(String),
    /// The dependency graph has a cycle; the listed files (sorted) could
    /// not be ordered.
    Cycle(Vec<String>),
    /// No module is free of instantiations — nothing can be the top.
    NoTop,
    /// Several modules are never instantiated; candidates sorted by name.
    AmbiguousTop(Vec<String>),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Parse(m) => write!(f, "{m}"),
            CatalogError::Io { path, message } => write!(f, "{path}: {message}"),
            CatalogError::UnknownLanguage(p) => {
                write!(f, "{p}: unknown HDL extension (want .vhd/.vhdl/.v/.sv)")
            }
            CatalogError::Cycle(files) => write!(
                f,
                "dependency cycle among source files: {}",
                files.join(", ")
            ),
            CatalogError::NoTop => write!(f, "no top-level module found"),
            CatalogError::AmbiguousTop(names) => write!(
                f,
                "ambiguous top module — {} candidates, pick one with --top: {}",
                names.len(),
                names.join(", ")
            ),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A cataloged source tree: files sorted by path, the unit-level dependency
/// graph projected to file-level edges, a deterministic topological compile
/// order, and a content fingerprint.
#[derive(Debug, Clone)]
pub struct SourceCatalog {
    files: Vec<CatalogedFile>,
    /// Per-file dependency sets (indices into `files`), self-edges removed.
    deps: Vec<BTreeSet<usize>>,
    /// Topological compile order (indices into `files`).
    order: Vec<usize>,
    /// 128-bit content fingerprint, 32 hex chars.
    fingerprint: String,
}

impl SourceCatalog {
    /// Catalogs in-memory sources: parses each, extracts units, builds the
    /// dependency graph and compile order. Input order is irrelevant — the
    /// catalog sorts by path first, so the result is a pure function of
    /// the file *set*.
    pub fn from_sources(sources: Vec<CatalogSource>) -> Result<SourceCatalog, CatalogError> {
        let mut parsed = Vec::with_capacity(sources.len());
        for s in sources {
            let (file, mut diags) = crate::parse_source(s.language, &s.text)
                .map_err(|e| CatalogError::Parse(e.in_file(&s.path).to_string()))?;
            diags.set_file(&s.path);
            if diags.has_errors() {
                let first = diags
                    .iter()
                    .find(|d| d.severity == crate::Severity::Error)
                    .expect("has_errors implies an error diagnostic");
                return Err(CatalogError::Parse(first.to_string()));
            }
            parsed.push(CatalogedFile {
                units: extract_units(&file),
                path: s.path,
                language: s.language,
                library: s.library,
                text: s.text,
                file,
                diagnostics: diags,
            });
        }
        SourceCatalog::build(parsed)
    }

    /// Catalogs already-parsed sources (no text, structure-only
    /// fingerprint). This is the graph-query constructor the EDA project
    /// layer uses: it re-derives units and edges from parse results it
    /// already holds, without re-reading any file.
    pub fn from_parsed(
        sources: Vec<(String, Language, Option<String>, SourceFile)>,
    ) -> Result<SourceCatalog, CatalogError> {
        let parsed = sources
            .into_iter()
            .map(|(path, language, library, file)| CatalogedFile {
                units: extract_units(&file),
                path,
                language,
                library,
                text: String::new(),
                file,
                diagnostics: Diagnostics::new(),
            })
            .collect();
        SourceCatalog::build(parsed)
    }

    /// Walks a source tree rooted at `root`, cataloging every file with a
    /// recognized HDL extension (`.vhd/.vhdl/.v/.vh/.sv/.svh`). Files are
    /// identified by their path relative to `root` (with `/` separators),
    /// so the same tree catalogs identically on any platform; directory
    /// read order never matters because the catalog sorts by path.
    pub fn walk(root: &Path) -> Result<SourceCatalog, CatalogError> {
        let mut sources = Vec::new();
        collect_tree(root, root, &mut sources)?;
        SourceCatalog::from_sources(sources)
    }

    fn build(mut files: Vec<CatalogedFile>) -> Result<SourceCatalog, CatalogError> {
        files.sort_by(|a, b| a.path.cmp(&b.path));
        let deps = file_dependencies(&files);
        let order = topo_order(&files, &deps)?;
        let fingerprint = fingerprint(&files, &deps);
        Ok(SourceCatalog {
            files,
            deps,
            order,
            fingerprint,
        })
    }

    /// The cataloged files, sorted by path.
    pub fn files(&self) -> &[CatalogedFile] {
        &self.files
    }

    /// The files in dependency-respecting compile order: every file
    /// appears after everything it depends on, ties broken by path, so
    /// the order is deterministic and stable across discovery order.
    pub fn compile_order(&self) -> impl Iterator<Item = &CatalogedFile> {
        self.order.iter().map(|&i| &self.files[i])
    }

    /// Every design unit in the catalog as `(file path, unit)`, in
    /// compile order.
    pub fn units(&self) -> impl Iterator<Item = (&str, &DesignUnit)> {
        self.compile_order()
            .flat_map(|f| f.units.iter().map(move |u| (f.path.as_str(), u)))
    }

    /// The paths a file directly depends on (sorted by path).
    pub fn dependencies_of(&self, path: &str) -> Vec<&str> {
        self.files
            .iter()
            .position(|f| f.path == path)
            .map(|i| {
                self.deps[i]
                    .iter()
                    .map(|&j| self.files[j].path.as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Graph-based top inference: the unique module/entity that no
    /// instantiation, configuration or architecture in the catalog refers
    /// to. Zero candidates is [`CatalogError::NoTop`]; several is
    /// [`CatalogError::AmbiguousTop`] with the candidates sorted by name.
    pub fn infer_top(&self) -> Result<String, CatalogError> {
        let mut referenced: BTreeSet<String> = BTreeSet::new();
        for f in &self.files {
            for inst in &f.file.instantiations {
                referenced.insert(inst.target_simple().to_ascii_lowercase());
            }
            for cfg in &f.file.configurations {
                referenced.insert(cfg.entity.to_ascii_lowercase());
            }
        }
        let mut candidates: Vec<String> = self
            .files
            .iter()
            .flat_map(|f| f.units.iter())
            .filter_map(|u| match u {
                DesignUnit::Module { name } if !referenced.contains(&name.to_ascii_lowercase()) => {
                    Some(name.clone())
                }
                _ => None,
            })
            .collect();
        candidates.sort();
        candidates.dedup();
        match candidates.as_slice() {
            [only] => Ok(only.clone()),
            [] => Err(CatalogError::NoTop),
            _ => Err(CatalogError::AmbiguousTop(candidates)),
        }
    }

    /// The catalog's 128-bit content fingerprint as 32 hex characters:
    /// covers every file's path, language, library and text plus the
    /// extracted units and dependency edges. Any edit to any cataloged
    /// file — including one the top module only reaches through a package
    /// body — changes the fingerprint.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }
}

/// Extracts the design units a parse result declares, in declaration order
/// (modules, then packages, configurations, architectures, package bodies —
/// the parsers record each list in source order).
fn extract_units(file: &SourceFile) -> Vec<DesignUnit> {
    let mut units = Vec::new();
    for m in &file.modules {
        units.push(DesignUnit::Module {
            name: m.name.clone(),
        });
    }
    for p in &file.packages {
        units.push(DesignUnit::Package {
            name: p.name.clone(),
        });
    }
    for c in &file.configurations {
        units.push(DesignUnit::Configuration {
            name: c.name.clone(),
            entity: c.entity.clone(),
        });
    }
    for (arch, ent) in &file.architectures {
        units.push(DesignUnit::Architecture {
            name: arch.clone(),
            entity: ent.clone(),
        });
    }
    for pkg in &file.package_bodies {
        units.push(DesignUnit::PackageBody {
            package: pkg.clone(),
        });
    }
    units
}

/// The package a `use`/`import` context clause names, if any: the component
/// after the library in `work.pkg.all`, or the part before `::` in
/// `pkg::*`.
fn clause_package(clause: &crate::ast::ContextClause) -> Option<String> {
    match clause {
        crate::ast::ContextClause::Use(path) => {
            let parts: Vec<&str> = path.split('.').collect();
            match parts.as_slice() {
                // `use pkg.all` / `use pkg` — no library prefix.
                [p] | [p, "all"] => Some((*p).to_string()),
                // `use lib.pkg[.item|.all]` — the package is component 2.
                [_, p, ..] => Some((*p).to_string()),
                _ => None,
            }
        }
        crate::ast::ContextClause::Import(path) => {
            Some(path.split("::").next().unwrap_or(path.as_str()).to_string())
        }
        _ => None,
    }
}

/// Projects the unit-level dependency edges onto file-level sets
/// (self-edges removed): architecture → entity, package body → package,
/// configuration → entity, instantiation → target module, use/import →
/// named package.
fn file_dependencies(files: &[CatalogedFile]) -> Vec<BTreeSet<usize>> {
    // Name → declaring file, case-insensitive (VHDL identifiers are
    // case-insensitive; cross-language instantiation follows suit).
    fn module_name(u: &DesignUnit) -> Option<&str> {
        match u {
            DesignUnit::Module { name } => Some(name.as_str()),
            _ => None,
        }
    }
    fn package_name(u: &DesignUnit) -> Option<&str> {
        match u {
            DesignUnit::Package { name } => Some(name.as_str()),
            _ => None,
        }
    }
    let locate = |want: &str, pick: fn(&DesignUnit) -> Option<&str>| -> Option<usize> {
        files.iter().position(|f| {
            f.units
                .iter()
                .any(|u| pick(u).is_some_and(|n| n.eq_ignore_ascii_case(want)))
        })
    };

    let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); files.len()];
    for (i, f) in files.iter().enumerate() {
        let mut add = |target: Option<usize>| {
            if let Some(j) = target {
                if j != i {
                    deps[i].insert(j);
                }
            }
        };
        for u in &f.units {
            match u {
                DesignUnit::Architecture { entity, .. }
                | DesignUnit::Configuration { entity, .. } => {
                    add(locate(entity, module_name));
                }
                DesignUnit::PackageBody { package } => {
                    add(locate(package, package_name));
                }
                _ => {}
            }
        }
        for inst in &f.file.instantiations {
            add(locate(inst.target_simple(), module_name));
        }
        for clause in &f.file.context {
            if let Some(pkg) = clause_package(clause) {
                add(locate(&pkg, package_name));
            }
        }
    }
    deps
}

/// Kahn's algorithm with lexicographic tie-breaking: among the files whose
/// dependencies are all satisfied, always emit the lowest path first.
/// `files` is pre-sorted by path, so "lowest index" is "lowest path".
fn topo_order(
    files: &[CatalogedFile],
    deps: &[BTreeSet<usize>],
) -> Result<Vec<usize>, CatalogError> {
    let n = files.len();
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let next = (0..n).find(|&i| !emitted[i] && deps[i].iter().all(|&j| emitted[j]));
        match next {
            Some(i) => {
                emitted[i] = true;
                order.push(i);
            }
            None => {
                let stuck: Vec<String> = (0..n)
                    .filter(|&i| !emitted[i])
                    .map(|i| files[i].path.clone())
                    .collect();
                return Err(CatalogError::Cycle(stuck));
            }
        }
    }
    Ok(order)
}

// ---- fingerprint -------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, data: &[u8]) -> u64 {
    let mut h = hash;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit content fingerprint: two independent FNV-1a streams (the second
/// offset-perturbed, the same dual-hash construction as the EDA store key)
/// over every file's identity and text plus the unit/edge structure.
fn fingerprint(files: &[CatalogedFile], deps: &[BTreeSet<usize>]) -> String {
    let mut lo = FNV_OFFSET;
    let mut hi = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
    let mut feed = |bytes: &[u8]| {
        lo = fnv1a(lo, bytes);
        lo = fnv1a(lo, &[0xff]);
        hi = fnv1a(hi, &[0xfe]);
        hi = fnv1a(hi, bytes);
    };
    for (i, f) in files.iter().enumerate() {
        feed(f.path.as_bytes());
        feed(format!("{:?}", f.language).as_bytes());
        feed(f.library.as_deref().unwrap_or("work").as_bytes());
        feed(f.text.as_bytes());
        for u in &f.units {
            feed(u.to_string().as_bytes());
        }
        for &j in &deps[i] {
            feed(files[j].path.as_bytes());
        }
    }
    format!("{lo:016x}{hi:016x}")
}

/// Recursively collects HDL files under `dir`, recording paths relative to
/// `root`. Entries are sorted per directory for a deterministic walk (the
/// catalog re-sorts globally anyway). Files with unknown extensions are
/// skipped — a source tree may hold READMEs, scripts, constraint files.
fn collect_tree(root: &Path, dir: &Path, out: &mut Vec<CatalogSource>) -> Result<(), CatalogError> {
    let io_err = |p: &Path, e: std::io::Error| CatalogError::Io {
        path: p.display().to_string(),
        message: e.to_string(),
    };
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| io_err(dir, e))?
        .map(|r| r.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| io_err(dir, e))?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_tree(root, &path, out)?;
            continue;
        }
        let Some(lang) = path
            .extension()
            .and_then(|e| e.to_str())
            .and_then(Language::from_extension)
        else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        out.push(CatalogSource {
            path: rel,
            language: lang,
            library: None,
            text,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PKG_VHD: &str =
        "package util_pkg is\n  constant W : natural := 8;\nend package util_pkg;\n";
    const PKG_BODY_VHD: &str =
        "package body util_pkg is\n  -- deferred constants live here\nend package body util_pkg;\n";
    const CORE_VHD: &str = "library ieee;\nuse work.util_pkg.all;\nentity core is\n  generic ( DEPTH : natural := 8 );\n  port ( clk_i : in std_logic );\nend entity core;\n";
    const CORE_RTL_VHD: &str = "architecture rtl of core is\nbegin\nend architecture rtl;\n";
    const TOP_V: &str = "module top #(parameter DEPTH = 8)(input wire clk);\n  core u_core (.clk_i(clk));\nendmodule\n";

    fn tree() -> Vec<CatalogSource> {
        vec![
            CatalogSource::new("rtl/top.v", Language::Verilog, TOP_V),
            CatalogSource::new("rtl/core.vhd", Language::Vhdl, CORE_VHD),
            CatalogSource::new("rtl/core_rtl.vhd", Language::Vhdl, CORE_RTL_VHD),
            CatalogSource::new("pkg/util_pkg.vhd", Language::Vhdl, PKG_VHD),
            CatalogSource::new("pkg/util_pkg_body.vhd", Language::Vhdl, PKG_BODY_VHD),
        ]
    }

    fn paths(cat: &SourceCatalog) -> Vec<String> {
        cat.compile_order().map(|f| f.path.clone()).collect()
    }

    #[test]
    fn units_identified_orbit_style() {
        let cat = SourceCatalog::from_sources(tree()).unwrap();
        let units: Vec<String> = cat.units().map(|(_, u)| u.to_string()).collect();
        assert!(units.contains(&"package util_pkg".to_string()));
        assert!(units.contains(&"package body of util_pkg".to_string()));
        assert!(units.contains(&"module core".to_string()));
        assert!(units.contains(&"architecture rtl of core".to_string()));
        assert!(units.contains(&"module top".to_string()));
        // Primary vs secondary, and as_iden: a body has no identifier.
        for (_, u) in cat.units() {
            match u {
                DesignUnit::PackageBody { .. } => {
                    assert!(u.as_iden().is_none());
                    assert!(!u.is_primary());
                }
                DesignUnit::Architecture { name, .. } => {
                    assert_eq!(u.as_iden(), Some(name.as_str()));
                    assert!(!u.is_primary());
                }
                _ => assert!(u.is_primary() && u.as_iden().is_some()),
            }
        }
    }

    #[test]
    fn compile_order_respects_dependencies() {
        let cat = SourceCatalog::from_sources(tree()).unwrap();
        let order = paths(&cat);
        let pos = |p: &str| order.iter().position(|x| x == p).unwrap();
        // Package before its body and before its user; entity before its
        // architecture; instantiated module before the instantiator.
        assert!(pos("pkg/util_pkg.vhd") < pos("pkg/util_pkg_body.vhd"));
        assert!(pos("pkg/util_pkg.vhd") < pos("rtl/core.vhd"));
        assert!(pos("rtl/core.vhd") < pos("rtl/core_rtl.vhd"));
        assert!(pos("rtl/core.vhd") < pos("rtl/top.v"));
    }

    #[test]
    fn order_is_stable_across_discovery_order() {
        let baseline = paths(&SourceCatalog::from_sources(tree()).unwrap());
        let mut shuffled = tree();
        shuffled.reverse();
        assert_eq!(
            baseline,
            paths(&SourceCatalog::from_sources(shuffled).unwrap())
        );
        let mut rotated = tree();
        rotated.rotate_left(2);
        assert_eq!(
            baseline,
            paths(&SourceCatalog::from_sources(rotated).unwrap())
        );
    }

    #[test]
    fn top_inference_finds_the_unique_root() {
        let cat = SourceCatalog::from_sources(tree()).unwrap();
        assert_eq!(cat.infer_top().unwrap(), "top");
    }

    #[test]
    fn ambiguous_top_lists_candidates_sorted() {
        let cat = SourceCatalog::from_sources(vec![
            CatalogSource::new(
                "b.v",
                Language::Verilog,
                "module zeta(input wire c); endmodule",
            ),
            CatalogSource::new(
                "a.v",
                Language::Verilog,
                "module alpha(input wire c); endmodule",
            ),
        ])
        .unwrap();
        match cat.infer_top() {
            Err(CatalogError::AmbiguousTop(names)) => {
                assert_eq!(names, vec!["alpha".to_string(), "zeta".to_string()]);
            }
            other => panic!("expected AmbiguousTop, got {other:?}"),
        }
        let msg = cat.infer_top().unwrap_err().to_string();
        assert!(msg.contains("pick one with --top"), "{msg}");
        assert!(msg.contains("alpha, zeta"), "{msg}");
    }

    #[test]
    fn configured_entity_is_not_a_top_candidate() {
        let cat = SourceCatalog::from_sources(vec![
            CatalogSource::new(
                "core.vhd",
                Language::Vhdl,
                "entity core is port ( clk_i : in std_logic ); end entity core;\n\
                 architecture rtl of core is begin end architecture rtl;",
            ),
            CatalogSource::new(
                "cfg.vhd",
                Language::Vhdl,
                "configuration core_cfg of core is end;",
            ),
            CatalogSource::new(
                "top.v",
                Language::Verilog,
                "module top(input wire clk); core u (.clk_i(clk)); endmodule",
            ),
        ])
        .unwrap();
        assert_eq!(cat.infer_top().unwrap(), "top");
        // And the configuration orders after the entity it configures.
        let order: Vec<String> = cat.compile_order().map(|f| f.path.clone()).collect();
        let pos = |p: &str| order.iter().position(|x| x == p).unwrap();
        assert!(pos("core.vhd") < pos("cfg.vhd"));
    }

    #[test]
    fn cycle_detected_and_reported_sorted() {
        // a instantiates b, b instantiates a — with each module in its own
        // file the file graph is cyclic.
        let err = SourceCatalog::from_sources(vec![
            CatalogSource::new(
                "a.v",
                Language::Verilog,
                "module a(input wire c); b u (.c(c)); endmodule",
            ),
            CatalogSource::new(
                "b.v",
                Language::Verilog,
                "module b(input wire c); a u (.c(c)); endmodule",
            ),
        ])
        .unwrap_err();
        match err {
            CatalogError::Cycle(files) => {
                assert_eq!(files, vec!["a.v".to_string(), "b.v".to_string()]);
            }
            other => panic!("expected Cycle, got {other:?}"),
        }
    }

    #[test]
    fn multi_module_verilog_file_catalogs_every_module() {
        let cat = SourceCatalog::from_sources(vec![CatalogSource::new(
            "pair.v",
            Language::Verilog,
            "module leaf(input wire c); endmodule\n\
             module root(input wire c); leaf u (.c(c)); endmodule",
        )])
        .unwrap();
        let modules: Vec<&str> = cat
            .units()
            .filter_map(|(_, u)| match u {
                DesignUnit::Module { name } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(modules, vec!["leaf", "root"]);
        assert_eq!(cat.infer_top().unwrap(), "root");
    }

    #[test]
    fn parse_failure_names_the_file() {
        let err = SourceCatalog::from_sources(vec![CatalogSource::new(
            "broken/core.vhd",
            Language::Vhdl,
            "entity core is",
        )])
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("broken/core.vhd"), "{msg}");
    }

    #[test]
    fn fingerprint_stable_and_sensitive_to_dependency_edits() {
        let a = SourceCatalog::from_sources(tree()).unwrap();
        let b = SourceCatalog::from_sources(tree()).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 32);

        // Editing the package *body* — a file the top only reaches through
        // the dependency graph — must change the fingerprint.
        let mut edited = tree();
        for s in &mut edited {
            if s.path == "pkg/util_pkg_body.vhd" {
                s.text = s.text.replace("deferred", "edited");
            }
        }
        let c = SourceCatalog::from_sources(edited).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn from_parsed_matches_from_sources_structure() {
        let full = SourceCatalog::from_sources(tree()).unwrap();
        let reparsed: Vec<(String, Language, Option<String>, SourceFile)> = tree()
            .into_iter()
            .map(|s| {
                let (file, _) = crate::parse_source(s.language, &s.text).unwrap();
                (s.path, s.language, s.library, file)
            })
            .collect();
        let structural = SourceCatalog::from_parsed(reparsed).unwrap();
        assert_eq!(paths(&full), paths(&structural));
        assert_eq!(structural.infer_top().unwrap(), full.infer_top().unwrap());
    }

    #[test]
    fn dependencies_of_reports_direct_edges() {
        let cat = SourceCatalog::from_sources(tree()).unwrap();
        assert_eq!(
            cat.dependencies_of("pkg/util_pkg_body.vhd"),
            vec!["pkg/util_pkg.vhd"]
        );
        assert_eq!(cat.dependencies_of("rtl/top.v"), vec!["rtl/core.vhd"]);
        assert!(cat.dependencies_of("pkg/util_pkg.vhd").is_empty());
        assert!(cat.dependencies_of("missing.vhd").is_empty());
    }

    #[test]
    fn walk_catalogs_a_directory_tree() {
        let dir = std::env::temp_dir().join(format!("dovado-catalog-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("rtl")).unwrap();
        std::fs::create_dir_all(dir.join("pkg")).unwrap();
        for (rel, text) in [
            ("rtl/top.v", TOP_V),
            ("rtl/core.vhd", CORE_VHD),
            ("rtl/core_rtl.vhd", CORE_RTL_VHD),
            ("pkg/util_pkg.vhd", PKG_VHD),
            ("pkg/util_pkg_body.vhd", PKG_BODY_VHD),
            ("README.md", "not HDL, must be skipped"),
        ] {
            std::fs::write(dir.join(rel), text).unwrap();
        }
        let cat = SourceCatalog::walk(&dir).unwrap();
        assert_eq!(cat.files().len(), 5, "README must be skipped");
        assert_eq!(cat.infer_top().unwrap(), "top");
        // Identical to the in-memory catalog of the same tree.
        let mem = SourceCatalog::from_sources(tree()).unwrap();
        assert_eq!(paths(&cat), paths(&mem));
        assert_eq!(cat.fingerprint(), mem.fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn walk_missing_root_is_an_io_error() {
        let err = SourceCatalog::walk(Path::new("/nonexistent/dovado-tree")).unwrap_err();
        assert!(matches!(err, CatalogError::Io { .. }), "{err:?}");
    }

    // ---- property tests ------------------------------------------------

    use proptest::prelude::*;

    /// A pool of generated single-module files with a known acyclic
    /// dependency shape: file i may instantiate any subset of modules
    /// j < i, so every permutation of the pool must linearize.
    fn pool(n: usize, edges: u64) -> Vec<CatalogSource> {
        (0..n)
            .map(|i| {
                let mut body = String::new();
                for j in 0..i {
                    // Pseudo-random but deterministic edge selection from
                    // the `edges` bits.
                    if (edges >> ((i * 7 + j) % 63)) & 1 == 1 {
                        body.push_str(&format!("  m{j} u{j} (.c(c));\n"));
                    }
                }
                CatalogSource::new(
                    format!("f{i:02}.v"),
                    Language::Verilog,
                    format!("module m{i}(input wire c);\n{body}endmodule\n"),
                )
            })
            .collect()
    }

    proptest! {
        #[test]
        fn topo_order_is_a_valid_linearization(n in 2usize..10, edges in any::<u64>()) {
            let cat = SourceCatalog::from_sources(pool(n, edges)).unwrap();
            let order: Vec<String> = cat.compile_order().map(|f| f.path.clone()).collect();
            prop_assert_eq!(order.len(), n);
            for (idx, path) in order.iter().enumerate() {
                for dep in cat.dependencies_of(path) {
                    let dep_idx = order.iter().position(|p| p == dep).unwrap();
                    prop_assert!(
                        dep_idx < idx,
                        "{} depends on {} but compiles first", path, dep
                    );
                }
            }
        }

        #[test]
        fn topo_order_is_discovery_order_invariant(
            n in 2usize..10,
            edges in any::<u64>(),
            rot in 0usize..10,
        ) {
            let baseline = SourceCatalog::from_sources(pool(n, edges)).unwrap();
            let mut shuffled = pool(n, edges);
            shuffled.rotate_left(rot % n);
            shuffled.reverse();
            let other = SourceCatalog::from_sources(shuffled).unwrap();
            let a: Vec<String> = baseline.compile_order().map(|f| f.path.clone()).collect();
            let b: Vec<String> = other.compile_order().map(|f| f.path.clone()).collect();
            prop_assert_eq!(a, b);
            prop_assert_eq!(baseline.fingerprint(), other.fingerprint());
        }
    }
}
