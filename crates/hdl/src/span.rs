//! Byte-span and line/column tracking for diagnostics.
//!
//! Every token and AST node produced by the HDL front-ends carries a [`Span`]
//! so that downstream consumers (the boxing step, error reporting in the
//! Dovado CLI layer) can point back at the exact source region.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file, together with
/// the 1-based line and column of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start` (in characters, not bytes).
    pub col: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A zero-width placeholder span (used for synthesized nodes).
    pub fn dummy() -> Self {
        Span {
            start: 0,
            end: 0,
            line: 0,
            col: 0,
        }
    }

    /// Returns true if this is the placeholder produced by [`Span::dummy`].
    pub fn is_dummy(&self) -> bool {
        self.line == 0
    }

    /// The number of bytes covered by the span.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        if other.is_dummy() {
            return *self;
        }
        if self.is_dummy() {
            return other;
        }
        let (first, _last) = if self.start <= other.start {
            (*self, other)
        } else {
            (other, *self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// Extracts the text covered by this span from `source`.
    ///
    /// Returns an empty string when the span is out of bounds, which can only
    /// happen if the span was produced against a different source buffer.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_is_dummy() {
        assert!(Span::dummy().is_dummy());
        assert!(!Span::new(0, 1, 1, 1).is_dummy());
    }

    #[test]
    fn merge_orders_spans() {
        let a = Span::new(10, 20, 2, 1);
        let b = Span::new(0, 5, 1, 1);
        let m = a.merge(b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 20);
        assert_eq!(m.line, 1);
    }

    #[test]
    fn merge_with_dummy_keeps_real_span() {
        let a = Span::new(3, 9, 1, 4);
        assert_eq!(a.merge(Span::dummy()), a);
        assert_eq!(Span::dummy().merge(a), a);
    }

    #[test]
    fn slice_extracts_text() {
        let src = "entity foo is";
        let sp = Span::new(7, 10, 1, 8);
        assert_eq!(sp.slice(src), "foo");
    }

    #[test]
    fn slice_out_of_bounds_is_empty() {
        let sp = Span::new(100, 200, 9, 9);
        assert_eq!(sp.slice("short"), "");
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(2, 7, 1, 3).len(), 5);
        assert!(Span::new(4, 4, 1, 5).is_empty());
        // Saturating: malformed span does not panic.
        assert_eq!(Span::new(7, 2, 1, 8).len(), 0);
    }

    #[test]
    fn display_shows_line_col() {
        assert_eq!(Span::new(0, 1, 12, 7).to_string(), "12:7");
    }
}
