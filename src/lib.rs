//! # dovado-repro
//!
//! Workspace facade: re-exports the crates of the Dovado reproduction so
//! the examples and integration tests have one import root.
//!
//! * [`dovado`] — the framework (design automation + DSE).
//! * [`dovado_hdl`] — VHDL/(System)Verilog declaration parsers.
//! * [`dovado_fpga`] — device models.
//! * [`dovado_eda`] — the simulated Vivado.
//! * [`dovado_moo`] — NSGA-II and friends.
//! * [`dovado_surrogate`] — the Nadaraya-Watson fitness approximation.

pub use dovado;
pub use dovado_eda;
pub use dovado_fpga;
pub use dovado_hdl;
pub use dovado_moo;
pub use dovado_surrogate;
